"""Campaigns: run a τ × seed grid in parallel, resume it for free, render it.

The paper's error-vs-runtime trade-off figure comes from a *campaign* — one
run per communication period τ, replicated over seeds.  This example builds
that campaign as a :class:`repro.sweep.SweepSpec`, executes it on a process
pool against a persistent content-addressed store, then re-runs it to show
that every cell is a cache hit, and finally renders the campaign's summary
table and trade-off frontier *from the store alone*.

Run with:  python examples/campaign_sweep.py
"""

from __future__ import annotations

import tempfile

from repro import SweepSpec, grid, make_config, run_sweep
from repro.experiments.figures import sweep_error_runtime_frontier
from repro.experiments.tables import format_table, sweep_summary_table
from repro.sweep import ResultStore


def main() -> None:
    # A small τ-grid on the fast smoke workload; swap the base for
    # make_config("vgg_cifar10_fixed_lr", scale=0.25) — or run the registered
    # campaign directly: python -m repro --sweep tau_error_runtime --jobs 4.
    spec = SweepSpec(
        name="example_tau_sweep",
        base=make_config("smoke", wall_time_budget=30.0),
        axes=grid(tau=[1, 4, 16], seed=[7, 8]),
    )
    store_dir = tempfile.mkdtemp(prefix="repro_sweep_")
    print(f"campaign {spec.name!r}: {spec.n_cells} cells -> {store_dir}\n")

    report = run_sweep(spec, store=store_dir, jobs=2, progress=print)
    print(f"first pass executed {len(report.executed)} cells\n")

    # Second pass: the store is content-addressed, so nothing re-executes.
    again = run_sweep(spec, store=store_dir, jobs=2)
    print(f"re-run executed {len(again.executed)} cells "
          f"({len(again.cached)} cache hits)\n")

    # Everything below reads only the store directory — this could run in a
    # fresh process days later and produce the same bytes.
    store = ResultStore(store_dir)
    addresses = [c.address for c in spec.cells()]
    print(format_table(
        ["cell", "method", "best loss", "best acc (%)"],
        sweep_summary_table(store, addresses),
        title="Campaign summary (rendered from the store)",
    ))
    print()
    print("error-runtime frontier (time to loss <= 1.0, best loss):")
    for label, t_target, best in sweep_error_runtime_frontier(store, 1.0, addresses):
        print(f"  {label:34s}  t = {t_target:7.1f} s   best loss = {best:.3f}")


if __name__ == "__main__":
    main()
