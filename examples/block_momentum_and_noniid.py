"""Extensions: block momentum (Section 5.3) and non-i.i.d. (federated) shards.

Two mini-studies on the same communication-heavy workload:

1. **Block momentum** — compares plain PASGD against PASGD with the global
   block-momentum buffer of eq. 24–25 (β_glob = 0.3, local momentum 0.9 with
   buffers cleared at each averaging step), both driven by ADACOMM.
2. **Non-i.i.d. shards** — the paper notes that adaptive communication extends
   directly to Federated Learning.  Here each worker's shard is label-skewed
   (two dominant classes per worker), which increases the model discrepancy
   between averaging steps; ADACOMM responds by shrinking τ sooner.

Run with:  python examples/block_momentum_and_noniid.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaCommConfig,
    AdaCommSchedule,
    BlockMomentum,
    NetworkModel,
    PASGDTrainer,
    RuntimeSimulator,
    SimulatedCluster,
    TrainerConfig,
)
from repro.data.partition import partition_dataset
from repro.data.synthetic import make_synth_cifar10
from repro.models.mlp import MLP
from repro.runtime.distributions import ShiftedExponentialDelay

N_WORKERS = 4
ALPHA = 4.0
WALL_TIME = 1200.0


def build_and_train(
    use_block_momentum: bool,
    partition_strategy: str = "iid",
    lr: float = 0.05,
    seed: int = 0,
    record_discrepancy: bool = False,
):
    dataset = make_synth_cifar10(n_samples=2500, n_features=64, rng=seed)
    train, test = dataset.split(test_fraction=0.2, rng=seed)
    partition = partition_dataset(train, N_WORKERS, strategy=partition_strategy, rng=seed)

    def model_fn():
        return MLP(n_features=64, n_classes=10, hidden_sizes=(), rng=321)

    runtime = RuntimeSimulator(
        ShiftedExponentialDelay(shift=0.75, scale=0.25),
        NetworkModel(base_delay=ALPHA, scaling="constant"),
        N_WORKERS,
        rng=seed,
    )
    cluster = SimulatedCluster(
        model_fn=model_fn,
        dataset=partition,
        runtime=runtime,
        n_workers=N_WORKERS,
        batch_size=8,
        lr=lr,
        momentum=0.9 if use_block_momentum else 0.0,
        block_momentum=BlockMomentum(0.3) if use_block_momentum else None,
        seed=seed,
    )
    schedule = AdaCommSchedule(AdaCommConfig(initial_tau=20, interval_length=100.0))
    trainer = PASGDTrainer(
        cluster,
        schedule,
        train_eval_data=(train.X, train.y),
        test_eval_data=(test.X, test.y),
        config=TrainerConfig(max_wall_time=WALL_TIME, record_discrepancy=record_discrepancy),
        name=("block-momentum" if use_block_momentum else "plain")
        + ("" if partition_strategy == "iid" else f"+{partition_strategy}"),
    )
    return trainer.train(), schedule


def describe(record, schedule) -> None:
    taus = [tau for _, tau in schedule.tau_history]
    print(f"  {record.name:22s} final loss {record.final_loss():.4f}"
          f"   best acc {100 * record.best_accuracy():.2f}%"
          f"   tau sequence {taus}")


def main() -> None:
    print("ADACOMM with and without block momentum (iid shards)  [Figure 11]")
    plain, plain_sched = build_and_train(use_block_momentum=False)
    block, block_sched = build_and_train(use_block_momentum=True)
    describe(plain, plain_sched)
    describe(block, block_sched)
    target = 1.0
    print(f"  time to training loss {target}: plain {plain.time_to_loss(target):.0f} s, "
          f"block momentum {block.time_to_loss(target):.0f} s")

    print("\nADACOMM under iid vs label-skewed (federated-style) shards")
    iid, iid_sched = build_and_train(False, partition_strategy="iid", record_discrepancy=True)
    skew, skew_sched = build_and_train(False, partition_strategy="label_skew", record_discrepancy=True)
    describe(iid, iid_sched)
    describe(skew, skew_sched)

    def mean_discrepancy(record):
        values = [p.extra["model_discrepancy"] for p in record.points if "model_discrepancy" in p.extra]
        return float(np.mean(values)) if values else float("nan")

    print(f"  mean pre-averaging model discrepancy: iid {mean_discrepancy(iid):.3f} "
          f"vs label-skew {mean_discrepancy(skew):.3f}")
    print("  (heterogeneous shards make local models drift further apart between")
    print("   averaging steps, which is why smaller tau / earlier adaptation helps there)")


if __name__ == "__main__":
    main()
