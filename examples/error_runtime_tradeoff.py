"""Error-runtime trade-off on a communication-heavy workload (paper Figures 1 & 9).

Builds the simulated cluster *manually* (rather than through the experiment
harness) to show the full public API: delay distributions, the network model,
the runtime simulator, the cluster, communication schedules, and the trainer.
Then compares τ ∈ {1, 20, 100} against ADACOMM and prints where each method
stands after fixed amounts of simulated wall-clock time.

Run with:  python examples/error_runtime_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaCommConfig,
    AdaCommSchedule,
    FixedCommunicationSchedule,
    NetworkModel,
    PASGDTrainer,
    RuntimeSimulator,
    SimulatedCluster,
    TrainerConfig,
)
from repro.data.synthetic import make_synth_cifar10
from repro.models.mlp import MLP
from repro.runtime.distributions import ShiftedExponentialDelay

N_WORKERS = 4
ALPHA = 4.0          # communication/computation ratio (VGG-like, Figure 8)
WALL_TIME = 1800.0   # simulated seconds
LR = 0.4


def build_cluster(seed: int = 0) -> tuple[SimulatedCluster, tuple, tuple]:
    dataset = make_synth_cifar10(
        n_samples=3000, n_features=64, class_sep=0.8, label_noise=0.15, rng=seed
    )
    train, test = dataset.split(test_fraction=0.2, rng=seed)

    def model_fn():
        # A linear softmax classifier: small enough to stay in the
        # non-interpolating regime where the error floor of large tau is visible.
        return MLP(n_features=64, n_classes=10, hidden_sizes=(), rng=123)

    # Per-step compute time: 1 s on average with an exponential straggling tail.
    compute = ShiftedExponentialDelay(shift=0.75, scale=0.25)
    network = NetworkModel(base_delay=ALPHA, scaling="constant")
    runtime = RuntimeSimulator(compute, network, N_WORKERS, rng=seed)

    cluster = SimulatedCluster(
        model_fn=model_fn,
        dataset=train,
        runtime=runtime,
        n_workers=N_WORKERS,
        batch_size=8,
        lr=LR,
        weight_decay=1e-4,
        seed=seed,
    )
    return cluster, (train.X, train.y), (test.X, test.y)


def run(schedule) -> "repro.RunRecord":
    cluster, train_data, test_data = build_cluster()
    trainer = PASGDTrainer(
        cluster,
        schedule,
        train_eval_data=train_data,
        test_eval_data=test_data,
        config=TrainerConfig(max_wall_time=WALL_TIME),
        name=schedule.label,
    )
    return trainer.train()


def main() -> None:
    schedules = [
        FixedCommunicationSchedule(1),     # fully synchronous SGD
        FixedCommunicationSchedule(20),    # manually tuned PASGD
        FixedCommunicationSchedule(100),   # extreme-throughput PASGD
        AdaCommSchedule(AdaCommConfig(initial_tau=20, interval_length=120.0)),
    ]
    records = [run(s) for s in schedules]

    checkpoints = [200, 500, 1000, 1700]
    header = "method          " + "".join(f"  t={t:<6d}" for t in checkpoints) + "  final floor"
    print("Training loss of the synchronized model at fixed simulated times\n")
    print(header)
    for record in records:
        row = f"{record.name:14s} "
        for t in checkpoints:
            row += f"  {record.loss_at_time(t):8.4f}"
        row += f"  {np.mean(record.train_losses[-8:]):11.4f}"
        print(row)

    print("\nObservations (compare with Figure 9 of the paper):")
    print(" * tau=100 drops fastest at first but flattens at the highest floor;")
    print(" * tau=1 (sync SGD) is slowest per wall-clock second but reaches a low floor;")
    print(" * AdaComm starts like the large-tau runs and finishes like sync SGD.")

    target = 0.8
    sync_time = records[0].time_to_loss(target)
    ada_time = records[-1].time_to_loss(target)
    print(f"\nTime to reach training loss {target}: sync SGD {sync_time:.0f} s, "
          f"AdaComm {ada_time:.0f} s  ({sync_time / ada_time:.1f}x less time)")


if __name__ == "__main__":
    main()
