"""Straggler mitigation through local updates (paper Section 3.2, Figures 4 & 5).

A pure runtime-model example: no training at all, only the delay analysis.
It reproduces, for several compute-time distributions and cluster sizes,

* the expected runtime per iteration of fully synchronous SGD vs PASGD,
* the speed-up curve (1 + alpha) / (1 + alpha / tau), and
* the tail quantiles that show why averaging over tau local steps makes the
  slowest worker hurt less.

Run with:  python examples/straggler_mitigation.py
"""

from __future__ import annotations

import numpy as np

from repro import ConstantDelay, ExponentialDelay, NetworkModel, RuntimeModel, speedup_constant_delays
from repro.runtime.distributions import ParetoDelay
from repro.runtime.order_stats import empirical_max_distribution


def speedup_table() -> None:
    print("Speed-up of PASGD over fully synchronous SGD, (1+a)/(1+a/tau)  [Figure 4]")
    taus = [1, 5, 10, 20, 50, 100]
    print("   tau:   " + "".join(f"{t:>8d}" for t in taus))
    for alpha in (0.1, 0.5, 0.9, 4.0):
        speedups = speedup_constant_delays(alpha, np.array(taus))
        print(f"  a={alpha:<4.1f}" + "".join(f"{s:8.2f}" for s in speedups))
    print()


def runtime_distribution(m: int = 16) -> None:
    print(f"Per-iteration runtime with exponential compute times, m={m}, D=1  [Figure 5]")
    for tau in (1, 10):
        samples = empirical_max_distribution(
            ExponentialDelay(1.0), m=m, tau=tau, comm_delay=1.0, n_samples=40000, rng=0
        )
        label = "sync SGD " if tau == 1 else f"PASGD t={tau}"
        print(
            f"  {label}:  mean {samples.mean():5.2f}   median {np.median(samples):5.2f}"
            f"   p95 {np.quantile(samples, 0.95):5.2f}   p99 {np.quantile(samples, 0.99):5.2f}"
        )
    print()


def scaling_with_cluster_size() -> None:
    print("Expected runtime per iteration as the cluster grows (exponential compute, D0=0.5)")
    print("  m     sync SGD    PASGD(tau=10)    heavy-tail (Pareto) sync    heavy-tail PASGD")
    for m in (2, 4, 8, 16, 32):
        exp_model = RuntimeModel(ExponentialDelay(1.0), NetworkModel(0.5, "reduction_tree"), m)
        pareto_model = RuntimeModel(ParetoDelay(scale=0.7, alpha=2.5), NetworkModel(0.5, "reduction_tree"), m)
        print(
            f"  {m:3d}  {exp_model.expected_runtime_per_iteration(1, rng=0):9.2f}"
            f"  {exp_model.expected_runtime_per_iteration(10, rng=0):14.2f}"
            f"  {pareto_model.expected_runtime_per_iteration(1, rng=0):25.2f}"
            f"  {pareto_model.expected_runtime_per_iteration(10, rng=0):17.2f}"
        )
    print("\nThe gap between the sync and PASGD columns widens with m and with tail weight:")
    print("periodic averaging both amortizes the communication delay and averages away")
    print("per-step straggling before the barrier.")


def deterministic_sanity_check() -> None:
    model = RuntimeModel(ConstantDelay(1.0), NetworkModel(0.9, "constant"), n_workers=4)
    assert abs(model.speedup(100) - speedup_constant_delays(0.9, 100)) < 1e-9


def main() -> None:
    speedup_table()
    runtime_distribution()
    scaling_with_cluster_size()
    deterministic_sanity_check()


if __name__ == "__main__":
    main()
