"""Quickstart: compare fully synchronous SGD, fixed-τ PASGD, and ADACOMM.

Runs the small "smoke" workload on a simulated 2-worker cluster and prints,
for each method, the training-loss trajectory against simulated wall-clock
time plus the wall-clock speed-up of ADACOMM over synchronous SGD.

Every component (model, dataset, delay distribution, method lineup) is picked
by name from the ``repro.api`` registries, so swapping the workload is a
one-line change — see the ``Experiment`` builder chain below.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Experiment
from repro.experiments.figures import loss_vs_time_series, summarize_series
from repro.experiments.tables import format_table, time_to_loss_table


def main() -> None:
    # Start from the named "smoke" config and compose the workload
    # declaratively: any registered model / delay / method lineup plugs in.
    # Try .model("vgg_lite_cnn") or .delay("pareto") for other scenarios.
    experiment = Experiment("smoke").model("mlp").delay("shifted_exponential")
    config = experiment.build()
    print(f"workload: {config.name}  ({config.n_workers} workers, alpha = {config.alpha})")

    # run() trains every method (sync SGD, fixed-tau PASGD, AdaComm) on the
    # same data split and delay model and returns a RunStore.
    store = experiment.run()

    for record in store:
        print(f"\n=== {record.name} ===")
        print(f"  final training loss : {record.final_loss():.4f}")
        print(f"  best test accuracy  : {100 * record.best_accuracy():.2f}%")
        print("  loss vs simulated wall-clock time:")
        for t, loss in summarize_series(loss_vs_time_series(record), n_points=6):
            print(f"    t = {t:6.1f} s   loss = {loss:.4f}")

    # The paper's headline metric: wall-clock time to reach a target loss.
    target = 0.5
    print()
    print(format_table(
        ["method", "time to loss <= 0.5 (s)", "best loss"],
        time_to_loss_table(store, target_loss=target),
        title="Time to target training loss",
    ))
    speedup = store.speedup("adacomm", "sync-sgd", target_loss=target)
    print(f"\nADACOMM speed-up over fully synchronous SGD at loss {target}: {speedup:.2f}x")


if __name__ == "__main__":
    main()
