"""Formatting helpers shared by the benchmark targets."""

from __future__ import annotations

from repro.experiments.figures import loss_vs_time_series, summarize_series, tau_vs_time_series
from repro.utils.results import RunRecord, RunStore


def format_series(series: list[tuple[float, float]], n_points: int = 10, fmt: str = "{:8.1f} {:10.4f}") -> str:
    """Render a downsampled (x, y) series as aligned text rows."""
    lines = [fmt.format(x, y) for x, y in summarize_series(series, n_points=n_points)]
    return "\n".join(lines)


def format_loss_curves(store: RunStore, n_points: int = 10, title: str = "") -> str:
    """Render every run's loss-vs-wall-clock curve (the Figure 9/10/11 content)."""
    blocks = [title] if title else []
    for record in store:
        blocks.append(f"-- {record.name}  (final loss {record.final_loss():.4f}, "
                      f"best acc {100 * record.best_accuracy():.2f}%)")
        blocks.append("  wall_time  train_loss")
        blocks.append(format_series(loss_vs_time_series(record), n_points=n_points))
    return "\n".join(blocks)


def format_tau_staircase(record: RunRecord, n_points: int = 12) -> str:
    """Render the communication-period staircase of an AdaComm run."""
    series = [(t, float(tau)) for t, tau in tau_vs_time_series(record)]
    return "  wall_time  tau\n" + format_series(series, n_points=n_points, fmt="{:8.1f} {:10.0f}")


def format_speedups(store: RunStore, baseline: str, target_loss: float, title: str = "") -> str:
    """Render 'time to target loss' and the speedup over a baseline method."""
    lines = [title] if title else []
    base_time = store.get(baseline).time_to_loss(target_loss)
    lines.append(f"target training loss: {target_loss}")
    for record in store:
        t = record.time_to_loss(target_loss)
        speedup = base_time / t if t > 0 else float("nan")
        lines.append(f"  {record.name:14s} time-to-target {t:9.1f} s   speedup over {baseline}: {speedup:5.2f}x")
    return "\n".join(lines)
