"""Wall-clock speedup of the bank backends (vectorized + sharded) over the loop.

Times the same seeded PASGD workloads — a dense MLP and a small CNN on
synthetic data, the hot paths of the paper's large-m sweeps (Figs. 12–14) —
on all three execution backends at several cluster sizes, checks that the
backends produce the same trajectory and that ``backend="auto"`` resolves to
the bank for every family, and writes the results to ``BENCH_backend.json``
so the performance trajectory is tracked across PRs.  The sharded family
measures the multi-process pool (``--shards`` processes, spawn start method);
its timings include the per-round transport traffic, so it only wins once the
per-shard arithmetic dominates — exactly the large-m regime it exists for.

A second dimension compares the sharded pool's two data planes head to head —
Pipe pickling vs the zero-copy shared-memory state plane — at ``tau=1`` in
communication-bound sizings of the same two families
(:data:`TRANSPORT_FAMILIES`) across ``--transport-workers`` cluster sizes, and
records each transport's measured per-round pickled payload (via the
``bytes_over_pipe`` / ``bytes_via_shm`` obs counters) under ``"transport"``
in the JSON.

Runs standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_backend_speedup.py
    PYTHONPATH=src python benchmarks/bench_backend_speedup.py --workers 2 --rounds 2 --models cnn
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow running without PYTHONPATH=src.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.data.synthetic import make_gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.models.cnn import SmallCNN
from repro.models.mlp import MLP
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

N_CLASSES = 10
LR = 0.05
MOMENTUM = 0.9
SEED = 11

#: The two model families of the paper's experiments: the dense stand-in and
#: the conv path (im2col + batched matmul on the bank backend).  Batch sizes
#: differ deliberately.  The bank backend's win comes from amortizing
#: per-layer Python/dispatch overhead across the m replicas; per-replica
#: GEMMs are already batched in the loop backend, so *raising* the CNN batch
#: shrinks the measured gap (measured: 2.8x at batch 8 vs 1.5x at batch 16
#: for m=8) rather than widening it.  The CNN therefore benchmarks at batch
#: 2 — the small-batch, many-replica regime of the paper's large-m sweeps,
#: and the regime the backend exists to accelerate.
FAMILIES = {
    "mlp": {
        "n_features": 32,
        "batch_size": 8,
        "model_fn": lambda: MLP(32, N_CLASSES, hidden_sizes=(64, 32), rng=42),
        "label": "mlp(64, 32)",
    },
    "cnn": {
        "n_features": 3 * 8 * 8,
        "batch_size": 2,
        "model_fn": lambda: SmallCNN(
            in_channels=3, image_size=8, channels=(8, 16), n_classes=N_CLASSES, rng=42
        ),
        "label": "cnn(8, 16) on 3x8x8",
    },
}


#: Communication-bound sizings of the same two families, used only for the
#: pipe-vs-shm transport comparison.  Transport cost scales with the state
#: plane (m × P) while per-step compute scales with the batch as well, so the
#: regime where the data plane matters — and the one the shm plane targets,
#: the paper's large-model runs — is wide layers at a small batch.  The main
#: FAMILIES sizings keep P small enough that fixed RPC latency (paid equally
#: by both transports) dominates, which would measure mostly noise.
TRANSPORT_FAMILIES = {
    "mlp": {
        "n_features": 32,
        "batch_size": 2,
        "model_fn": lambda: MLP(32, N_CLASSES, hidden_sizes=(512, 256), rng=42),
        "label": "mlp(512, 256)",
    },
    "cnn": {
        "n_features": 3 * 8 * 8,
        "batch_size": 2,
        "model_fn": lambda: SmallCNN(
            in_channels=3, image_size=8, channels=(32, 64), n_classes=N_CLASSES, rng=42
        ),
        "label": "cnn(32, 64) on 3x8x8",
    },
}


def build_cluster(
    backend: str,
    family: str,
    n_workers: int,
    n_shards: int = 2,
    shard_transport: str = "auto",
    families: dict = FAMILIES,
) -> SimulatedCluster:
    spec = families[family]
    dataset = make_gaussian_blobs(
        n_samples=max(50 * n_workers, 800),
        n_features=spec["n_features"],
        n_classes=N_CLASSES,
        class_sep=1.0,
        rng=3,
    )
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=n_workers, rng=0
    )
    return SimulatedCluster(
        model_fn=spec["model_fn"],
        dataset=dataset,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=spec["batch_size"],
        lr=LR,
        momentum=MOMENTUM,
        weight_decay=1e-4,
        seed=SEED,
        backend=backend,
        n_shards=n_shards,
        shard_transport=shard_transport,
    )


def time_backend(backend: str, family: str, n_workers: int, rounds: int, tau: int,
                 repeats: int, n_shards: int = 2, shard_transport: str = "auto",
                 families: dict = FAMILIES):
    """Median-of-``repeats`` wall-clock time and the final loss (parity checks).

    Timing excludes cluster construction (the sharded backend's pool spawn is
    a one-off cost amortized over a whole run, not a per-round one).  One
    extra untimed warm-up run precedes the timed repeats so one-off costs —
    lazy imports, kernel plan-cache population, allocator growth — never land
    in a timed sample; the median then resists the scheduler noise that
    best-of hides on a loaded box and a mean would amplify.
    """
    samples: list[float] = []
    final_loss = float("nan")
    for attempt in range(repeats + 1):  # attempt 0 is the untimed warm-up
        cluster = build_cluster(
            backend, family, n_workers, n_shards=n_shards,
            shard_transport=shard_transport, families=families,
        )
        try:
            start = time.perf_counter()
            for _ in range(rounds):
                final_loss = cluster.run_round(tau)
            elapsed = time.perf_counter() - start
        finally:
            cluster.close()
        if attempt > 0:
            samples.append(elapsed)
    return float(np.median(samples)), final_loss


def round_transfer_bytes(family: str, n_workers: int, tau: int, n_shards: int,
                         shard_transport: str) -> tuple[int, int]:
    """Per-round (pipe_payload_bytes, shm_payload_bytes) of one sharded round.

    Counted by the ``bytes_over_pipe`` / ``bytes_via_shm`` obs counters the
    backend emits at its transfer sites, so the JSON records the measured
    pickled-payload reduction, not a back-of-envelope estimate: under the
    shm plane the pipes carry only O(1) control tuples and the pipe counter
    reads zero.
    """
    from repro.obs.metrics import MetricsRegistry

    cluster = build_cluster(
        "sharded", family, n_workers, n_shards=n_shards,
        shard_transport=shard_transport, families=TRANSPORT_FAMILIES,
    )
    try:
        with MetricsRegistry() as metrics:
            cluster.run_round(tau)
        counters = metrics.snapshot()["counters"]
        return int(counters["bytes_over_pipe"]), int(counters["bytes_via_shm"])
    finally:
        cluster.close()


def bench_transports(families: list[str], worker_counts: list[int], rounds: int,
                     tau: int, repeats: int, n_shards: int) -> list[dict]:
    """sharded-pipe vs sharded-shm rows, in the communication-bound regime.

    ``tau`` here is deliberately small (default 1): every local step then
    pays a gather + broadcast, which is the traffic the shm plane exists to
    take off the pipes.  Large-``tau`` runs amortize transport behind
    arithmetic and would measure mostly noise.  The rows use the
    :data:`TRANSPORT_FAMILIES` sizings (wide layers, small batch) for the
    same reason — see that table's comment.
    """
    results = []
    for family in families:
        print(f"transport comparison: {TRANSPORT_FAMILIES[family]['label']}, "
              f"batch {TRANSPORT_FAMILIES[family]['batch_size']}, "
              f"{rounds} rounds x tau={tau}, {n_shards} procs")
        print(f"{'m':>4} {'pipe (s)':>10} {'shm (s)':>10} {'shm speedup':>12} "
              f"{'pipe B/round':>13} {'shm pipe B/round':>17}")
        for m in worker_counts:
            pipe_s, pipe_loss = time_backend(
                "sharded", family, m, rounds, tau, repeats,
                n_shards=n_shards, shard_transport="pipe", families=TRANSPORT_FAMILIES,
            )
            shm_s, shm_loss = time_backend(
                "sharded", family, m, rounds, tau, repeats,
                n_shards=n_shards, shard_transport="shm", families=TRANSPORT_FAMILIES,
            )
            if shm_loss != pipe_loss:
                raise SystemExit(
                    f"transport mismatch for {family} at m={m}: shm loss {shm_loss} "
                    f"must be byte-identical to pipe {pipe_loss}"
                )
            pipe_bytes, _ = round_transfer_bytes(family, m, tau, n_shards, "pipe")
            shm_pipe_bytes, shm_bytes = round_transfer_bytes(family, m, tau, n_shards, "shm")
            speedup = pipe_s / shm_s
            results.append(
                {
                    "model": family,
                    "n_workers": m,
                    "pipe_seconds": round(pipe_s, 6),
                    "shm_seconds": round(shm_s, 6),
                    "shm_speedup": round(speedup, 3),
                    "pipe_payload_bytes_per_round": pipe_bytes,
                    "shm_pipe_payload_bytes_per_round": shm_pipe_bytes,
                    "shm_payload_bytes_per_round": shm_bytes,
                    "final_loss": round(float(shm_loss), 8),
                }
            )
            print(f"{m:>4} {pipe_s:>10.3f} {shm_s:>10.3f} {speedup:>11.2f}x "
                  f"{pipe_bytes:>13} {shm_pipe_bytes:>17}")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", default="4,8,16",
                        help="comma-separated cluster sizes to benchmark")
    parser.add_argument("--models", default="mlp,cnn",
                        help=f"comma-separated model families ({', '.join(FAMILIES)})")
    # 12 rounds keeps every timed sample long enough (hundreds of ms even for
    # the smallest loop config) that scheduler noise stays well inside the CI
    # ratchet's tolerance; the extra rounds cost little since pool spawns and
    # cluster construction — the bulk of the wall time — are untimed one-offs.
    parser.add_argument("--rounds", type=int, default=12, help="PASGD rounds per run")
    parser.add_argument("--tau", type=int, default=10, help="local steps per round")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (median is reported; one untimed "
                             "warm-up run precedes them)")
    parser.add_argument("--shards", type=int, default=2,
                        help="process count for the sharded backend family")
    parser.add_argument("--transport-workers", default="4,8,16,32",
                        help="comma-separated cluster sizes for the sharded "
                             "pipe-vs-shm transport comparison ('' to skip it)")
    parser.add_argument("--transport-tau", type=int, default=1,
                        help="local steps per round for the transport rows; "
                             "tau=1 is the communication-bound regime the shm "
                             "plane targets")
    parser.add_argument("--out", default="BENCH_backend.json",
                        help="path of the JSON results file")
    args = parser.parse_args(argv)

    worker_counts = [int(m) for m in args.workers.split(",")]
    families = [f.strip() for f in args.models.split(",") if f.strip()]
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        raise SystemExit(f"unknown model families {unknown}; choose from {list(FAMILIES)}")

    # Every family must resolve auto -> the bank backend (the PR 4 contract:
    # the loop is only the reference implementation now).
    auto_backend = {}
    for family in families:
        auto_backend[family] = build_cluster("auto", family, worker_counts[0]).backend_name
        if auto_backend[family] != "vectorized":
            raise SystemExit(
                f"model family {family!r} resolved auto -> {auto_backend[family]!r}; "
                f"expected the vectorized bank backend"
            )

    results = []
    for family in families:
        print(f"backend speedup: {FAMILIES[family]['label']}, "
              f"batch {FAMILIES[family]['batch_size']}, "
              f"{args.rounds} rounds x tau={args.tau}  (auto -> {auto_backend[family]}, "
              f"sharded on {args.shards} procs)")
        print(f"{'m':>4} {'loop (s)':>10} {'vectorized (s)':>15} {'speedup':>8} "
              f"{'sharded (s)':>12} {'speedup':>8}")
        for m in worker_counts:
            loop_s, loop_loss = time_backend("loop", family, m, args.rounds, args.tau, args.repeats)
            vec_s, vec_loss = time_backend("vectorized", family, m, args.rounds, args.tau, args.repeats)
            sharded_s, sharded_loss = time_backend(
                "sharded", family, m, args.rounds, args.tau, args.repeats, n_shards=args.shards
            )
            if not np.isclose(loop_loss, vec_loss, atol=1e-6):
                raise SystemExit(
                    f"backend mismatch for {family} at m={m}: loop loss {loop_loss} "
                    f"vs vectorized {vec_loss}"
                )
            if sharded_loss != vec_loss:
                raise SystemExit(
                    f"backend mismatch for {family} at m={m}: sharded loss {sharded_loss} "
                    f"must be byte-identical to vectorized {vec_loss}"
                )
            speedup = loop_s / vec_s
            sharded_speedup = loop_s / sharded_s
            results.append(
                {
                    "model": family,
                    "n_workers": m,
                    "loop_seconds": round(loop_s, 6),
                    "vectorized_seconds": round(vec_s, 6),
                    "speedup": round(speedup, 3),
                    "sharded_seconds": round(sharded_s, 6),
                    "sharded_speedup": round(sharded_speedup, 3),
                    "final_loss": round(float(vec_loss), 8),
                }
            )
            print(f"{m:>4} {loop_s:>10.3f} {vec_s:>15.3f} {speedup:>7.1f}x "
                  f"{sharded_s:>12.3f} {sharded_speedup:>7.1f}x")

    transport_workers = [int(m) for m in args.transport_workers.split(",") if m.strip()]
    transport_results = (
        bench_transports(
            families, transport_workers, args.rounds, args.transport_tau,
            args.repeats, args.shards,
        )
        if transport_workers
        else []
    )

    payload = {
        "benchmark": "bench_backend_speedup",
        "models": {f: FAMILIES[f]["label"] for f in families},
        "auto_backend": auto_backend,
        "backends": ["loop", "vectorized", "sharded"],
        "batch_size": {f: FAMILIES[f]["batch_size"] for f in families},
        "rounds": args.rounds,
        "tau": args.tau,
        "repeats": args.repeats,
        "timing": {"aggregate": "median", "warmup_runs": 1},
        "shards": args.shards,
        "results": results,
        "transport": {
            "transports": ["pipe", "shm"],
            "tau": args.transport_tau,
            "models": {f: TRANSPORT_FAMILIES[f]["label"] for f in families},
            "batch_size": {f: TRANSPORT_FAMILIES[f]["batch_size"] for f in families},
            "results": transport_results,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
