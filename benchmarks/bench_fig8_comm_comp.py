"""Figure 8: wall-clock time to finish 100 iterations, split into computation
and communication, for the ResNet-like and VGG-like workloads at τ=1 and τ=10.

In the paper this is measured on the 4-node testbed; here it is produced by
the calibrated delay model (α_vgg ≈ 4, α_resnet ≈ 0.5), run through the same
runtime simulator that drives the training benchmarks, so the bar heights
directly explain why VGG benefits from large τ much more than ResNet.
"""

from __future__ import annotations

from repro.experiments.configs import make_config
from repro.runtime.distributions import ShiftedExponentialDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

N_ITERATIONS = 100
CASES = [
    ("resnet_lite, tau=1", "resnet_cifar10_fixed_lr", 1),
    ("resnet_lite, tau=10", "resnet_cifar10_fixed_lr", 10),
    ("vgg_lite,    tau=1", "vgg_cifar10_fixed_lr", 1),
    ("vgg_lite,    tau=10", "vgg_cifar10_fixed_lr", 10),
]


def _simulate_case(config_name: str, tau: int) -> dict[str, float]:
    config = make_config(config_name)
    scale = config.compute_time * config.compute_time_std_fraction
    compute = ShiftedExponentialDelay(shift=config.compute_time - scale, scale=scale)
    simulator = RuntimeSimulator(
        compute,
        NetworkModel(config.communication_delay, config.network_scaling),
        config.n_workers,
        rng=0,
    )
    rounds = N_ITERATIONS // tau
    for _ in range(rounds):
        simulator.sample_local_period(tau)
        simulator.sample_communication()
    return simulator.breakdown()


def _run_all():
    return [(label, _simulate_case(name, tau)) for label, name, tau in CASES]


def bench_fig8_comm_comp_breakdown(benchmark, report):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [
        f"Figure 8 — simulated wall-clock time to finish {N_ITERATIONS} iterations (4 workers)",
        "  case                 compute_time  communication_time  total",
    ]
    table = {}
    for label, breakdown in results:
        total = breakdown["compute_time"] + breakdown["communication_time"]
        table[label.strip()] = breakdown
        lines.append(
            f"  {label:20s} {breakdown['compute_time']:12.1f}  {breakdown['communication_time']:18.1f}  {total:6.1f}"
        )
    vgg1 = table["vgg_lite,    tau=1"]
    res1 = table["resnet_lite, tau=1"]
    lines.append(
        f"  comm/comp ratio at tau=1:  vgg_lite {vgg1['communication_time'] / vgg1['compute_time']:.2f}"
        f"   resnet_lite {res1['communication_time'] / res1['compute_time']:.2f}"
        "   (paper: ~4 for VGG-16, <1 for ResNet-50)"
    )
    report("\n".join(lines))

    # Shape checks: VGG is communication-dominated at tau=1, ResNet is not; tau=10
    # slashes the communication share for both.
    assert vgg1["communication_time"] > vgg1["compute_time"]
    assert res1["communication_time"] < res1["compute_time"]
    vgg10 = table["vgg_lite,    tau=10"]
    assert vgg10["communication_time"] < 0.2 * vgg1["communication_time"]
