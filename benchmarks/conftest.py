"""Shared helpers for the benchmark targets.

Each bench regenerates one table or figure of the paper.  Because the
workloads are simulations rather than micro-kernels, every bench runs its
payload exactly once through ``benchmark.pedantic(..., rounds=1)`` — the
timing that pytest-benchmark reports is the real cost of regenerating that
artifact — and writes the regenerated table / data series both to stdout and
to ``benchmarks/output/<name>.txt`` so the numbers can be inspected after the
run and compared against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def report(output_dir, request):
    """Return a callable that records a text artifact for the current bench."""

    def _report(text: str, name: str | None = None) -> str:
        stem = name or request.node.name
        path = output_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return text

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
