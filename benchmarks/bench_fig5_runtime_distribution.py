"""Figure 5: distribution of the per-iteration runtime, sync SGD vs PASGD(τ=10).

Setting of the paper: communication delay D = 1, exponential compute times
with mean y = 1, m = 16 workers.  The figure shows that PASGD's runtime per
iteration has roughly half the mean ("2x less") and a much lighter tail.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.distributions import ExponentialDelay
from repro.runtime.order_stats import empirical_max_distribution, expected_max_exponential

M_WORKERS = 16
COMM_DELAY = 1.0
MEAN_COMPUTE = 1.0
N_SAMPLES = 50_000


def _simulate():
    sync = empirical_max_distribution(
        ExponentialDelay(MEAN_COMPUTE), M_WORKERS, tau=1, comm_delay=COMM_DELAY,
        n_samples=N_SAMPLES, rng=0,
    )
    pasgd = empirical_max_distribution(
        ExponentialDelay(MEAN_COMPUTE), M_WORKERS, tau=10, comm_delay=COMM_DELAY,
        n_samples=N_SAMPLES, rng=1,
    )
    return sync, pasgd


def bench_fig5_runtime_distribution(benchmark, report):
    sync, pasgd = benchmark.pedantic(_simulate, rounds=1, iterations=1)

    edges = np.linspace(0.0, 8.0, 17)
    hist_sync, _ = np.histogram(sync, bins=edges, density=True)
    hist_pasgd, _ = np.histogram(pasgd, bins=edges, density=True)

    lines = [
        "Figure 5 — per-iteration runtime distribution (D=1, y=1, m=16)",
        f"  analytic E[Y_16:16] + D     = {expected_max_exponential(MEAN_COMPUTE, M_WORKERS) + COMM_DELAY:.3f}",
        f"  sync SGD   mean {sync.mean():.3f}   p95 {np.quantile(sync, 0.95):.3f}   p99 {np.quantile(sync, 0.99):.3f}",
        f"  PASGD t=10 mean {pasgd.mean():.3f}   p95 {np.quantile(pasgd, 0.95):.3f}   p99 {np.quantile(pasgd, 0.99):.3f}",
        f"  mean ratio (sync / PASGD): {sync.mean() / pasgd.mean():.2f}x   (paper reports ~2x less)",
        "  bin_left  density_sync  density_pasgd",
    ]
    for left, hs, hp in zip(edges[:-1], hist_sync, hist_pasgd):
        lines.append(f"  {left:7.2f}  {hs:12.4f}  {hp:13.4f}")
    report("\n".join(lines))

    # Shape check: PASGD is at least 1.5x faster per iteration and lighter-tailed.
    assert sync.mean() / pasgd.mean() > 1.5
    assert np.quantile(pasgd, 0.99) < np.quantile(sync, 0.99)
