"""Figures 12–13 (appendix): 8-worker runs with variable learning rate.

The appendix repeats the main experiments with m = 8 workers (per-worker
mini-batch 64, NCCL all-reduce in the paper; here the same delay model with
m = 8).  The qualitative conclusions are unchanged: ADACOMM is ~2.9× faster
than synchronous SGD on the communication-heavy workload and ~1.6× on the
compute-heavy one.
"""

from __future__ import annotations

import numpy as np

from _helpers import format_loss_curves, format_speedups, format_tau_staircase
from repro.experiments.configs import make_config
from repro.experiments.harness import run_experiment


def bench_fig12_vgg_8workers_variable_lr(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("vgg_cifar10_8workers")), rounds=1, iterations=1
    )
    target = 0.85
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 12 — vgg_lite, variable LR, synth-CIFAR10, 8 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
            "AdaComm communication-period staircase:",
            format_tau_staircase(store.get("adacomm")),
        ]
    )
    report(text)
    ada, sync = store.get("adacomm"), store.get("sync-sgd")
    assert ada.time_to_loss(target) < sync.time_to_loss(target)


def bench_fig13_resnet_8workers_variable_lr(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("resnet_cifar10_8workers")), rounds=1, iterations=1
    )
    target = 0.9
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 13 — resnet_lite, variable LR, synth-CIFAR10, 8 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
        ]
    )
    report(text)
    assert store.get("adacomm").time_to_loss(target) < 1.3 * store.get("sync-sgd").time_to_loss(target)
    assert np.isfinite(store.get("adacomm").final_loss())
