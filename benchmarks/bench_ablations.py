"""Ablations on ADACOMM's design choices (beyond the paper's figures).

DESIGN.md calls out four knobs whose values the paper fixes by hand; each
bench sweeps one of them on the communication-heavy workload and reports the
time-to-target-loss and final floor, so the sensitivity of the headline
result to that choice is visible:

* ``gamma`` — the multiplicative decay used when the τ update stalls (eq. 18).
* ``interval`` — the adaptation interval length T0.
* ``tau0`` — the initial communication period (the paper grid-searches it).
* ``network scaling`` — how the broadcast delay grows with the cluster size
  (parameter server vs reduction tree vs ring all-reduce).
"""

from __future__ import annotations

import numpy as np

from repro.core.adacomm import AdaCommConfig
from repro.core.schedules import AdaCommSchedule
from repro.experiments.configs import make_config
from repro.experiments.harness import MethodSpec, run_experiment

TARGET_LOSS = 0.80
BASE_CONFIG_NAME = "vgg_cifar10_fixed_lr"


def _adacomm_method(label: str, **adacomm_kwargs) -> MethodSpec:
    return MethodSpec(
        label,
        lambda: AdaCommSchedule(AdaCommConfig(**adacomm_kwargs)),
    )


def _floor(record) -> float:
    return float(np.mean(record.train_losses[-8:]))


def _report_sweep(report, title: str, records) -> None:
    lines = [title, f"  target training loss: {TARGET_LOSS}"]
    for record in records:
        lines.append(
            f"  {record.name:24s} time-to-target {record.time_to_loss(TARGET_LOSS):8.1f} s"
            f"   final floor {_floor(record):.4f}"
        )
    report("\n".join(lines))


def bench_ablation_gamma(benchmark, report):
    """Effect of the saturation-decay factor γ in eq. 18."""
    config = make_config(BASE_CONFIG_NAME)

    def run():
        methods = [
            _adacomm_method(
                f"adacomm-gamma{gamma}",
                initial_tau=config.adacomm_initial_tau,
                interval_length=config.adacomm_interval,
                gamma=gamma,
            )
            for gamma in (0.25, 0.5, 0.75, 0.9)
        ]
        return list(run_experiment(config, methods=methods))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    _report_sweep(report, "Ablation — saturation decay factor gamma (eq. 18)", records)
    assert all(np.isfinite(_floor(r)) for r in records)


def bench_ablation_interval_length(benchmark, report):
    """Effect of the adaptation interval T0 (Section 4: smaller T0 tracks the
    error-runtime trade-off more closely but adapts from noisier loss estimates)."""
    config = make_config(BASE_CONFIG_NAME)

    def run():
        methods = [
            _adacomm_method(
                f"adacomm-T0={int(t0)}",
                initial_tau=config.adacomm_initial_tau,
                interval_length=t0,
            )
            for t0 in (60.0, 120.0, 240.0, 480.0)
        ]
        return list(run_experiment(config, methods=methods))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    _report_sweep(report, "Ablation — adaptation interval length T0", records)
    assert all(np.isfinite(_floor(r)) for r in records)


def bench_ablation_initial_tau(benchmark, report):
    """Sensitivity to the initial communication period τ0 (paper: grid search)."""
    config = make_config(BASE_CONFIG_NAME)

    def run():
        methods = [
            _adacomm_method(
                f"adacomm-tau0={tau0}",
                initial_tau=tau0,
                interval_length=config.adacomm_interval,
            )
            for tau0 in (5, 10, 20, 50)
        ]
        return list(run_experiment(config, methods=methods))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    _report_sweep(report, "Ablation — initial communication period tau0", records)
    # Every tau0 in the sweep should still reach the target within the budget:
    # AdaComm is robust to a mis-chosen starting point because it adapts.
    assert all(np.isfinite(r.time_to_loss(TARGET_LOSS)) for r in records)


def bench_ablation_network_scaling(benchmark, report):
    """Effect of the collective's s(m) scaling on sync SGD vs ADACOMM.

    With a parameter-server (linear in m) collective the communication delay is
    larger, so ADACOMM's advantage over fully synchronous SGD grows; with a ring
    all-reduce it shrinks.  This reproduces the paper's observation that the
    benefit of infrequent averaging is governed by the comm/comp ratio.
    """

    def run():
        results = {}
        for scaling in ("ring_allreduce", "reduction_tree", "parameter_server"):
            # Keep D0 fixed so s(m) alone changes the effective alpha.
            config = make_config(BASE_CONFIG_NAME, network_scaling=scaling, alpha=1.0)
            store = run_experiment(config)
            results[scaling] = store
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — network scaling s(m) (D = D0 * s(m), D0 = Y)"]
    speedups = {}
    for scaling, store in results.items():
        sync_t = store.get("sync-sgd").time_to_loss(TARGET_LOSS)
        ada_t = store.get("adacomm").time_to_loss(TARGET_LOSS)
        speedups[scaling] = sync_t / ada_t
        lines.append(
            f"  {scaling:18s} sync-sgd {sync_t:8.1f} s   adacomm {ada_t:8.1f} s   speedup {speedups[scaling]:.2f}x"
        )
    report("\n".join(lines))
    assert speedups["parameter_server"] > speedups["ring_allreduce"]
