"""Figure 9: ADACOMM on the VGG-like (communication-heavy) workload.

Three panels in the paper: (a) variable learning rate on CIFAR-10, (b) fixed
learning rate on CIFAR-10, (c) fixed learning rate on CIFAR-100; each panel
compares τ ∈ {1, 20, 100} against ADACOMM, plotting training loss against
wall-clock time plus the communication-period staircase of ADACOMM.

The headline claim reproduced here (panel b): ADACOMM reaches the target
training loss several times faster than fully synchronous SGD while ending at
a comparable (or lower) loss floor, whereas τ = 100 plateaus at a clearly
higher floor.
"""

from __future__ import annotations

import numpy as np

from _helpers import format_loss_curves, format_speedups, format_tau_staircase
from repro.experiments.configs import make_config
from repro.experiments.harness import run_experiment


def _run(config_name: str, **overrides):
    return run_experiment(make_config(config_name, **overrides))


def _floor(record) -> float:
    return float(np.mean(record.train_losses[-8:]))


def bench_fig9b_vgg_cifar10_fixed_lr(benchmark, report):
    store = benchmark.pedantic(lambda: _run("vgg_cifar10_fixed_lr"), rounds=1, iterations=1)
    target = 0.80
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 9(b) — vgg_lite, fixed LR, synth-CIFAR10, 4 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
            "AdaComm communication-period staircase:",
            format_tau_staircase(store.get("adacomm")),
        ]
    )
    report(text)

    ada, sync, tau100 = store.get("adacomm"), store.get("sync-sgd"), store.get("pasgd-tau100")
    assert ada.time_to_loss(target) < 0.8 * sync.time_to_loss(target)
    assert _floor(tau100) > 1.1 * _floor(sync)
    assert _floor(ada) < 1.15 * _floor(sync)


def bench_fig9a_vgg_cifar10_variable_lr(benchmark, report):
    store = benchmark.pedantic(lambda: _run("vgg_cifar10_variable_lr"), rounds=1, iterations=1)
    target = 0.80
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 9(a) — vgg_lite, variable LR, synth-CIFAR10, 4 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
            "AdaComm communication-period staircase:",
            format_tau_staircase(store.get("adacomm")),
        ]
    )
    report(text)
    assert store.get("adacomm").time_to_loss(target) < store.get("sync-sgd").time_to_loss(target)


def bench_fig9c_vgg_cifar100_fixed_lr(benchmark, report):
    store = benchmark.pedantic(lambda: _run("vgg_cifar100_fixed_lr"), rounds=1, iterations=1)
    # CIFAR-100 starts at ~log(100) ≈ 4.6; use a mid-training target.
    target = 3.5
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 9(c) — vgg_lite, fixed LR, synth-CIFAR100, 4 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
        ]
    )
    report(text)
    assert store.get("adacomm").time_to_loss(target) <= store.get("sync-sgd").time_to_loss(target)
