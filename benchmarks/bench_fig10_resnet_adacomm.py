"""Figure 10: ADACOMM on the ResNet-like (compute-heavy) workload.

With α ≈ 0.5 the communication overhead is no longer the bottleneck, so
(as the paper observes) fully synchronous SGD is already near the best
fixed-τ method in the error-runtime plane; ADACOMM remains competitive and
far better than the extreme-throughput τ = 100 baseline.
"""

from __future__ import annotations

import numpy as np

from _helpers import format_loss_curves, format_speedups, format_tau_staircase
from repro.experiments.configs import make_config
from repro.experiments.harness import run_experiment


def _floor(record) -> float:
    return float(np.mean(record.train_losses[-8:]))


def bench_fig10b_resnet_cifar10_fixed_lr(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("resnet_cifar10_fixed_lr")), rounds=1, iterations=1
    )
    target = 0.85
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 10(b) — resnet_lite, fixed LR, synth-CIFAR10, 4 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
            "AdaComm communication-period staircase:",
            format_tau_staircase(store.get("adacomm")),
        ]
    )
    report(text)

    ada, sync, tau100 = store.get("adacomm"), store.get("sync-sgd"), store.get("pasgd-tau100")
    # Compute-heavy regime: AdaComm stays competitive with sync SGD (within 25%
    # on the time-to-target metric) and clearly beats the tau=100 baseline's floor.
    assert ada.time_to_loss(target) < 1.25 * sync.time_to_loss(target)
    assert _floor(ada) < _floor(tau100)


def bench_fig10a_resnet_cifar10_variable_lr(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("resnet_cifar10_variable_lr")), rounds=1, iterations=1
    )
    target = 0.85
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 10(a) — resnet_lite, variable LR, synth-CIFAR10, 4 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
        ]
    )
    report(text)
    assert store.get("adacomm").time_to_loss(target) < 1.25 * store.get("sync-sgd").time_to_loss(target)


def bench_fig10c_resnet_cifar100_fixed_lr(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("resnet_cifar100_fixed_lr")), rounds=1, iterations=1
    )
    target = 3.5
    text = "\n".join(
        [
            format_loss_curves(store, title="Figure 10(c) — resnet_lite, fixed LR, synth-CIFAR100, 4 workers"),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
        ]
    )
    report(text)
    assert store.get("adacomm").time_to_loss(target) < 1.25 * store.get("sync-sgd").time_to_loss(target)
