"""CI perf ratchet: compare fresh speedup ratios against the committed baseline.

Usage::

    python benchmarks/check_perf_ratchet.py BENCH_backend.json BENCH_fresh.json [more_fresh.json ...]

Every row of the committed ``BENCH_backend.json`` must be reproduced within a
generous tolerance: the fresh ``speedup`` and ``sharded_speedup`` ratios may
not fall more than 30% below the committed ones.  Ratios — not absolute
seconds — are compared, so the check is robust to slow or fast runners; the
tolerance absorbs ordinary scheduler noise, so only a backend that genuinely
lost its advantage fails.  When several fresh files are given, each row takes
its best ratio across them — the CI job re-runs the benchmark once before
failing, so a single noisy sample on a loaded runner cannot fail the build,
while a real regression reproduces in both runs and still does.

When the baseline carries a ``"transport"`` section (sharded-pipe vs
sharded-shm), its ``shm_speedup`` ratios ratchet under the same tolerance,
with one additional *hard* gate: the shared-memory plane must beat the Pipe
transport outright (``shm_speedup > 1``) at m=16 on the CNN family — the
headline workload the zero-copy plane exists for.  The gate compares the two
transports on the *same* fresh run, so it is runner-speed-independent.

Exit status 0 when every row holds, 1 with a per-row report otherwise.
"""

from __future__ import annotations

import json
import sys

#: Fail only on a >30% regression of any speedup ratio.
TOLERANCE = 0.30

#: The ratio fields of each benchmark row that ratchet forward PR by PR.
RATIO_FIELDS = ("speedup", "sharded_speedup")

#: Ratio fields of the transport-comparison rows (pipe vs shm data planes).
TRANSPORT_RATIO_FIELDS = ("shm_speedup",)

#: The hard transport gate: (model, n_workers) rows where the fresh shm
#: plane must beat the Pipe transport outright, not merely stay in tolerance.
TRANSPORT_MUST_WIN = (("cnn", 16),)


def _rows(payload: dict, section: "str | None") -> "list[dict]":
    if section is None:
        return payload["results"]
    return payload.get(section, {}).get("results", [])


def merge_best(fresh_payloads: "list[dict]", fields: "tuple[str, ...]" = RATIO_FIELDS,
               section: "str | None" = None) -> dict:
    """Best ratio per (model, n_workers, field) across the fresh runs."""
    best: dict = {}
    for payload in fresh_payloads:
        for row in _rows(payload, section):
            key = (row["model"], row["n_workers"])
            entry = best.setdefault(key, {})
            for field in fields:
                entry[field] = max(entry.get(field, float("-inf")), row[field])
    return best


def _ratchet_rows(baseline_rows: "list[dict]", best: dict,
                  fields: "tuple[str, ...]" = RATIO_FIELDS) -> "list[str]":
    failures: list[str] = []
    for row in baseline_rows:
        key = (row["model"], row["n_workers"])
        got = best.get(key)
        if got is None:
            failures.append(f"benchmark dropped the {key} row")
            print(f"MISSING {key[0]} m={key[1]}")
            continue
        for field in fields:
            floor = row[field] * (1 - TOLERANCE)
            ok = got[field] >= floor
            print(
                f"{'ok ' if ok else 'REGRESSION'} {key[0]} m={key[1]} {field}: "
                f"committed {row[field]:.2f}x, fresh {got[field]:.2f}x, "
                f"floor {floor:.2f}x"
            )
            if not ok:
                failures.append(
                    f"{key[0]} m={key[1]} {field} regressed beyond "
                    f"{TOLERANCE:.0%}: {row[field]:.2f}x -> {got[field]:.2f}x"
                )
    return failures


def regressions(baseline: dict, fresh_payloads: "list[dict]") -> "list[str]":
    """Report lines for every baseline row; returns the failing subset."""
    failures = _ratchet_rows(baseline["results"], merge_best(fresh_payloads))

    transport_rows = _rows(baseline, "transport")
    if transport_rows:
        best = merge_best(fresh_payloads, TRANSPORT_RATIO_FIELDS, section="transport")
        failures += _ratchet_rows(transport_rows, best, TRANSPORT_RATIO_FIELDS)
        for key in TRANSPORT_MUST_WIN:
            got = best.get(key)
            if got is None:
                continue  # already reported as a dropped row above
            ok = got["shm_speedup"] > 1.0
            print(
                f"{'ok ' if ok else 'FAILED GATE'} {key[0]} m={key[1]}: shm must "
                f"beat pipe outright, fresh shm_speedup {got['shm_speedup']:.2f}x"
            )
            if not ok:
                failures.append(
                    f"hard gate: shm did not beat pipe at {key[0]} m={key[1]} "
                    f"(shm_speedup {got['shm_speedup']:.2f}x <= 1.00x)"
                )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) < 2:
        print(__doc__)
        return 2
    baseline = json.load(open(argv[0]))
    fresh_payloads = [json.load(open(path)) for path in argv[1:]]
    failures = regressions(baseline, fresh_payloads)
    if failures:
        print(f"\n{len(failures)} speedup regression(s) beyond {TOLERANCE:.0%}:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"\nall {len(baseline['results'])} rows within {TOLERANCE:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
