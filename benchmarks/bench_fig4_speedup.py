"""Figure 4: runtime speed-up of PASGD over fully synchronous SGD.

The paper plots ``(1 + α) / (1 + α/τ)`` for α ∈ {0.1, 0.5, 0.9} and
τ ∈ [1, 100].  This bench regenerates the three curves and additionally
verifies them against the general (Monte-Carlo) speed-up computed from the
runtime model, which is how the simulated cluster actually advances its
clock.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.distributions import ConstantDelay
from repro.runtime.model import RuntimeModel, speedup_constant_delays
from repro.runtime.network import NetworkModel

ALPHAS = (0.1, 0.5, 0.9)
TAUS = (1, 2, 5, 10, 20, 40, 60, 80, 100)


def _compute_curves():
    rows = []
    for alpha in ALPHAS:
        analytic = speedup_constant_delays(alpha, np.array(TAUS))
        model = RuntimeModel(
            compute=ConstantDelay(1.0),
            network=NetworkModel(base_delay=alpha, scaling="constant"),
            n_workers=4,
        )
        simulated = [model.speedup(tau) for tau in TAUS]
        rows.append((alpha, analytic, simulated))
    return rows


def bench_fig4_speedup_curves(benchmark, report):
    rows = benchmark.pedantic(_compute_curves, rounds=1, iterations=1)
    lines = ["Figure 4 — speedup of PASGD over fully synchronous SGD, (1+a)/(1+a/tau)"]
    header = "  tau:    " + "".join(f"{t:>8d}" for t in TAUS)
    lines.append(header)
    for alpha, analytic, simulated in rows:
        lines.append(f"  a={alpha:<4.1f} " + "".join(f"{s:8.3f}" for s in analytic))
        lines.append(f"   (sim) " + "".join(f"{s:8.3f}" for s in simulated))
    report("\n".join(lines))

    # Shape checks mirroring the paper: monotone in tau, larger alpha → larger speedup.
    for alpha, analytic, _ in rows:
        assert np.all(np.diff(analytic) >= -1e-12)
        assert analytic[0] == 1.0
    assert rows[-1][1][-1] > rows[0][1][-1]
