"""Figure 14 (appendix): accuracy gap between local models and the synchronized model.

The paper evaluates PASGD (τ = 15) in two cadences: right after every
averaging step (synchronized model) versus on a fixed iteration grid that
usually lands mid-period (a local model), and observes a ~10% accuracy gap —
evidence that the local updates between averaging steps are "inefficient".
This bench reproduces the comparison on the simulated cluster by evaluating
worker 0's local model at the end of each local period (just before
averaging) and the synchronized model right after averaging.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.cluster import SimulatedCluster
from repro.experiments.configs import make_config
from repro.experiments.harness import _build_compute_distribution
from repro.models.mlp import MLP
from repro.nn.losses import accuracy
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

TAU = 15
N_ROUNDS = 60


def _run():
    config = make_config("vgg_cifar10_fixed_lr", lr=0.3)
    train, test = config.build_dataset(rng=0).split(test_fraction=0.2, rng=0)

    def model_fn():
        return MLP(config.n_features, config.n_classes, hidden_sizes=config.hidden_sizes, rng=11)

    runtime = RuntimeSimulator(
        _build_compute_distribution(config),
        NetworkModel(config.communication_delay, config.network_scaling),
        config.n_workers,
        rng=0,
    )
    cluster = SimulatedCluster(
        model_fn, train, runtime, config.n_workers, batch_size=config.batch_size,
        lr=config.lr, weight_decay=config.weight_decay, seed=0,
    )

    local_accs, synced_accs = [], []
    for _ in range(N_ROUNDS):
        cluster.run_local_period(TAU)
        # Local model just before averaging (what a mid-period evaluation sees).
        local_accs.append(accuracy(cluster.workers[0].model(test.X), test.y))
        cluster.average_models()
        synced_accs.append(
            cluster.evaluate_synchronized(test.X, test.y, lambda m, X, y: accuracy(m(X), y))
        )
    return np.array(local_accs), np.array(synced_accs)


def bench_fig14_local_vs_synchronized_accuracy(benchmark, report):
    local_accs, synced_accs = benchmark.pedantic(_run, rounds=1, iterations=1)

    tail = slice(N_ROUNDS // 2, None)  # compare after the curves have stabilized
    gap = 100 * float(np.mean(synced_accs[tail]) - np.mean(local_accs[tail]))
    lines = [
        f"Figure 14 — PASGD (tau={TAU}): local vs synchronized model test accuracy",
        "  round   local_model_acc   synchronized_acc",
    ]
    for r in range(0, N_ROUNDS, max(1, N_ROUNDS // 12)):
        lines.append(f"  {r:5d}   {100 * local_accs[r]:15.2f}   {100 * synced_accs[r]:16.2f}")
    lines.append(f"  mean accuracy gap over the second half of training: {gap:.2f} points")
    lines.append("  (paper reports ~10 points between local and synchronized models)")
    report("\n".join(lines))

    # Shape check: the synchronized model is systematically better than the
    # mid-period local model.
    assert np.mean(synced_accs[tail]) > np.mean(local_accs[tail])
