"""Figure 6: Theorem 1's error bound versus wall-clock time, sync vs PASGD(τ=10).

Constants from the paper's caption: F(x1)=1, Finf=0, η=0.08, L=1, σ²=1, with
the same delay parameters as Figure 5 (D=1, y=1, m=16).  The curves show the
characteristic crossover: the τ=10 bound starts lower (fast initial progress
per wall-clock second) but flattens at a higher error floor.
"""

from __future__ import annotations

import numpy as np

from repro.core.theory import TheoreticalConstants, error_runtime_bound

CONSTANTS = TheoreticalConstants(
    initial_gap=1.0,
    lipschitz=1.0,
    gradient_variance=1.0,
    n_workers=16,
    compute_time=1.0,
    communication_delay=1.0,
)
LR = 0.08
TIMES = np.linspace(50.0, 4000.0, 40)


def _compute_bounds():
    sync = np.array([error_runtime_bound(CONSTANTS, LR, 1, t) for t in TIMES])
    pasgd = np.array([error_runtime_bound(CONSTANTS, LR, 10, t) for t in TIMES])
    return sync, pasgd


def bench_fig6_error_bound(benchmark, report):
    sync, pasgd = benchmark.pedantic(_compute_bounds, rounds=1, iterations=1)

    lines = [
        "Figure 6 — Theorem 1 gradient-norm bound vs total runtime (eta=0.08, L=1, s2=1, m=16)",
        "  runtime   bound_sync   bound_pasgd(tau=10)",
    ]
    for t, bs, bp in zip(TIMES[::4], sync[::4], pasgd[::4]):
        lines.append(f"  {t:7.0f}  {bs:11.4f}  {bp:19.4f}")
    crossover = TIMES[np.argmax(pasgd > sync)] if np.any(pasgd > sync) else float("inf")
    lines.append(f"  crossover time (pasgd bound exceeds sync bound): ~{crossover:.0f} s")
    lines.append(f"  sync floor  -> {sync[-1]:.4f}   pasgd floor -> {pasgd[-1]:.4f}")
    report("\n".join(lines))

    # Shape checks: early advantage for tau=10, higher asymptotic floor.
    assert pasgd[0] < sync[0]
    assert pasgd[-1] > sync[-1]
    assert np.all(np.diff(sync) <= 1e-12) and np.all(np.diff(pasgd) <= 1e-12)
