"""Figure 11: ADACOMM combined with block momentum (Section 5.3).

The paper applies the block-momentum scheme of eq. 24–25 (global momentum
β_glob = 0.3 on the accumulated per-period update, local momentum 0.9 with
buffers cleared at every averaging step) and shows ADACOMM retains its
wall-clock advantage in this setting as well.
"""

from __future__ import annotations

import numpy as np

from _helpers import format_loss_curves, format_speedups, format_tau_staircase
from repro.experiments.configs import make_config
from repro.experiments.harness import run_experiment


def _floor(record) -> float:
    return float(np.mean(record.train_losses[-8:]))


def bench_fig11b_vgg_block_momentum_cifar10(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("vgg_cifar10_block_momentum")), rounds=1, iterations=1
    )
    target = 0.85
    text = "\n".join(
        [
            format_loss_curves(
                store, title="Figure 11(b) — vgg_lite + block momentum (beta_glob=0.3, local 0.9), synth-CIFAR10"
            ),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
            "AdaComm communication-period staircase:",
            format_tau_staircase(store.get("adacomm")),
        ]
    )
    report(text)
    ada, sync = store.get("adacomm"), store.get("sync-sgd")
    assert ada.time_to_loss(target) < sync.time_to_loss(target)


def bench_fig11a_resnet_block_momentum_cifar10(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("resnet_cifar10_block_momentum")), rounds=1, iterations=1
    )
    target = 0.9
    text = "\n".join(
        [
            format_loss_curves(
                store, title="Figure 11(a) — resnet_lite + block momentum, synth-CIFAR10"
            ),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
        ]
    )
    report(text)
    assert store.get("adacomm").time_to_loss(target) < 1.3 * store.get("sync-sgd").time_to_loss(target)


def bench_fig11c_resnet_block_momentum_cifar100(benchmark, report):
    store = benchmark.pedantic(
        lambda: run_experiment(make_config("resnet_cifar100_block_momentum")), rounds=1, iterations=1
    )
    target = 3.5
    text = "\n".join(
        [
            format_loss_curves(
                store, title="Figure 11(c) — resnet_lite + block momentum, synth-CIFAR100"
            ),
            format_speedups(store, baseline="sync-sgd", target_loss=target),
        ]
    )
    report(text)
    assert np.isfinite(store.get("adacomm").final_loss())
