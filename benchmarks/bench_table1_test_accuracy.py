"""Table 1: best test accuracy within the time budget, per method.

The paper reports best CIFAR-10 test accuracies for VGG-16 and ResNet-50
under fixed and variable learning rates, for τ ∈ {1, 20/5, 100} and ADACOMM.
The finding to reproduce is ordinal, not absolute: ADACOMM's accuracy is at
worst on par with the best fixed-τ baseline and clearly better than the
extreme τ = 100 setting, and with a variable learning rate ADACOMM attains
the best accuracy of all methods (within noise).
"""

from __future__ import annotations

import math

from repro.experiments.configs import make_config
from repro.experiments.harness import run_experiment
from repro.experiments.tables import accuracy_table, format_table

SETTINGS = [
    ("vgg_lite / fixed LR", "vgg_cifar10_fixed_lr"),
    ("vgg_lite / variable LR", "vgg_cifar10_variable_lr"),
    ("resnet_lite / fixed LR", "resnet_cifar10_fixed_lr"),
    ("resnet_lite / variable LR", "resnet_cifar10_variable_lr"),
]


def _run_all():
    results = {}
    for label, config_name in SETTINGS:
        store = run_experiment(make_config(config_name, scale=0.75))
        results[label] = store
    return results


def bench_table1_best_test_accuracy(benchmark, report):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    headers = ["setting", "method", "best test accuracy (%)"]
    rows = []
    for label, store in results.items():
        for method, acc in accuracy_table(store):
            rows.append([label, method, acc])
    report(format_table(headers, rows, title="Table 1 — best test accuracies (synth-CIFAR10)"))

    # Ordinal checks per setting: AdaComm within 2 accuracy points of the best
    # method and at least as good as the extreme tau=100 baseline (within noise).
    for label, store in results.items():
        accs = {method: acc for method, acc in accuracy_table(store)}
        best = max(v for v in accs.values() if not math.isnan(v))
        assert accs["adacomm"] >= best - 2.0, f"{label}: adacomm {accs['adacomm']} vs best {best}"
        tau100_key = "pasgd-tau100"
        if tau100_key in accs:
            assert accs["adacomm"] >= accs[tau100_key] - 1.0
