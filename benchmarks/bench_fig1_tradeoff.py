"""Figure 1 (illustrative): error vs iterations versus error vs wall-clock time.

The point of the paper's opening figure is that the *ordering* of methods
flips when the x-axis changes from iteration count to wall-clock time: a
large communication period looks strictly worse per iteration but much better
per second (until its error floor bites).  This bench regenerates both views
from the same pair of runs on the communication-heavy workload.
"""

from __future__ import annotations

from repro.core.schedules import FixedCommunicationSchedule
from repro.experiments.configs import make_config
from repro.experiments.harness import MethodSpec, run_experiment

CONFIG = make_config("vgg_cifar10_fixed_lr", wall_time_budget=900.0)
METHODS = [
    MethodSpec("sync-sgd", lambda: FixedCommunicationSchedule(1)),
    MethodSpec("pasgd-tau20", lambda: FixedCommunicationSchedule(20)),
]


def _run():
    return run_experiment(CONFIG, methods=METHODS)


def bench_fig1_error_vs_iterations_and_time(benchmark, report):
    store = benchmark.pedantic(_run, rounds=1, iterations=1)
    sync = store.get("sync-sgd")
    pasgd = store.get("pasgd-tau20")

    lines = ["Figure 1 — the same two runs, seen against both x-axes"]
    lines.append("  (a) error vs number of iterations")
    lines.append("  iteration   loss_sync   loss_pasgd(tau=20)")
    iter_grid = [20, 60, 100, 140, 180]
    for k in iter_grid:
        def loss_at_iter(rec, k):
            losses = [p.train_loss for p in rec.points if p.iteration <= k]
            return losses[-1] if losses else float("nan")
        lines.append(f"  {k:9d}   {loss_at_iter(sync, k):9.4f}   {loss_at_iter(pasgd, k):9.4f}")

    lines.append("  (b) error vs wall-clock time (seconds)")
    lines.append("  wall_time   loss_sync   loss_pasgd(tau=20)")
    time_grid = [100, 250, 400, 600, 850]
    for t in time_grid:
        lines.append(f"  {t:9d}   {sync.loss_at_time(t):9.4f}   {pasgd.loss_at_time(t):9.4f}")
    report("\n".join(lines))

    # Per iteration, sync SGD is at least as good (fewer-noise updates); per
    # wall-clock second, PASGD is ahead early on.  This is the figure's message.
    sync_iter_loss = [p.train_loss for p in sync.points if p.iteration <= 100][-1]
    pasgd_iter_loss = [p.train_loss for p in pasgd.points if p.iteration <= 100][-1]
    assert sync_iter_loss <= pasgd_iter_loss * 1.1
    assert pasgd.loss_at_time(250.0) < sync.loss_at_time(250.0)
