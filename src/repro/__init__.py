"""repro — reproduction of ADACOMM (Wang & Joshi, MLSys 2019).

"Adaptive Communication Strategies to Achieve the Best Error-Runtime
Trade-off in Local-Update SGD" analyses periodic-averaging SGD (PASGD) in
terms of error versus *wall-clock time* and proposes ADACOMM, an adaptive
communication-period schedule.  This package implements the full system from
scratch on NumPy: the autograd/NN substrate, a simulated multi-worker cluster
with a stochastic delay model, PASGD with fixed and adaptive communication
periods, block momentum, the paper's theoretical bounds, and an experiment
harness that regenerates every table and figure of the evaluation section.

Every pluggable component — models, datasets, delay distributions, network
scalings, communication schedules, LR schedules — is resolved by name through
the registries in :mod:`repro.api`, so experiments are data: compose them
with the fluent :class:`Experiment` builder, serialize them with
``ExperimentConfig.to_dict()``/``from_dict()``, or run them from the CLI
(``python -m repro --config smoke --model vgg_lite_cnn --set n_workers=4``).

Quickstart
----------
>>> from repro import make_config, run_experiment
>>> config = make_config("smoke")
>>> store = run_experiment(config)
>>> sorted(store.names())  # doctest: +ELLIPSIS
['adacomm', ...]

Or declaratively, composing any registered model × dataset × delay × method
lineup:

>>> from repro import Experiment
>>> store = (
...     Experiment("smoke")
...     .model("vgg_lite_cnn")
...     .delay("pareto")
...     .methods("sync-sgd", "adacomm")
...     .run()
... )
>>> sorted(store.names())
['adacomm', 'sync-sgd']
"""

from repro.api import Experiment, Registry
from repro.core import (
    AdaCommConfig,
    AdaCommController,
    AdaCommSchedule,
    FixedCommunicationSchedule,
    PASGDTrainer,
    SequenceCommunicationSchedule,
    TrainerConfig,
    TheoreticalConstants,
    basic_tau_update,
    refined_tau_update,
    lr_coupled_tau_update,
    error_runtime_bound,
    optimal_communication_period,
)
from repro.distributed import SimulatedCluster, Worker
from repro.experiments import (
    ExperimentConfig,
    available_configs,
    config_spec,
    default_methods,
    make_config,
    parse_method_spec,
    run_experiment,
    run_method,
)
from repro.obs import MetricsRegistry, Tracer, read_trace
from repro.optim import SGD, BlockMomentum, ConstantLR, MultiStepLR, TauGatedStepLR
from repro.sweep import ResultStore, SweepRunner, SweepSpec, grid, paired, run_sweep
from repro.runtime import (
    ConstantDelay,
    ExponentialDelay,
    NetworkModel,
    RuntimeModel,
    RuntimeSimulator,
    speedup_constant_delays,
)
from repro.utils import RunRecord, RunStore

__version__ = "1.0.0"

__all__ = [
    "Experiment",
    "Registry",
    "AdaCommConfig",
    "AdaCommController",
    "AdaCommSchedule",
    "FixedCommunicationSchedule",
    "SequenceCommunicationSchedule",
    "PASGDTrainer",
    "TrainerConfig",
    "TheoreticalConstants",
    "basic_tau_update",
    "refined_tau_update",
    "lr_coupled_tau_update",
    "error_runtime_bound",
    "optimal_communication_period",
    "SimulatedCluster",
    "Worker",
    "ExperimentConfig",
    "available_configs",
    "config_spec",
    "default_methods",
    "make_config",
    "parse_method_spec",
    "run_experiment",
    "run_method",
    "SGD",
    "BlockMomentum",
    "ConstantLR",
    "MultiStepLR",
    "TauGatedStepLR",
    "ConstantDelay",
    "ExponentialDelay",
    "NetworkModel",
    "RuntimeModel",
    "RuntimeSimulator",
    "speedup_constant_delays",
    "MetricsRegistry",
    "Tracer",
    "read_trace",
    "RunRecord",
    "RunStore",
    "SweepSpec",
    "ResultStore",
    "SweepRunner",
    "run_sweep",
    "grid",
    "paired",
    "__version__",
]
