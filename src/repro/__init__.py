"""repro — reproduction of ADACOMM (Wang & Joshi, MLSys 2019).

"Adaptive Communication Strategies to Achieve the Best Error-Runtime
Trade-off in Local-Update SGD" analyses periodic-averaging SGD (PASGD) in
terms of error versus *wall-clock time* and proposes ADACOMM, an adaptive
communication-period schedule.  This package implements the full system from
scratch on NumPy: the autograd/NN substrate, a simulated multi-worker cluster
with a stochastic delay model, PASGD with fixed and adaptive communication
periods, block momentum, the paper's theoretical bounds, and an experiment
harness that regenerates every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import make_config, run_experiment
>>> config = make_config("smoke")
>>> store = run_experiment(config)
>>> sorted(store.names())  # doctest: +ELLIPSIS
['adacomm', ...]
"""

from repro.core import (
    AdaCommConfig,
    AdaCommController,
    AdaCommSchedule,
    FixedCommunicationSchedule,
    PASGDTrainer,
    SequenceCommunicationSchedule,
    TrainerConfig,
    TheoreticalConstants,
    basic_tau_update,
    refined_tau_update,
    lr_coupled_tau_update,
    error_runtime_bound,
    optimal_communication_period,
)
from repro.distributed import SimulatedCluster, Worker
from repro.experiments import (
    ExperimentConfig,
    available_configs,
    default_methods,
    make_config,
    run_experiment,
    run_method,
)
from repro.optim import SGD, BlockMomentum, ConstantLR, MultiStepLR, TauGatedStepLR
from repro.runtime import (
    ConstantDelay,
    ExponentialDelay,
    NetworkModel,
    RuntimeModel,
    RuntimeSimulator,
    speedup_constant_delays,
)
from repro.utils import RunRecord, RunStore

__version__ = "1.0.0"

__all__ = [
    "AdaCommConfig",
    "AdaCommController",
    "AdaCommSchedule",
    "FixedCommunicationSchedule",
    "SequenceCommunicationSchedule",
    "PASGDTrainer",
    "TrainerConfig",
    "TheoreticalConstants",
    "basic_tau_update",
    "refined_tau_update",
    "lr_coupled_tau_update",
    "error_runtime_bound",
    "optimal_communication_period",
    "SimulatedCluster",
    "Worker",
    "ExperimentConfig",
    "available_configs",
    "default_methods",
    "make_config",
    "run_experiment",
    "run_method",
    "SGD",
    "BlockMomentum",
    "ConstantLR",
    "MultiStepLR",
    "TauGatedStepLR",
    "ConstantDelay",
    "ExponentialDelay",
    "NetworkModel",
    "RuntimeModel",
    "RuntimeSimulator",
    "speedup_constant_delays",
    "RunRecord",
    "RunStore",
    "__version__",
]
