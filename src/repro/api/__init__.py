"""``repro.api`` — the unified registry + declarative experiment surface.

Everything the experiment harness composes — models, datasets, delay
distributions, network scalings, communication schedules, learning-rate
schedules — is resolved *by name* through the registries defined here, and a
whole experiment is therefore plain data: an :class:`ExperimentConfig` that
round-trips through JSON, or a fluent :class:`Experiment` builder chain::

    from repro.api import Experiment

    store = (
        Experiment("smoke")
        .model("vgg_lite_cnn")
        .delay("pareto")
        .methods("sync-sgd", "adacomm")
        .run()
    )

Third-party components plug in with one decorator::

    from repro.api import DELAYS

    @DELAYS.register("bimodal")
    class BimodalDelay(DelayDistribution):
        ...

The ``Experiment`` name is imported lazily so that ``repro.api`` itself stays
import-cycle-free with the subpackages that register into it.
"""

from __future__ import annotations

from repro.api.registries import (
    BACKENDS,
    COMM_SCHEDULES,
    DATASETS,
    DELAYS,
    LR_SCHEDULES,
    MODELS,
    NETWORK_SCALINGS,
    SWEEPS,
    all_registries,
)
from repro.api.registry import Registry, filter_kwargs

__all__ = [
    "Registry",
    "filter_kwargs",
    "MODELS",
    "DATASETS",
    "DELAYS",
    "NETWORK_SCALINGS",
    "COMM_SCHEDULES",
    "LR_SCHEDULES",
    "BACKENDS",
    "SWEEPS",
    "all_registries",
    "Experiment",
]


def __getattr__(name: str):
    if name == "Experiment":
        from repro.api.experiment import Experiment

        return Experiment
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
