"""The generic plugin registry behind every named component in ``repro``.

A :class:`Registry` is a name → factory mapping with three extras over a
plain dict: duplicate registrations fail loudly (unless ``overwrite=True``),
unknown lookups raise a ``ValueError`` that lists the available names, and a
registry can *lazily populate itself* by importing the modules that register
its entries — so ``from repro.api import MODELS`` works without importing the
whole package up front.

Components register themselves at import time, either directly::

    MODELS.register("softmax", SoftmaxRegression)

or as a decorator::

    @DELAYS.register("pareto")
    class ParetoDelay(DelayDistribution):
        ...

``filter_kwargs`` is the companion helper that lets callers pass one
superset of keyword arguments (``n_features``, ``n_classes``, ``rng``, ...)
to factories with heterogeneous signatures.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterator

__all__ = ["Registry", "filter_kwargs"]


class Registry:
    """A name → factory mapping with validation and lazy population.

    Parameters
    ----------
    kind:
        Human-readable singular noun for error messages, e.g. ``"model"``
        produces ``unknown model 'x'; available: [...]``.
    populate:
        Optional zero-argument callable invoked once, before the first
        lookup, to import the modules that register this registry's entries.
    """

    def __init__(self, kind: str, populate: Callable[[], None] | None = None):
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._populate = populate
        self._populated = populate is None

    # -- registration -----------------------------------------------------

    def register(
        self, name: str, obj: Any = None, *, overwrite: bool = False
    ) -> Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        Raises ``ValueError`` on duplicate names unless ``overwrite=True``.
        Returns ``obj`` (or a decorator when ``obj`` is omitted) so the call
        can wrap a class or function definition.
        """
        if obj is None:
            def _decorator(target: Any) -> Any:
                self.register(name, target, overwrite=overwrite)
                return target

            return _decorator
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")
        if name in self._entries and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} already registered; available: {self.names()} "
                f"(pass overwrite=True to replace)"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove ``name``; raises the standard unknown-name error if absent."""
        self.get(name)
        del self._entries[name]

    # -- lookup -----------------------------------------------------------

    def get(self, name: str) -> Any:
        """Return the entry registered under ``name``."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError as err:
            raise ValueError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            ) from err

    def build(self, name: str, /, **kwargs) -> Any:
        """Look up the factory for ``name`` and call it with ``kwargs``."""
        return self.get(name)(**kwargs)

    def build_filtered(self, name: str, /, **kwargs) -> Any:
        """Like :meth:`build`, but drop kwargs the factory does not accept."""
        factory = self.get(name)
        return factory(**filter_kwargs(factory, kwargs))

    def names(self) -> list[str]:
        """Sorted list of registered names."""
        self._ensure_populated()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, names={self.names()})"

    def _ensure_populated(self) -> None:
        if not self._populated:
            # Flip the flag first: population imports modules whose
            # registrations land here, and those must not recurse.  On
            # failure, reset it so the next lookup re-raises the root cause
            # instead of reporting a misleading empty registry.
            self._populated = True
            try:
                self._populate()
            except BaseException:
                self._populated = False
                raise


def filter_kwargs(fn: Callable, kwargs: dict[str, Any]) -> dict[str, Any]:
    """Return the subset of ``kwargs`` that ``fn`` can accept by keyword.

    If ``fn`` takes ``**kwargs`` (or its signature cannot be inspected, as
    for some builtins), everything is passed through unchanged.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return dict(kwargs)
    params = sig.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return dict(kwargs)
    accepted = {
        p.name
        for p in params
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return {k: v for k, v in kwargs.items() if k in accepted}
