"""Fluent, declarative experiment builder.

``Experiment`` wraps an :class:`~repro.experiments.configs.ExperimentConfig`
and lets you compose any registered model × dataset × delay × method lineup
from one entry point, validating each name against its registry at the time
it is set::

    from repro.api import Experiment

    store = (
        Experiment("smoke")
        .model("vgg_lite_cnn")
        .delay("pareto")
        .methods("sync-sgd", "adacomm")
        .set(n_workers=4, alpha=2.0)
        .run()
    )

Every mutator returns the builder, ``build()`` returns the immutable config,
and ``run()`` hands it to :func:`repro.experiments.harness.run_experiment`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.api.registries import (
    BACKENDS,
    DATASETS,
    DELAYS,
    LR_SCHEDULES,
    MODELS,
    NETWORK_SCALINGS,
)
from repro.experiments.configs import ExperimentConfig, _apply_scale, make_config

__all__ = ["Experiment"]


class Experiment:
    """Fluent builder over a named or explicit :class:`ExperimentConfig`.

    Parameters
    ----------
    config:
        A named config (see ``available_configs()``) or a ready
        ``ExperimentConfig`` to start from.
    overrides:
        Initial field overrides, as for :meth:`set`.
    """

    def __init__(self, config: str | ExperimentConfig = "smoke", **overrides):
        if isinstance(config, ExperimentConfig):
            self._config = config
        else:
            self._config = make_config(config)
        if overrides:
            self._config = self._config.with_overrides(**overrides)
        self._trace_path: str | None = None
        self._trace_profile = False

    # -- component selection ----------------------------------------------

    def model(self, name: str, **kwargs) -> "Experiment":
        """Select a registered model; extra kwargs go to its builder verbatim."""
        MODELS.get(name)
        self._config = self._config.with_overrides(model=name, model_kwargs=dict(kwargs))
        return self

    def dataset(self, name: str) -> "Experiment":
        """Select a registered dataset generator."""
        DATASETS.get(name)
        self._config = self._config.with_overrides(dataset=name, dataset_fn=None)
        return self

    def delay(self, kind: str, **params) -> "Experiment":
        """Select a compute-time delay distribution.

        Without ``params`` the distribution is moment-matched to the config's
        ``compute_time`` / ``compute_time_std_fraction``; with ``params`` they
        are passed to the distribution verbatim.
        """
        DELAYS.get(kind)
        spec: str | dict = {"kind": kind, **params} if params else kind
        self._config = self._config.with_overrides(delay=spec)
        return self

    def network(self, scaling: str) -> "Experiment":
        """Select how the broadcast delay scales with the number of workers."""
        NETWORK_SCALINGS.get(scaling)
        self._config = self._config.with_overrides(network_scaling=scaling)
        return self

    def lr_schedule(self, name: str) -> "Experiment":
        """Select a registered learning-rate schedule by name."""
        LR_SCHEDULES.get(name)
        self._config = self._config.with_overrides(lr_schedule=name)
        return self

    def backend(self, name: str) -> "Experiment":
        """Select the worker-execution backend ("auto", "loop", "vectorized", "sharded")."""
        if name != "auto":
            BACKENDS.get(name)
        self._config = self._config.with_overrides(backend=name)
        return self

    def shards(self, n: int) -> "Experiment":
        """Set the sharded backend's process count (``backend_shards``)."""
        return self.set(backend_shards=int(n))

    def transport(self, name: str) -> "Experiment":
        """Set the sharded pool's data plane: "auto" (shared memory where
        available, the default), "shm", or "pipe"."""
        return self.set(shard_transport=str(name))

    def dtype(self, name: str) -> "Experiment":
        """Set the bank storage dtype: "float64" (byte-identical default) or
        "float32" (opt-in reduced precision, parity within tolerance)."""
        return self.set(bank_dtype=str(name))

    def topology(self, name: str, rounds: int = 1) -> "Experiment":
        """Select the averaging communication graph.

        "complete" (default) is the paper's exact all-node average; "ring",
        "star", and "mh" (Metropolis-Hastings over a chordal ring) route the
        averaging step through ``rounds`` doubly-stochastic gossip mixes.
        """
        return self.set(topology=str(name), gossip_rounds=int(rounds))

    def staleness(self, damping: float) -> "Experiment":
        """Set the staleness damping used by async method specs.

        Async updates fold in with weight ``1/(m·(1+damping·s))`` where
        ``s`` is how many server versions elapsed since the worker pulled.
        """
        return self.set(staleness_damping=float(damping))

    def elastic(self, p: float = 0.0, deadline: "float | None" = None) -> "Experiment":
        """Enable seeded per-round worker dropout (elastic stragglers).

        ``p`` drops each worker independently per round; ``deadline`` drops
        workers whose period compute time exceeds it.  Survivors average,
        the broadcast rejoins everyone, and the fastest worker always
        survives so a round can never lose the whole cluster.
        """
        return self.set(
            elastic_dropout_prob=float(p),
            elastic_deadline=float(deadline) if deadline is not None else None,
        )

    def methods(self, *specs: str) -> "Experiment":
        """Set the method lineup from spec strings (see ``parse_method_spec``).

        Each spec is parsed (and therefore fully validated — name *and*
        arguments) against the current config immediately, so a bad lineup
        fails here rather than at ``run()`` time.
        """
        if not specs:
            raise ValueError("methods() needs at least one method spec")
        from repro.experiments.harness import parse_method_spec

        for spec in specs:
            parse_method_spec(spec, self._config)
        self._config = self._config.with_overrides(methods=tuple(specs))
        return self

    # -- generic knobs ----------------------------------------------------

    def workers(self, n: int) -> "Experiment":
        """Set the simulated cluster size."""
        return self.set(n_workers=int(n))

    def seed(self, value: int) -> "Experiment":
        """Set the experiment's root seed."""
        return self.set(seed=int(value))

    def scale(self, factor: float) -> "Experiment":
        """Scale wall-clock budget, AdaComm interval, and training-set size."""
        self._config = _apply_scale(self._config, factor)
        return self

    def set(self, **overrides: Any) -> "Experiment":
        """Override arbitrary :class:`ExperimentConfig` fields by name."""
        self._config = self._config.with_overrides(**overrides)
        return self

    def trace(self, path: str, profile: bool = False) -> "Experiment":
        """Record a structured event trace of :meth:`run` to ``path``.

        The run executes under a :class:`repro.obs.tracer.Tracer` and the
        resulting ``trace.jsonl`` is flushed to ``path``; inspect it with
        ``python -m repro.obs summary/export/diff``.  With ``profile=True``
        the per-op profiler runs alongside and its rows are bridged into the
        trace as ``profile_op`` events.  Tracing is runtime state, not a
        config field: it never changes what the experiment computes, stores,
        or hashes.
        """
        self._trace_path = str(path)
        self._trace_profile = bool(profile)
        return self

    # -- materialization --------------------------------------------------

    def build(self) -> ExperimentConfig:
        """Validate and return the composed config."""
        return self._config.validate()

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict of the composed config."""
        return self.build().to_dict()

    def save(self, path: str) -> str:
        """Write the composed config to ``path`` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
        return path

    def run(self, record_discrepancy: bool = False):
        """Run the full method lineup; returns the :class:`RunStore`."""
        from repro.experiments.harness import run_experiment

        if self._trace_path is None:
            return run_experiment(self.build(), record_discrepancy=record_discrepancy)
        from repro.obs.tracer import Tracer

        with Tracer(profile=self._trace_profile) as tracer:
            store = run_experiment(self.build(), record_discrepancy=record_discrepancy)
        tracer.flush(self._trace_path)
        return store

    def sweep(
        self,
        axes: "dict[str, list] | None" = None,
        *,
        store: str = "sweeps",
        jobs: int = 1,
        name: str | None = None,
        seed_mode: str = "shared",
        **axis_kwargs,
    ):
        """Expand a grid over the composed config and run it as a campaign.

        ``axes`` / keyword axes follow :func:`repro.sweep.spec.grid` — config
        field names plus the ``m`` / ``tau`` / ``method`` aliases::

            report = (
                Experiment("smoke")
                .sweep(tau=[1, 8, 20], seed=range(3), store="sweeps", jobs=4)
            )

        Cells already present in the persistent ``store`` are skipped (the
        store is content-addressed), so repeating a sweep is free and a
        killed campaign resumes where it stopped.  Returns the
        :class:`~repro.sweep.runner.SweepReport`; iterate
        ``report.results()`` for the stored trajectories.
        """
        from repro.sweep import SweepRunner, SweepSpec

        merged = {**(axes or {}), **axis_kwargs}
        spec = SweepSpec(
            name=name or f"{self._config.name}_sweep",
            base=self.build(),
            axes=merged,
            seed_mode=seed_mode,
        )
        return SweepRunner(store, jobs=jobs).run(spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self._config
        return (
            f"Experiment(name={c.name!r}, model={c.model!r}, dataset={c.dataset!r}, "
            f"delay={c.delay!r}, methods={c.methods!r}, n_workers={c.n_workers})"
        )
