"""The registries every pluggable component of ``repro`` registers into.

One :class:`~repro.api.registry.Registry` instance per component axis:

========================  ======================================  =========================
registry                  registered by                           example names
========================  ======================================  =========================
``MODELS``                ``repro.models.registry``               ``mlp``, ``vgg_lite_cnn``
``DATASETS``              ``repro.data.synthetic``                ``synth_cifar10``
``DELAYS``                ``repro.runtime.distributions``         ``pareto``
``NETWORK_SCALINGS``      ``repro.runtime.network``               ``ring_allreduce``
``COMM_SCHEDULES``        ``repro.core.schedules``                ``adacomm``
``LR_SCHEDULES``          ``repro.optim.lr_schedules``            ``tau_gated``
``BACKENDS``              ``repro.distributed.backends`` /        ``loop``, ``vectorized``,
                          ``repro.distributed.worker_bank`` /     ``sharded``
                          ``repro.distributed.sharded_bank``
``SWEEPS``                ``repro.sweep.campaigns``               ``tau_error_runtime``
========================  ======================================  =========================

Each registry lazily imports its defining module on first lookup, so the
registries are usable without importing the full ``repro`` package, and the
defining modules can import this one without a cycle.
"""

from __future__ import annotations

import importlib

from repro.api.registry import Registry

__all__ = [
    "MODELS",
    "DATASETS",
    "DELAYS",
    "NETWORK_SCALINGS",
    "COMM_SCHEDULES",
    "LR_SCHEDULES",
    "BACKENDS",
    "SWEEPS",
    "all_registries",
]


def _importer(*modules: str):
    def _populate() -> None:
        for module in modules:
            importlib.import_module(module)

    return _populate


MODELS = Registry("model", populate=_importer("repro.models.registry"))
DATASETS = Registry("dataset", populate=_importer("repro.data.synthetic"))
DELAYS = Registry("delay distribution", populate=_importer("repro.runtime.distributions"))
NETWORK_SCALINGS = Registry("scaling", populate=_importer("repro.runtime.network"))
COMM_SCHEDULES = Registry(
    "communication schedule", populate=_importer("repro.core.schedules")
)
LR_SCHEDULES = Registry("LR schedule", populate=_importer("repro.optim.lr_schedules"))
BACKENDS = Registry(
    "execution backend",
    populate=_importer(
        "repro.distributed.backends",
        "repro.distributed.worker_bank",
        "repro.distributed.sharded_bank",
    ),
)
SWEEPS = Registry("sweep", populate=_importer("repro.sweep.campaigns"))


def all_registries() -> dict[str, Registry]:
    """The component registries keyed by the name used in CLI ``--list``."""
    return {
        "models": MODELS,
        "datasets": DATASETS,
        "delays": DELAYS,
        "scalings": NETWORK_SCALINGS,
        "schedules": COMM_SCHEDULES,
        "lr_schedules": LR_SCHEDULES,
        "backends": BACKENDS,
        "sweeps": SWEEPS,
    }
