"""A small reverse-mode autograd engine and neural-network layer library.

The paper trains VGG-16 and ResNet-50 in PyTorch; no GPU deep-learning stack
is available in this reproduction environment, so this package provides the
substrate from scratch: a NumPy-backed :class:`~repro.nn.tensor.Tensor` with
reverse-mode automatic differentiation, a ``Module`` hierarchy with the usual
layers (Linear, Conv2d, pooling, batch norm, activations), loss functions,
and initializers.  It is intentionally small but complete enough to train
multi-layer perceptrons and small convolutional networks on the synthetic
image-classification datasets in ``repro.data``.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import (
    Module,
    Linear,
    ReLU,
    Tanh,
    Sigmoid,
    Sequential,
    Flatten,
    Dropout,
    Conv2d,
    MaxPool2d,
    AvgPool2d,
    BatchNorm1d,
    Residual,
)
from repro.nn.losses import (
    cross_entropy,
    mse_loss,
    nll_loss,
    softmax,
    log_softmax,
    accuracy,
    bank_cross_entropy,
    bank_mse_loss,
)
from repro.nn.bank import ParameterBank, bank_compatible
from repro.nn import init

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "Flatten",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "Residual",
    "cross_entropy",
    "mse_loss",
    "nll_loss",
    "softmax",
    "log_softmax",
    "accuracy",
    "bank_cross_entropy",
    "bank_mse_loss",
    "ParameterBank",
    "bank_compatible",
    "init",
]
