"""Reverse-mode automatic differentiation on NumPy arrays.

``Tensor`` wraps a ``numpy.ndarray`` and records the operations applied to it
in a dynamically built computation graph.  Calling ``backward()`` on a scalar
result walks the graph in reverse topological order and accumulates
gradients into every tensor created with ``requires_grad=True``.

The operator set is the minimum needed by the layer library: elementwise
arithmetic, matmul, reductions, reshape/transpose, exp/log/tanh/relu/sigmoid,
indexing helpers for cross-entropy, and im2col-friendly padding.  Broadcasting
is fully supported; gradients of broadcast operands are reduced back to the
operand's shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


def is_grad_enabled() -> bool:
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an autograd tape.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default (``float32``
        payloads are preserved).
    requires_grad:
        If True, gradients are accumulated into ``.grad`` during ``backward``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # ensure ndarray.__mul__ defers to Tensor.__rmul__

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- basic protocol ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Deep copy of the data as a new leaf tensor with the same flags."""
        t = Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)
        return t

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction ----------------------------------------------------
    def _make(self, data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and is only optional for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Build reverse topological order of the graph rooted at self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = g.copy()
                else:
                    node.grad = node.grad + g
                continue
            node._backward_accumulate(g, grads)

    def _backward_accumulate(self, g: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        # The _backward closure returns per-parent gradients.
        parent_grads = self._backward(g)
        for parent, pg in zip(self._parents, parent_grads):
            if pg is None or not parent.requires_grad:
                continue
            if parent._backward is None and parent._parents == ():
                # Leaf tensor: accumulate directly (may receive multiple contributions).
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pg
                else:
                    grads[id(parent)] = pg
            else:
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pg
                else:
                    grads[id(parent)] = pg

    # -- elementwise arithmetic --------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data - other.data

        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(-g, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            return (
                _unbroadcast(g * other.data, self.shape),
                _unbroadcast(g * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            return (
                _unbroadcast(g / other.data, self.shape),
                _unbroadcast(-g * self.data / (other.data**2), other.shape),
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return self._make(out_data, (self,), backward)

    # -- matrix ops -------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data @ other.data

        def backward(g):
            # Skip the GEMM for a parent that cannot use the gradient (e.g.
            # the input batch of a first layer) — the engine discards None.
            ga = _unbroadcast(g @ other.data.swapaxes(-1, -2), self.shape) if self.requires_grad else None
            gb = _unbroadcast(self.data.swapaxes(-1, -2) @ g, other.shape) if other.requires_grad else None
            return (ga, gb)

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = np.argsort(axes)

        def backward(g):
            return (g.transpose(inv),)

        return self._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig_shape = self.shape

        def backward(g):
            return (g.reshape(orig_shape),)

        return self._make(self.data.reshape(shape), (self,), backward)

    # -- reductions ---------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, in_shape).copy(),)
            g_expanded = g
            if not keepdims:
                g_expanded = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g_expanded, in_shape).copy(),)

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            n = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                return (mask * g,)
            g_expanded = g if keepdims else np.expand_dims(g, axis=axis)
            out_expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return (mask * g_expanded,)

        return self._make(out_data, (self,), backward)

    # -- elementwise functions ------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g):
            return (g / self.data,)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g):
            return (g * 0.5 / out_data,)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data**2),)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g):
            return (g * mask,)

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g):
            return (g * mask,)

        return self._make(out_data, (self,), backward)

    # -- shaping / selection --------------------------------------------------------
    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two dims of an NCHW tensor by ``pad`` on each side."""
        if pad == 0:
            return self
        if self.ndim != 4:
            raise ValueError("pad2d expects an NCHW tensor")
        out_data = np.pad(self.data, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

        def backward(g):
            return (g[:, :, pad:-pad, pad:-pad],)

        return self._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select ``out[i] = self[i, indices[i]]`` for a 2-D tensor (NLL loss helper)."""
        if self.ndim != 2:
            raise ValueError("gather_rows expects a 2-D tensor")
        idx = np.asarray(indices, dtype=np.int64)
        rows = np.arange(self.shape[0])
        out_data = self.data[rows, idx]

        def backward(g):
            full = np.zeros_like(self.data)
            full[rows, idx] = g
            return (full,)

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g):
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return (full,)

        return self._make(out_data, (self,), backward)


def _as_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
