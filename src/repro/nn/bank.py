"""Stacked param+buffer banks for the vectorized worker-bank backend.

All m worker replicas in a simulated PASGD cluster share one architecture and
differ only in *values*.  :class:`ParameterBank` exploits that: it stores
every parameter of a template module stacked along a leading worker axis —
``(m, *shape)`` — so that one batched NumPy op (matmul broadcasting over the
leading axis, see :meth:`Module.bank_forward`) executes the corresponding
computation for all workers at once instead of looping the m replicas in
Python.  Non-trainable *buffers* (batch-norm running statistics) are stacked
the same way but stay outside the autograd graph and outside the flat
parameter vector: model averaging broadcasts parameters only, so each
worker's statistics remain local — exactly the loop backend's (and common
DDP) semantics.

The per-worker flat layout matches :meth:`Module.get_flat_parameters`
exactly, so bank states interoperate unchanged with the model-averaging
collective, the loop backend, and everything else that speaks flat parameter
vectors.

:func:`attach_bank_streams` completes the equivalence story for stochastic
layers: the template's RNG-consuming modules (dropout, data-free noise
models) are handed the m per-worker generators that the loop backend's
replicas would own, so seeded mask/noise draws are byte-identical — stream
positions included — on either backend.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = [
    "ParameterBank",
    "bank_compatible",
    "attach_bank_streams",
    "attach_stream_generators",
]


def bank_compatible(model: Module) -> bool:
    """Whether ``model`` can run on the vectorized worker-bank backend.

    Requires a ``bank_loss`` override, a bank-capable module tree (every
    submodule implements ``bank_forward``), and at least one trainable
    parameter.
    """
    return (
        type(model).bank_loss is not Module.bank_loss
        and model.supports_bank()
        and any(True for _ in model.parameters())
    )


def attach_bank_streams(template: Module, replicas: Sequence[Module]) -> None:
    """Wire per-worker RNG streams into the template's stream modules.

    ``replicas`` are worker 1..m-1's would-be loop replicas (built by the
    same ``model_fn`` the loop backend would call); the template itself
    serves worker 0.  After this call every module yielded by
    :meth:`Module.stream_modules` holds ``_bank_rngs = [stream_0, ...,
    stream_{m-1}]`` positioned exactly where the loop backend's per-replica
    generators would be, which is what makes the bank's stacked mask/noise
    draws stream-equivalent to the loop.
    """
    template_mods = list(template.stream_modules())
    replica_mods = [list(replica.stream_modules()) for replica in replicas]
    for mods in replica_mods:
        if len(mods) != len(template_mods):
            raise ValueError(
                f"replica has {len(mods)} stream module(s), template has "
                f"{len(template_mods)}; architectures must match"
            )
    for idx, mod in enumerate(template_mods):
        mod._bank_rngs = [mod._rng] + [mods[idx]._rng for mods in replica_mods]


def attach_stream_generators(
    template: Module,
    per_module_rngs: Sequence[Sequence],
    n_workers: "int | None" = None,
) -> None:
    """Wire explicit per-worker generators into the template's stream modules.

    ``per_module_rngs[i]`` is the list of m generators for the i-th module
    yielded by :meth:`Module.stream_modules` (worker order).  This is the
    transport-level sibling of :func:`attach_bank_streams`: instead of
    building throwaway replicas to harvest streams from, callers that already
    hold correctly-positioned generators — e.g. a shard process that received
    them from the parent — install them directly.  Passing ``n_workers``
    turns a wrong-sized slice into an immediate error here instead of a
    confusing failure (or, worse, silently mis-streamed masks) at forward
    time.
    """
    template_mods = list(template.stream_modules())
    if len(per_module_rngs) != len(template_mods):
        raise ValueError(
            f"got stream generators for {len(per_module_rngs)} module(s), template "
            f"has {len(template_mods)} stream module(s)"
        )
    lengths = {len(rngs) for rngs in per_module_rngs}
    if len(lengths) > 1:
        raise ValueError(f"per-module stream lists have unequal lengths {sorted(lengths)}")
    if n_workers is not None and lengths and lengths != {n_workers}:
        raise ValueError(
            f"stream lists carry {lengths.pop()} generator(s) but the bank has "
            f"{n_workers} worker(s)"
        )
    for mod, rngs in zip(template_mods, per_module_rngs):
        mod._bank_rngs = list(rngs)


class ParameterBank:
    """The params + buffers of m identical replicas, stacked per worker.

    Parameters
    ----------
    template:
        A module whose current parameter values seed every worker slice (the
        paper requires all workers to start from the same ``x1``); its buffer
        values seed every worker's buffer slice the same way.
    n_workers:
        Number of replicas m stacked along the leading axis.
    dtype:
        Storage dtype of the stacked parameters and buffers.  The default
        ``float64`` matches the loop reference byte for byte; ``float32`` is
        the opt-in reduced-precision mode (half the memory traffic, parity
        within tolerance rather than byte-equality).
    """

    def __init__(self, template: Module, n_workers: int, dtype=np.float64):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.dtype = np.dtype(dtype)
        self.params: "OrderedDict[str, Tensor]" = OrderedDict()
        for name, p in template.named_parameters():
            stacked = np.repeat(
                p.data.astype(self.dtype, copy=False)[None, ...], self.n_workers, axis=0
            )
            self.params[name] = Tensor(stacked, requires_grad=True, name=name)
        if not self.params:
            raise ValueError("template model has no trainable parameters")
        self.n_parameters = sum(t.data[0].size for t in self.params.values())
        #: Stacked ``(m, *shape)`` non-trainable buffers (e.g. batch-norm
        #: running stats), updated in place by ``bank_forward`` and excluded
        #: from the flat vectors — averaging leaves them worker-local.
        self.buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, b in template.named_buffers():
            self.buffers[name] = np.repeat(
                b.astype(self.dtype, copy=False)[None, ...], self.n_workers, axis=0
            )

    def tensors(self) -> list[Tensor]:
        """The stacked parameter tensors, in flat-layout order."""
        return list(self.params.values())

    def state(self) -> dict:
        """The mapping handed to ``bank_forward``: parameter tensors plus
        buffer arrays, keyed by fully-qualified name.  Buffer entries are the
        live stacked arrays — layers momentum-update them in place."""
        merged: dict = dict(self.params)
        merged.update(self.buffers)
        return merged

    def zero_grad(self) -> None:
        for t in self.params.values():
            t.zero_grad()

    # -- flat-vector interop ------------------------------------------------
    def get_stacked_flat(self) -> np.ndarray:
        """All worker states as one ``(m, P)`` array (a copy); row i is the
        flat parameter vector of worker i in ``get_flat_parameters`` layout."""
        return np.concatenate(
            [t.data.reshape(self.n_workers, -1) for t in self.params.values()], axis=1
        )

    def set_stacked_flat(self, flat: np.ndarray) -> None:
        """Load an ``(m, P)`` array produced by :meth:`get_stacked_flat`."""
        flat = np.asarray(flat, dtype=self.dtype)
        if flat.shape != (self.n_workers, self.n_parameters):
            raise ValueError(
                f"stacked flat has shape {flat.shape}, bank needs "
                f"({self.n_workers}, {self.n_parameters})"
            )
        offset = 0
        for t in self.params.values():
            n = t.data[0].size
            t.data[...] = flat[:, offset : offset + n].reshape(t.data.shape)
            offset += n

    def broadcast_flat(self, flat: np.ndarray) -> None:
        """Overwrite every worker slice with one flat ``(P,)`` vector."""
        flat = np.asarray(flat, dtype=self.dtype)
        if flat.shape != (self.n_parameters,):
            raise ValueError(
                f"flat vector has {flat.size} entries, bank needs {self.n_parameters}"
            )
        offset = 0
        for t in self.params.values():
            n = t.data[0].size
            t.data[...] = flat[offset : offset + n].reshape(t.data.shape[1:])
            offset += n

    def worker_flat(self, worker_id: int) -> np.ndarray:
        """Flat copy of one worker's parameter slice."""
        self._check_worker(worker_id)
        return np.concatenate([t.data[worker_id].ravel() for t in self.params.values()])

    def set_worker_flat(self, worker_id: int, flat: np.ndarray) -> None:
        """Overwrite one worker's slice with a flat vector."""
        self._check_worker(worker_id)
        flat = np.asarray(flat, dtype=self.dtype)
        if flat.shape != (self.n_parameters,):
            raise ValueError(
                f"flat vector has {flat.size} entries, bank needs {self.n_parameters}"
            )
        offset = 0
        for t in self.params.values():
            n = t.data[0].size
            t.data[worker_id] = flat[offset : offset + n].reshape(t.data.shape[1:])
            offset += n

    # -- buffer interop ------------------------------------------------------
    def worker_buffers(self, worker_id: int) -> "OrderedDict[str, np.ndarray]":
        """Copies of one worker's buffer slices, keyed by qualified name."""
        self._check_worker(worker_id)
        return OrderedDict((name, b[worker_id].copy()) for name, b in self.buffers.items())

    def load_worker_buffers(self, module: Module, worker_id: int) -> None:
        """Materialize one worker's buffer slices into ``module`` (eval scratch)."""
        self._check_worker(worker_id)
        for name, b in self.buffers.items():
            module.set_buffer(name, b[worker_id].copy())

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.n_workers:
            raise IndexError(f"worker_id {worker_id} out of range [0, {self.n_workers})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterBank(n_workers={self.n_workers}, "
            f"n_parameters={self.n_parameters}, params={len(self.params)}, "
            f"buffers={len(self.buffers)})"
        )
