"""Stacked parameter banks for the vectorized worker-bank backend.

All m worker replicas in a simulated PASGD cluster share one architecture and
differ only in parameter *values*.  :class:`ParameterBank` exploits that: it
stores every parameter of a template module stacked along a leading worker
axis — ``(m, *shape)`` — so that one batched NumPy op (matmul broadcasting
over the leading axis, see :meth:`Module.bank_forward`) executes the
corresponding computation for all workers at once instead of looping the m
replicas in Python.

The per-worker flat layout matches :meth:`Module.get_flat_parameters`
exactly, so bank states interoperate unchanged with the model-averaging
collective, the loop backend, and everything else that speaks flat parameter
vectors.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["ParameterBank", "bank_compatible"]


def bank_compatible(model: Module) -> bool:
    """Whether ``model`` can run on the vectorized worker-bank backend.

    Requires a ``bank_loss`` override, a bank-capable module tree (every
    submodule implements ``bank_forward``), and at least one trainable
    parameter.
    """
    return (
        type(model).bank_loss is not Module.bank_loss
        and model.supports_bank()
        and any(True for _ in model.parameters())
    )


class ParameterBank:
    """The parameters of m identical replicas, stacked along a worker axis.

    Parameters
    ----------
    template:
        A module whose current parameter values seed every worker slice (the
        paper requires all workers to start from the same ``x1``).
    n_workers:
        Number of replicas m stacked along the leading axis.
    """

    def __init__(self, template: Module, n_workers: int):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.params: "OrderedDict[str, Tensor]" = OrderedDict()
        for name, p in template.named_parameters():
            stacked = np.repeat(p.data[None, ...], self.n_workers, axis=0)
            self.params[name] = Tensor(stacked, requires_grad=True, name=name)
        if not self.params:
            raise ValueError("template model has no trainable parameters")
        self.n_parameters = sum(t.data[0].size for t in self.params.values())

    def tensors(self) -> list[Tensor]:
        """The stacked parameter tensors, in flat-layout order."""
        return list(self.params.values())

    def zero_grad(self) -> None:
        for t in self.params.values():
            t.zero_grad()

    # -- flat-vector interop ------------------------------------------------
    def get_stacked_flat(self) -> np.ndarray:
        """All worker states as one ``(m, P)`` array (a copy); row i is the
        flat parameter vector of worker i in ``get_flat_parameters`` layout."""
        return np.concatenate(
            [t.data.reshape(self.n_workers, -1) for t in self.params.values()], axis=1
        )

    def set_stacked_flat(self, flat: np.ndarray) -> None:
        """Load an ``(m, P)`` array produced by :meth:`get_stacked_flat`."""
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.n_workers, self.n_parameters):
            raise ValueError(
                f"stacked flat has shape {flat.shape}, bank needs "
                f"({self.n_workers}, {self.n_parameters})"
            )
        offset = 0
        for t in self.params.values():
            n = t.data[0].size
            t.data[...] = flat[:, offset : offset + n].reshape(t.data.shape)
            offset += n

    def broadcast_flat(self, flat: np.ndarray) -> None:
        """Overwrite every worker slice with one flat ``(P,)`` vector."""
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.n_parameters,):
            raise ValueError(
                f"flat vector has {flat.size} entries, bank needs {self.n_parameters}"
            )
        offset = 0
        for t in self.params.values():
            n = t.data[0].size
            t.data[...] = flat[offset : offset + n].reshape(t.data.shape[1:])
            offset += n

    def worker_flat(self, worker_id: int) -> np.ndarray:
        """Flat copy of one worker's parameter slice."""
        self._check_worker(worker_id)
        return np.concatenate([t.data[worker_id].ravel() for t in self.params.values()])

    def set_worker_flat(self, worker_id: int, flat: np.ndarray) -> None:
        """Overwrite one worker's slice with a flat vector."""
        self._check_worker(worker_id)
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.n_parameters,):
            raise ValueError(
                f"flat vector has {flat.size} entries, bank needs {self.n_parameters}"
            )
        offset = 0
        for t in self.params.values():
            n = t.data[0].size
            t.data[worker_id] = flat[offset : offset + n].reshape(t.data.shape[1:])
            offset += n

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.n_workers:
            raise IndexError(f"worker_id {worker_id} out of range [0, {self.n_workers})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterBank(n_workers={self.n_workers}, "
            f"n_parameters={self.n_parameters}, params={len(self.params)})"
        )
