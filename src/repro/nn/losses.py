"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "mse_loss",
    "accuracy",
    "bank_cross_entropy",
    "bank_mse_loss",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``targets`` given row log-probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    if log_probs.ndim != 2:
        raise ValueError("nll_loss expects (N, C) log-probabilities")
    if targets.shape != (log_probs.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} does not match batch size {log_probs.shape[0]}"
        )
    picked = log_probs.gather_rows(targets)
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer class ``targets`` given raw ``logits``."""
    return nll_loss(log_softmax(logits), targets)


def bank_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Per-worker mean cross-entropy of stacked ``(m, B, C)`` logits.

    Returns an ``(m,)`` tensor whose i-th entry equals
    ``cross_entropy(logits[i], targets[i])``; summing it and calling
    ``backward()`` therefore deposits each worker's own batch gradient into
    its slice of the parameter bank (the cross-worker terms are identically
    zero because worker i's loss depends only on slice i).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 3:
        raise ValueError("bank_cross_entropy expects (m, B, C) logits")
    m, batch, _ = logits.shape
    if targets.shape != (m, batch):
        raise ValueError(
            f"targets shape {targets.shape} does not match stacked batch ({m}, {batch})"
        )
    log_probs = log_softmax(logits, axis=-1)
    workers = np.arange(m)[:, None]
    rows = np.arange(batch)[None, :]
    picked = log_probs[workers, rows, targets]  # (m, B)
    return -picked.mean(axis=1)


def bank_mse_loss(pred: Tensor, target) -> Tensor:
    """Per-worker mean squared error of stacked ``(m, B, O)`` predictions."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    if pred.ndim != 3:
        raise ValueError("bank_mse_loss expects (m, B, O) predictions")
    diff = pred - target
    return (diff * diff).mean(axis=(1, 2))


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error ``mean((pred - target)^2)``."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if scores.ndim != 2:
        raise ValueError("accuracy expects (N, C) scores")
    preds = scores.argmax(axis=1)
    return float((preds == targets).mean())
