"""Weight initializers.

All initializers take an explicit ``rng`` so that every worker replica in a
simulated cluster can be initialized identically (the paper requires all
workers to start from the same point ``x1``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.seeding import check_random_state

__all__ = ["zeros", "uniform", "normal", "xavier_uniform", "kaiming_uniform", "kaiming_normal"]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initializer (biases)."""
    return np.zeros(shape, dtype=np.float64)


def uniform(shape: tuple[int, ...], low: float, high: float, rng=None) -> np.ndarray:
    gen = check_random_state(rng)
    return gen.uniform(low, high, size=shape)


def normal(shape: tuple[int, ...], std: float, rng=None) -> np.ndarray:
    gen = check_random_state(rng)
    return gen.normal(0.0, std, size=shape)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # Conv: (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    n = int(np.prod(shape))
    return n, n


def xavier_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    a = math.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -a, a, rng)


def kaiming_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """He/Kaiming uniform for ReLU networks: U(-a, a) with a = sqrt(6 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    a = math.sqrt(6.0 / fan_in)
    return uniform(shape, -a, a, rng)


def kaiming_normal(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """He/Kaiming normal for ReLU networks: N(0, sqrt(2 / fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    return normal(shape, math.sqrt(2.0 / fan_in), rng)
