"""Neural-network layers built on the autograd Tensor.

The ``Module`` base class provides parameter registration and flat
get/set of the parameter vector, which is what the distributed substrate
needs for model averaging (PASGD averages the *entire* parameter vector
across workers, eq. 3 of the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn import init as init_mod
from repro.nn.tensor import Tensor
from repro.utils.seeding import check_random_state

__all__ = [
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Sequential",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "Residual",
]


class Module:
    """Base class for layers and models.

    Subclasses register :class:`Tensor` parameters as attributes; the base
    class discovers them (recursively through sub-modules) for optimization,
    averaging, and serialization.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute magic -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        elif name in self.__dict__.get("_buffers", {}):
            # Re-assignment to a registered buffer keeps it registered
            # (BatchNorm rebinds its running stats every training step).
            value = np.asarray(value, dtype=float)
            self.__dict__["_buffers"][name] = value
        object.__setattr__(self, name, value)

    # -- parameter access -------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable parameters, depth-first."""
        for p in self._parameters.values():
            yield p
        for mod in self._modules.values():
            yield from mod.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- buffer access -----------------------------------------------------
    def register_buffer(self, name: str, value) -> None:
        """Register per-replica state that is *not* a trainable parameter.

        Buffers (e.g. batch-norm running statistics) are excluded from the
        flat parameter vector, so model averaging leaves each worker's copy
        local — matching common DDP semantics.  The vectorized worker-bank
        backend stacks them per worker alongside the parameters (see
        :class:`repro.nn.bank.ParameterBank`).
        """
        arr = np.asarray(value, dtype=float)
        self.__dict__.setdefault("_buffers", OrderedDict())[name] = arr
        object.__setattr__(self, name, arr)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield (f"{prefix}{name}", b)
        for mod_name, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{mod_name}.")

    def buffers(self) -> Iterator[np.ndarray]:
        for _, b in self.named_buffers():
            yield b

    def set_buffer(self, name: str, value) -> None:
        """Assign a buffer by fully-qualified dotted name (see ``named_buffers``)."""
        *path, leaf = name.split(".")
        mod: Module = self
        for part in path:
            try:
                mod = mod._modules[part]
            except KeyError:
                raise KeyError(f"no submodule {part!r} on the path to buffer {name!r}") from None
        if leaf not in mod._buffers:
            raise KeyError(f"module {type(mod).__name__} has no buffer {leaf!r}")
        setattr(mod, leaf, value)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- flat parameter vector (used by model averaging) --------------------
    def get_flat_parameters(self) -> np.ndarray:
        """Concatenate every parameter into one flat float vector (a copy)."""
        parts = [p.data.ravel() for p in self.parameters()]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load a flat vector produced by :meth:`get_flat_parameters` in place."""
        flat = np.asarray(flat, dtype=float)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
        offset = 0
        for p in self.parameters():
            n = p.size
            p.data[...] = flat[offset : offset + n].reshape(p.shape)
            offset += n

    def get_flat_gradients(self) -> np.ndarray:
        """Concatenate parameter gradients (zeros where a gradient is unset)."""
        parts = []
        for p in self.parameters():
            if p.grad is None:
                parts.append(np.zeros(p.size))
            else:
                parts.append(p.grad.ravel())
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            value = np.asarray(state[name])
            if value.shape != p.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {p.shape}")
            p.data[...] = value

    # -- forward ---------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    # -- param-bank forward (vectorized worker-bank backend) -------------------
    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """Run this module's computation for all m workers at once.

        ``x`` carries a leading worker axis — ``(m, B, ...)`` — and ``params``
        maps fully-qualified parameter names (as in :meth:`named_parameters`)
        to tensors stacked along the same axis, ``(m, *shape)``.  ``prefix``
        is this module's name prefix inside ``params``.  Layers that support
        the stacked path override this; the base implementation marks the
        module as loop-only (see :meth:`supports_bank`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the param-bank forward path"
        )

    def bank_loss(self, x, y, params) -> Tensor:
        """Per-worker losses ``(m,)`` of stacked batches under stacked params.

        Each entry must equal ``self.loss(x[i], y[i])`` evaluated with worker
        i's parameter slice, so that ``bank_loss(...).sum().backward()``
        deposits every worker's own batch gradient into its slice of the
        parameter bank.  Models that support the vectorized backend override
        this alongside :meth:`bank_forward`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a param-bank loss"
        )

    def supports_bank(self) -> bool:
        """Whether this module tree can run the stacked param-bank forward."""
        if type(self).bank_forward is Module.bank_forward:
            return False
        return all(mod.supports_bank() for mod in self._modules.values())

    # -- per-worker RNG streams (vectorized worker-bank backend) ---------------
    def stream_modules(self) -> Iterator["Module"]:
        """Depth-first modules that consume a private RNG stream while training.

        On the loop backend each of the m replicas owns its own stream (e.g.
        a ``Dropout`` layer's mask generator).  The worker-bank backend runs
        one template module for all m workers, so it pairs every stream
        module here with the m per-worker streams a loop run would have built
        (see :func:`repro.nn.bank.attach_bank_streams`) — that is what keeps
        seeded trajectories byte-identical across backends.
        """
        if self._consumes_stream():
            yield self
        for mod in self._modules.values():
            yield from mod.stream_modules()

    def _consumes_stream(self) -> bool:
        """Whether *this* module draws from an RNG during a training forward."""
        return False

    @staticmethod
    def _as_bank_input(x) -> Tensor:
        """Coerce a stacked batch to a ``(m, B, F)`` tensor (models' prelude)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 3:
            x = x.reshape(x.shape[0], x.shape[1], -1)
        return x


class Linear(Module):
    """Fully connected layer ``y = x W + b`` with weight of shape (in, out)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        gen = check_random_state(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init_mod.kaiming_uniform((in_features, out_features), gen), requires_grad=True)
        if bias:
            self.bias = Tensor(init_mod.zeros((out_features,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        # (m, B, in) @ (m, in, out) — matmul broadcasts over the worker axis,
        # so one call runs every replica's affine map.
        weight = params[f"{prefix}weight"]
        out = x @ weight
        if self.bias is not None:
            bias = params[f"{prefix}bias"]  # (m, out)
            out = out + bias.reshape(bias.shape[0], 1, bias.shape[1])
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.reshape(x.shape[0], x.shape[1], -1)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = check_random_state(rng)
        #: Per-worker mask streams for the bank path; worker i's generator
        #: must sit exactly where loop replica i's ``_rng`` would (wired by
        #: ``repro.nn.bank.attach_bank_streams`` at backend construction).
        self._bank_rngs: "list | None" = None

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        rngs = self._bank_rngs
        if rngs is None or len(rngs) != x.shape[0]:
            raise RuntimeError(
                "Dropout bank_forward needs one RNG stream per worker; the "
                "worker-bank backend attaches them at construction (see "
                "repro.nn.bank.attach_bank_streams)"
            )
        # One draw of shape (B, ...) per worker stream — each generator is
        # consumed exactly as its loop replica's would be, so a seeded run
        # produces byte-identical masks (and stream positions) on either
        # backend.  Only the draws loop over m; the masking is one op.
        per_worker = x.shape[1:]
        mask = (np.stack([rng.random(per_worker) for rng in rngs]) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def _consumes_stream(self) -> bool:
        return self.p > 0.0


class Sequential(Module):
    """Chain of sub-modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._seq: list[Module] = []
        for i, mod in enumerate(modules):
            setattr(self, f"layer{i}", mod)
            self._seq.append(mod)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._seq:
            x = mod(x)
        return x

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        for name, mod in self._modules.items():
            x = mod.bank_forward(x, params, f"{prefix}{name}.")
        return x

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Convert NCHW input patches to columns for convolution as matmul."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int, stride: int) -> np.ndarray:
    """Scatter column gradients back to the NCHW input shape (inverse of im2col)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    dx = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += patches[:, :, i, j]
    return dx


class Conv2d(Module):
    """2-D convolution (NCHW) implemented with im2col + matmul.

    Small by design; intended for the "resnet-lite"/"vgg-lite" models trained
    on the synthetic CIFAR substitute.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        gen = check_random_state(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            init_mod.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), gen),
            requires_grad=True,
        )
        if bias:
            self.bias = Tensor(init_mod.zeros((out_channels,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        if self.padding:
            x = x.pad2d(self.padding)

        kh = kw = self.kernel_size
        stride = self.stride
        x_data = x.data
        n, c, h, w = x_data.shape
        cols, out_h, out_w = _im2col(x_data, kh, kw, stride)
        w_mat = self.weight.data.reshape(self.out_channels, -1).T  # (c*kh*kw, out_c)
        out_cols = cols @ w_mat
        out_data = out_cols.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.bias is not None:
            out_data = out_data + self.bias.data.reshape(1, -1, 1, 1)

        weight = self.weight
        bias = self.bias
        x_shape = x_data.shape
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(g):
            # g: (n, out_c, out_h, out_w)
            g_cols = g.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
            dw = (cols.T @ g_cols).T.reshape(weight.shape)
            dcols = g_cols @ w_mat.T
            dx = _col2im(dcols, x_shape, kh, kw, stride)
            if bias is None:
                return (dx, dw)
            db = g.sum(axis=(0, 2, 3))
            return (dx, dw, db)

        return x._make(out_data, parents, backward)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """All m workers' convolutions in one batched matmul.

        The worker axis is folded into the batch axis for the im2col patch
        extraction — one strided view over ``(m·B, c, h, w)`` — and only the
        weights stay per-worker: ``(m, B·oh·ow, c·kh·kw) @ (m, c·kh·kw,
        out_c)``.  NumPy's stacked matmul runs the identical per-slice GEMM a
        loop replica would, so the outputs (and gradients) are byte-identical
        to m single-replica convolutions.
        """
        if x.ndim != 5:
            raise ValueError(f"Conv2d bank_forward expects (m, B, C, H, W) input, got shape {x.shape}")
        weight = params[f"{prefix}weight"]
        bias = params[f"{prefix}bias"] if self.bias is not None else None

        kh = kw = self.kernel_size
        stride, pad = self.stride, self.padding
        x_data = x.data
        if pad:
            x_data = np.pad(x_data, ((0, 0), (0, 0), (0, 0), (pad, pad), (pad, pad)))
        m, b, c, h, w = x_data.shape
        cols, out_h, out_w = _im2col(x_data.reshape(m * b, c, h, w), kh, kw, stride)
        cols3 = cols.reshape(m, b * out_h * out_w, c * kh * kw)
        w_mat = weight.data.reshape(m, self.out_channels, -1).transpose(0, 2, 1)
        out_cols = cols3 @ w_mat  # (m, B·oh·ow, out_c)
        out_data = out_cols.reshape(m, b, out_h, out_w, self.out_channels).transpose(0, 1, 4, 2, 3)
        if bias is not None:
            out_data = out_data + bias.data.reshape(m, 1, -1, 1, 1)

        padded_shape = (m * b, c, h, w)
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(g):
            # g: (m, B, out_c, oh, ow)
            g_cols = g.transpose(0, 1, 3, 4, 2).reshape(m, b * out_h * out_w, self.out_channels)
            dw = (cols3.transpose(0, 2, 1) @ g_cols).transpose(0, 2, 1).reshape(weight.shape)
            dcols = g_cols @ w_mat.transpose(0, 2, 1)
            dx = _col2im(dcols.reshape(-1, c * kh * kw), padded_shape, kh, kw, stride)
            dx = dx.reshape(m, b, c, h, w)
            if pad:
                dx = dx[:, :, :, pad:-pad, pad:-pad]
            if bias is None:
                return (dx, dw)
            db = g.sum(axis=(1, 3, 4))
            return (dx, dw, db)

        return x._make(out_data, parents, backward)


class _Pool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        # Pooling has no parameters, so the worker axis simply folds into the
        # batch axis and the single-replica window arithmetic runs unchanged
        # (byte-identical per slice); the reshapes route gradients back.
        if x.ndim != 5:
            raise ValueError(f"pooling bank_forward expects (m, B, C, H, W) input, got shape {x.shape}")
        m, b = x.shape[0], x.shape[1]
        out = self.forward(x.reshape(m * b, *x.shape[2:]))
        return out.reshape(m, b, *out.shape[1:])


class MaxPool2d(_Pool2d):
    """Max pooling over non-overlapping (or strided) windows of an NCHW tensor."""

    def forward(self, x: Tensor) -> Tensor:
        k, s = self.kernel_size, self.stride
        n, c, h, w = x.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        x_data = x.data
        shape = (n, c, out_h, out_w, k, k)
        strides = (
            x_data.strides[0],
            x_data.strides[1],
            x_data.strides[2] * s,
            x_data.strides[3] * s,
            x_data.strides[2],
            x_data.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x_data, shape=shape, strides=strides)
        out_data = windows.max(axis=(4, 5))

        def backward(g):
            dx = np.zeros_like(x_data)
            flat = windows.reshape(n, c, out_h, out_w, k * k)
            argmax = flat.argmax(axis=4)
            ii, jj = np.unravel_index(argmax, (k, k))
            ni, ci, oi, oj = np.meshgrid(
                np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij"
            )
            np.add.at(dx, (ni, ci, oi * s + ii, oj * s + jj), g)
            return (dx,)

        return x._make(out_data, (x,), backward)


class AvgPool2d(_Pool2d):
    """Average pooling over windows of an NCHW tensor."""

    def forward(self, x: Tensor) -> Tensor:
        k, s = self.kernel_size, self.stride
        n, c, h, w = x.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        x_data = x.data
        shape = (n, c, out_h, out_w, k, k)
        strides = (
            x_data.strides[0],
            x_data.strides[1],
            x_data.strides[2] * s,
            x_data.strides[3] * s,
            x_data.strides[2],
            x_data.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x_data, shape=shape, strides=strides)
        out_data = windows.mean(axis=(4, 5))

        def backward(g):
            dx = np.zeros_like(x_data)
            scale = 1.0 / (k * k)
            g_scaled = g * scale
            for i in range(k):
                for j in range(k):
                    dx[:, :, i : i + s * out_h : s, j : j + s * out_w : s] += g_scaled
            return (dx,)

        return x._make(out_data, (x,), backward)


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of (N, F) inputs.

    Running statistics are tracked for eval mode.  Note that running stats
    are *buffers*, not parameters, so PASGD model averaging (which averages
    the flat parameter vector) averages γ/β but leaves each worker's running
    stats local — matching common DDP semantics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(np.ones(num_features), requires_grad=True)
        self.bias = Tensor(np.zeros(num_features), requires_grad=True)
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, F) input")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.ravel()
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.ravel()
            )
            x_hat = centered / (var + self.eps).sqrt()
        else:
            x_hat = (x - Tensor(self.running_mean)) / Tensor(np.sqrt(self.running_var + self.eps))
        return x_hat * self.weight + self.bias

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """Normalize all m workers' batches under per-worker γ/β and stats.

        ``params`` must be a param+buffer mapping (``ParameterBank.state()``):
        the ``(m, F)`` running-stat buffers are read — and, in training mode,
        momentum-updated in place — per worker, exactly as m loop replicas
        would update their local copies.
        """
        if x.ndim != 3:
            raise ValueError("BatchNorm1d bank_forward expects (m, B, F) input")
        weight = params[f"{prefix}weight"]
        bias = params[f"{prefix}bias"]
        try:
            running_mean = params[f"{prefix}running_mean"]
            running_var = params[f"{prefix}running_var"]
        except KeyError:
            raise KeyError(
                "BatchNorm1d bank_forward needs the stacked running-stat buffers; "
                "pass ParameterBank.state() (params + buffers), not .params alone"
            ) from None
        m = x.shape[0]
        if self.training:
            mean = x.mean(axis=1, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=1, keepdims=True)
            running_mean[...] = (
                (1 - self.momentum) * running_mean + self.momentum * mean.data.reshape(m, -1)
            )
            running_var[...] = (
                (1 - self.momentum) * running_var + self.momentum * var.data.reshape(m, -1)
            )
            x_hat = centered / (var + self.eps).sqrt()
        else:
            x_hat = (x - Tensor(running_mean[:, None, :])) / Tensor(
                np.sqrt(running_var[:, None, :] + self.eps)
            )
        w = weight.reshape(m, 1, self.num_features)
        b = bias.reshape(m, 1, self.num_features)
        return x_hat * w + b


class Residual(Module):
    """Residual wrapper: ``y = x + inner(x)`` (the resnet-lite building block)."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return x + self.inner(x)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x + self.inner.bank_forward(x, params, f"{prefix}inner.")
