"""Neural-network layers built on the autograd Tensor.

The ``Module`` base class provides parameter registration and flat
get/set of the parameter vector, which is what the distributed substrate
needs for model averaging (PASGD averages the *entire* parameter vector
across workers, eq. 3 of the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn import init as init_mod
from repro.nn.tensor import Tensor
from repro.utils.seeding import check_random_state
from repro.utils.timer import profiled

__all__ = [
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Sequential",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "Residual",
    "clear_kernel_plan_cache",
    "kernel_plan_cache_stats",
]


class Module:
    """Base class for layers and models.

    Subclasses register :class:`Tensor` parameters as attributes; the base
    class discovers them (recursively through sub-modules) for optimization,
    averaging, and serialization.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute magic -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        elif name in self.__dict__.get("_buffers", {}):
            # Re-assignment to a registered buffer keeps it registered
            # (BatchNorm rebinds its running stats every training step).
            value = np.asarray(value, dtype=float)
            self.__dict__["_buffers"][name] = value
        object.__setattr__(self, name, value)

    # -- parameter access -------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable parameters, depth-first."""
        for p in self._parameters.values():
            yield p
        for mod in self._modules.values():
            yield from mod.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- buffer access -----------------------------------------------------
    def register_buffer(self, name: str, value) -> None:
        """Register per-replica state that is *not* a trainable parameter.

        Buffers (e.g. batch-norm running statistics) are excluded from the
        flat parameter vector, so model averaging leaves each worker's copy
        local — matching common DDP semantics.  The vectorized worker-bank
        backend stacks them per worker alongside the parameters (see
        :class:`repro.nn.bank.ParameterBank`).
        """
        arr = np.asarray(value, dtype=float)
        self.__dict__.setdefault("_buffers", OrderedDict())[name] = arr
        object.__setattr__(self, name, arr)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield (f"{prefix}{name}", b)
        for mod_name, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{mod_name}.")

    def buffers(self) -> Iterator[np.ndarray]:
        for _, b in self.named_buffers():
            yield b

    def set_buffer(self, name: str, value) -> None:
        """Assign a buffer by fully-qualified dotted name (see ``named_buffers``)."""
        *path, leaf = name.split(".")
        mod: Module = self
        for part in path:
            try:
                mod = mod._modules[part]
            except KeyError:
                raise KeyError(f"no submodule {part!r} on the path to buffer {name!r}") from None
        if leaf not in mod._buffers:
            raise KeyError(f"module {type(mod).__name__} has no buffer {leaf!r}")
        setattr(mod, leaf, value)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- flat parameter vector (used by model averaging) --------------------
    def get_flat_parameters(self) -> np.ndarray:
        """Concatenate every parameter into one flat float vector (a copy)."""
        parts = [p.data.ravel() for p in self.parameters()]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load a flat vector produced by :meth:`get_flat_parameters` in place."""
        flat = np.asarray(flat, dtype=float)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
        offset = 0
        for p in self.parameters():
            n = p.size
            p.data[...] = flat[offset : offset + n].reshape(p.shape)
            offset += n

    def get_flat_gradients(self) -> np.ndarray:
        """Concatenate parameter gradients (zeros where a gradient is unset)."""
        parts = []
        for p in self.parameters():
            if p.grad is None:
                parts.append(np.zeros(p.size))
            else:
                parts.append(p.grad.ravel())
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            value = np.asarray(state[name])
            if value.shape != p.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {p.shape}")
            p.data[...] = value

    # -- forward ---------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    # -- param-bank forward (vectorized worker-bank backend) -------------------
    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """Run this module's computation for all m workers at once.

        ``x`` carries a leading worker axis — ``(m, B, ...)`` — and ``params``
        maps fully-qualified parameter names (as in :meth:`named_parameters`)
        to tensors stacked along the same axis, ``(m, *shape)``.  ``prefix``
        is this module's name prefix inside ``params``.  Layers that support
        the stacked path override this; the base implementation marks the
        module as loop-only (see :meth:`supports_bank`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the param-bank forward path"
        )

    def bank_loss(self, x, y, params) -> Tensor:
        """Per-worker losses ``(m,)`` of stacked batches under stacked params.

        Each entry must equal ``self.loss(x[i], y[i])`` evaluated with worker
        i's parameter slice, so that ``bank_loss(...).sum().backward()``
        deposits every worker's own batch gradient into its slice of the
        parameter bank.  Models that support the vectorized backend override
        this alongside :meth:`bank_forward`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a param-bank loss"
        )

    def supports_bank(self) -> bool:
        """Whether this module tree can run the stacked param-bank forward."""
        if type(self).bank_forward is Module.bank_forward:
            return False
        return all(mod.supports_bank() for mod in self._modules.values())

    # -- per-worker RNG streams (vectorized worker-bank backend) ---------------
    def stream_modules(self) -> Iterator["Module"]:
        """Depth-first modules that consume a private RNG stream while training.

        On the loop backend each of the m replicas owns its own stream (e.g.
        a ``Dropout`` layer's mask generator).  The worker-bank backend runs
        one template module for all m workers, so it pairs every stream
        module here with the m per-worker streams a loop run would have built
        (see :func:`repro.nn.bank.attach_bank_streams`) — that is what keeps
        seeded trajectories byte-identical across backends.
        """
        if self._consumes_stream():
            yield self
        for mod in self._modules.values():
            yield from mod.stream_modules()

    def _consumes_stream(self) -> bool:
        """Whether *this* module draws from an RNG during a training forward."""
        return False

    @staticmethod
    def _as_bank_input(x) -> Tensor:
        """Coerce a stacked batch to a ``(m, B, F)`` tensor (models' prelude)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 3:
            x = x.reshape(x.shape[0], x.shape[1], -1)
        return x


class Linear(Module):
    """Fully connected layer ``y = x W + b`` with weight of shape (in, out)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        gen = check_random_state(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init_mod.kaiming_uniform((in_features, out_features), gen), requires_grad=True)
        if bias:
            self.bias = Tensor(init_mod.zeros((out_features,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        # (m, B, in) @ (m, in, out) — matmul broadcasts over the worker axis,
        # so one call runs every replica's affine map.
        weight = params[f"{prefix}weight"]
        out = x @ weight
        if self.bias is not None:
            bias = params[f"{prefix}bias"]  # (m, out)
            out = out + bias.reshape(bias.shape[0], 1, bias.shape[1])
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.reshape(x.shape[0], x.shape[1], -1)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = check_random_state(rng)
        #: Per-worker mask streams for the bank path; worker i's generator
        #: must sit exactly where loop replica i's ``_rng`` would (wired by
        #: ``repro.nn.bank.attach_bank_streams`` at backend construction).
        self._bank_rngs: "list | None" = None

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        rngs = self._bank_rngs
        if rngs is None or len(rngs) != x.shape[0]:
            raise RuntimeError(
                "Dropout bank_forward needs one RNG stream per worker; the "
                "worker-bank backend attaches them at construction (see "
                "repro.nn.bank.attach_bank_streams)"
            )
        # One draw of shape (B, ...) per worker stream — each generator is
        # consumed exactly as its loop replica's would be, so a seeded run
        # produces byte-identical masks (and stream positions) on either
        # backend.  Only the draws loop over m; the masking is one op.
        per_worker = x.shape[1:]
        keep = np.stack([rng.random(per_worker) for rng in rngs]) >= self.p
        # Build the mask in the activation dtype so the float32 bank mode
        # stays float32 end to end; in float64 this is the exact bool/float
        # promotion NumPy would apply anyway (byte-identical to the loop).
        mask = keep.astype(x.data.dtype) / x.data.dtype.type(1.0 - self.p)
        return x * Tensor(mask)

    def _consumes_stream(self) -> bool:
        return self.p > 0.0


class Sequential(Module):
    """Chain of sub-modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._seq: list[Module] = []
        for i, mod in enumerate(modules):
            setattr(self, f"layer{i}", mod)
            self._seq.append(mod)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._seq:
            x = mod(x)
        return x

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        for name, mod in self._modules.items():
            x = mod.bank_forward(x, params, f"{prefix}{name}.")
        return x

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]


class _ConvPlan:
    """Precomputed im2col/col2im index maps for one ``(c, h, w, kh, kw, stride)``.

    The historical implementation rebuilt an ``as_strided`` view plus a
    transpose/reshape copy on *every* forward, and ran a Python loop of
    strided slice-adds on every backward.  The geometry never changes between
    steps, so the gather and scatter index maps are computed once and reused
    — one ``take`` per forward, ``kh·kw`` indexed adds per backward.

    Byte-compatibility contract (load-bearing for the golden fixtures and the
    loop↔vectorized↔sharded equivalence matrix):

    * ``gather`` reproduces exactly the historical patch layout
      ``(oh, ow, c, kh, kw)``, so the GEMM inputs — hence outputs — are
      bit-identical to the stride-trick path.
    * ``col2im`` replays the historical accumulation order: one pass per
      kernel offset ``(i, j)`` in ascending order.  Within a pass every
      destination is unique (windows at a fixed offset never collide), so
      the per-element add order matches the old slice-add loop, keeping
      IEEE-754 sums bit-identical even for overlapping windows
      (stride < kernel).  The two scatter strategies below differ only in
      memory layout of the *source*, never in add order or operands.
    """

    __slots__ = (
        "c", "h", "w", "kh", "kw", "stride", "out_h", "out_w", "gather",
        "scatter_dst", "scatter_src",
    )

    #: cols.size bounds choosing the scatter strategy: below the first the
    #: strided-view passes stay cache-resident, between them the cached
    #: fancy-index scatter wins, above the second the bulk transpose copy
    #: pays for itself.  All three are bit-identical (same pass order).
    _COL2IM_FANCY_MIN = 16384
    _COL2IM_TRANSPOSE_MIN = 131072

    def __init__(self, c: int, h: int, w: int, kh: int, kw: int, stride: int):
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        self.c, self.h, self.w = c, h, w
        self.kh, self.kw, self.stride = kh, kw, stride
        self.out_h, self.out_w = out_h, out_w

        ci = np.arange(c, dtype=np.intp)
        rows = np.arange(out_h, dtype=np.intp)[:, None] * stride + np.arange(kh, dtype=np.intp)
        cols = np.arange(out_w, dtype=np.intp)[:, None] * stride + np.arange(kw, dtype=np.intp)
        # gather[(oi, oj), (ci, i, j)] -> flat position in a (c·h·w) sample.
        self.gather = (
            ci[None, None, :, None, None] * (h * w)
            + rows[:, None, None, :, None] * w
            + cols[None, :, None, None, :]
        ).reshape(out_h * out_w * c * kh * kw)

        # Per-offset flat scatter maps for the mid-size col2im strategy:
        # destination positions in a (c·h·w) sample, source positions in a
        # (oh·ow·c·kh·kw) column row, both in (ci, oi, oj) order.
        ci3, oi3, oj3 = ci[:, None, None], np.arange(out_h, dtype=np.intp)[None, :, None], np.arange(out_w, dtype=np.intp)[None, None, :]
        self.scatter_dst = np.empty((kh * kw, c * out_h * out_w), dtype=np.intp)
        self.scatter_src = np.empty_like(self.scatter_dst)
        for q in range(kh * kw):
            i, j = divmod(q, kw)
            self.scatter_dst[q] = (ci3 * (h * w) + (i + stride * oi3) * w + (j + stride * oj3)).ravel()
            self.scatter_src[q] = ((oi3 * out_w + oj3) * (c * kh * kw) + ci3 * (kh * kw) + i * kw + j).ravel()

    def im2col(self, x: np.ndarray) -> np.ndarray:
        """Gather NCHW input patches to ``(n·oh·ow, c·kh·kw)`` columns."""
        n = x.shape[0]
        flat = x.reshape(n, self.c * self.h * self.w)
        return flat.take(self.gather, axis=1).reshape(-1, self.c * self.kh * self.kw)

    def col2im(self, cols: np.ndarray, n: int) -> np.ndarray:
        """Scatter column gradients back to ``(n, c, h, w)`` (inverse of im2col)."""
        c, h, w, kh, kw, s = self.c, self.h, self.w, self.kh, self.kw, self.stride
        out_h, out_w = self.out_h, self.out_w
        if cols.size >= self._COL2IM_TRANSPOSE_MIN and out_h * out_w >= 64:
            # Large-spatial scatter: one bulk transpose copy up front so every
            # pass reads a contiguous (n, c, oh, ow) block instead of striding
            # through the whole column matrix kh·kw times.  Small spatial maps
            # make those per-pass blocks tiny, where the indexed add below
            # wins despite its gather cost.
            dx = np.zeros((n, c, h, w), dtype=cols.dtype)
            p = np.ascontiguousarray(cols.reshape(n, out_h * out_w, c, kh * kw).transpose(0, 3, 2, 1))
            p = p.reshape(n, kh * kw, c, out_h, out_w)
            for k in range(kh * kw):
                i, j = divmod(k, kw)
                dx[:, :, i : i + s * out_h : s, j : j + s * out_w : s] += p[:, k]
            return dx
        if cols.size >= self._COL2IM_FANCY_MIN:
            # Mid-size scatter: precomputed flat index maps; per pass the
            # destinations are unique, so the buffered fancy add is exact.
            colsf = cols.reshape(n, -1)
            dxf = np.zeros((n, c * h * w), dtype=cols.dtype)
            for dst, src in zip(self.scatter_dst, self.scatter_src):
                dxf[:, dst] += colsf[:, src]
            return dxf.reshape(n, c, h, w)
        # Small scatter: strided pass sources stay cache-resident; skip the
        # transpose copy and the index arithmetic.
        dx = np.zeros((n, c, h, w), dtype=cols.dtype)
        patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + s * out_h : s, j : j + s * out_w : s] += patches[:, :, i, j]
        return dx


#: Conv gather/scatter plans keyed by ``(c, h, w, kh, kw, stride)`` and pool
#: backward index maps keyed by ``(n, c, h, w, k, s)``.  Bounded FIFO caches:
#: a handful of geometries per model, but eval batch sizes vary, so evict the
#: oldest entry past the cap instead of growing without bound.
_CONV_PLANS: dict[tuple, _ConvPlan] = {}
_POOL_PLANS: dict[tuple, np.ndarray] = {}
_PLAN_CACHE_CAP = 128
_plan_cache_hits = 0
_plan_cache_misses = 0


def _conv_plan(c: int, h: int, w: int, kh: int, kw: int, stride: int) -> _ConvPlan:
    global _plan_cache_hits, _plan_cache_misses
    key = (c, h, w, kh, kw, stride)
    plan = _CONV_PLANS.get(key)
    if plan is None:
        _plan_cache_misses += 1
        if len(_CONV_PLANS) >= _PLAN_CACHE_CAP:
            _CONV_PLANS.pop(next(iter(_CONV_PLANS)))
        plan = _CONV_PLANS[key] = _ConvPlan(c, h, w, kh, kw, stride)
    else:
        _plan_cache_hits += 1
    return plan


def _pool_base(n: int, c: int, h: int, w: int, out_h: int, out_w: int, s: int) -> np.ndarray:
    """Cached flat indices of each pooling window's origin, shape (n, c, oh, ow)."""
    global _plan_cache_hits, _plan_cache_misses
    key = (n, c, h, w, out_h, out_w, s)
    base = _POOL_PLANS.get(key)
    if base is None:
        _plan_cache_misses += 1
        if len(_POOL_PLANS) >= _PLAN_CACHE_CAP:
            _POOL_PLANS.pop(next(iter(_POOL_PLANS)))
        ni = np.arange(n, dtype=np.intp)[:, None, None, None]
        ci = np.arange(c, dtype=np.intp)[None, :, None, None]
        oi = np.arange(out_h, dtype=np.intp)[None, None, :, None]
        oj = np.arange(out_w, dtype=np.intp)[None, None, None, :]
        base = ((ni * c + ci) * h + s * oi) * w + s * oj
        _POOL_PLANS[key] = base
    else:
        _plan_cache_hits += 1
    return base


#: ``(k, w) -> (k²,)`` flat offsets of each in-window position; tiny and
#: geometry-stable, so cached without a cap alongside the pool bases.
_POOL_OFFSETS: dict[tuple[int, int], np.ndarray] = {}


def _pool_offsets(k: int, w: int) -> np.ndarray:
    """Cached flat offset of window position ``t`` (row-major): ``(t//k)*w + t%k``."""
    key = (k, w)
    offsets = _POOL_OFFSETS.get(key)
    if offsets is None:
        t = np.arange(k * k, dtype=np.intp)
        offsets = _POOL_OFFSETS[key] = (t // k) * w + t % k
    return offsets


def clear_kernel_plan_cache() -> None:
    """Drop all cached conv/pool index plans (test hook; safe at any time)."""
    global _plan_cache_hits, _plan_cache_misses
    _CONV_PLANS.clear()
    _POOL_PLANS.clear()
    _POOL_OFFSETS.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0


def kernel_plan_cache_stats() -> dict[str, int]:
    """Sizes and hit/miss counters of the kernel plan caches."""
    return {
        "conv_plans": len(_CONV_PLANS),
        "pool_plans": len(_POOL_PLANS),
        "hits": _plan_cache_hits,
        "misses": _plan_cache_misses,
    }


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Convert NCHW input patches to columns for convolution as matmul."""
    n, c, h, w = x.shape
    plan = _conv_plan(c, h, w, kh, kw, stride)
    with profiled("im2col"):
        return plan.im2col(x), plan.out_h, plan.out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int, stride: int) -> np.ndarray:
    """Scatter column gradients back to the NCHW input shape (inverse of im2col)."""
    n, c, h, w = x_shape
    with profiled("col2im"):
        return _conv_plan(c, h, w, kh, kw, stride).col2im(cols, n)


class Conv2d(Module):
    """2-D convolution (NCHW) implemented with im2col + matmul.

    Small by design; intended for the "resnet-lite"/"vgg-lite" models trained
    on the synthetic CIFAR substitute.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        gen = check_random_state(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            init_mod.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), gen),
            requires_grad=True,
        )
        if bias:
            self.bias = Tensor(init_mod.zeros((out_channels,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        if self.padding:
            x = x.pad2d(self.padding)

        kh = kw = self.kernel_size
        stride = self.stride
        x_data = x.data
        n, c, h, w = x_data.shape
        with profiled("conv2d.forward"):
            cols, out_h, out_w = _im2col(x_data, kh, kw, stride)
            w_mat = self.weight.data.reshape(self.out_channels, -1).T  # (c*kh*kw, out_c)
            out_cols = cols @ w_mat
            # Materialize a C-contiguous output: the transpose view would leak
            # its layout through every downstream ufunc (bias add, ReLU, pooling).
            out_data = np.ascontiguousarray(
                out_cols.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
            )
            if self.bias is not None:
                out_data += self.bias.data.reshape(1, -1, 1, 1)

        weight = self.weight
        bias = self.bias
        x_shape = x_data.shape
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(g):
            # g: (n, out_c, out_h, out_w)
            with profiled("conv2d.backward"):
                g_cols = g.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
                dw = (cols.T @ g_cols).T.reshape(weight.shape)
                if x.requires_grad:
                    dx = _col2im(g_cols @ w_mat.T, x_shape, kh, kw, stride)
                else:
                    # First-layer input: the scatter (and its GEMM) would be
                    # discarded by the engine, so don't compute it.
                    dx = None
                if bias is None:
                    return (dx, dw)
                db = g.sum(axis=(0, 2, 3))
                return (dx, dw, db)

        return x._make(out_data, parents, backward)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """All m workers' convolutions in one batched matmul.

        The worker axis is folded into the batch axis for the im2col patch
        extraction — one strided view over ``(m·B, c, h, w)`` — and only the
        weights stay per-worker: ``(m, B·oh·ow, c·kh·kw) @ (m, c·kh·kw,
        out_c)``.  NumPy's stacked matmul runs the identical per-slice GEMM a
        loop replica would, so the outputs (and gradients) are byte-identical
        to m single-replica convolutions.
        """
        if x.ndim != 5:
            raise ValueError(f"Conv2d bank_forward expects (m, B, C, H, W) input, got shape {x.shape}")
        weight = params[f"{prefix}weight"]
        bias = params[f"{prefix}bias"] if self.bias is not None else None

        kh = kw = self.kernel_size
        stride, pad = self.stride, self.padding
        x_data = x.data
        with profiled("conv2d.bank_forward"):
            if pad:
                # Zero-fill + interior assign: same bytes as np.pad without its
                # per-call Python machinery (this runs once per conv per step).
                mm, bb, cc, hh, ww = x_data.shape
                padded = np.zeros((mm, bb, cc, hh + 2 * pad, ww + 2 * pad), dtype=x_data.dtype)
                padded[:, :, :, pad:-pad, pad:-pad] = x_data
                x_data = padded
            m, b, c, h, w = x_data.shape
            cols, out_h, out_w = _im2col(x_data.reshape(m * b, c, h, w), kh, kw, stride)
            cols3 = cols.reshape(m, b * out_h * out_w, c * kh * kw)
            w_mat = weight.data.reshape(m, self.out_channels, -1).transpose(0, 2, 1)
            out_cols = cols3 @ w_mat  # (m, B·oh·ow, out_c)
            # Materialize a C-contiguous output (see forward): downstream ufuncs
            # inherit the layout, and the pooling fast path needs C order.
            out_data = np.ascontiguousarray(
                out_cols.reshape(m, b, out_h, out_w, self.out_channels).transpose(0, 1, 4, 2, 3)
            )
            if bias is not None:
                out_data += bias.data.reshape(m, 1, -1, 1, 1)

        padded_shape = (m * b, c, h, w)
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(g):
            # g: (m, B, out_c, oh, ow)
            with profiled("conv2d.bank_backward"):
                g_cols = g.transpose(0, 1, 3, 4, 2).reshape(m, b * out_h * out_w, self.out_channels)
                dw = (cols3.transpose(0, 2, 1) @ g_cols).transpose(0, 2, 1).reshape(weight.shape)
                if x.requires_grad:
                    dcols = g_cols @ w_mat.transpose(0, 2, 1)
                    dx = _col2im(dcols.reshape(-1, c * kh * kw), padded_shape, kh, kw, stride)
                    dx = dx.reshape(m, b, c, h, w)
                    if pad:
                        dx = dx[:, :, :, pad:-pad, pad:-pad]
                else:
                    # First-layer input: the scatter (and its GEMM) would be
                    # discarded by the engine, so don't compute it.
                    dx = None
                if bias is None:
                    return (dx, dw)
                db = g.sum(axis=(1, 3, 4))
                return (dx, dw, db)

        return x._make(out_data, parents, backward)


class _Pool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def _forward_arrays(self, x_data: np.ndarray):  # pragma: no cover - abstract
        """Array-level pool: return ``(out_data, backward)`` for NCHW input."""
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        with profiled("pool.forward"):
            out_data, array_backward = self._forward_arrays(x.data)

        def backward(g):
            with profiled("pool.backward"):
                return (array_backward(g),)

        return x._make(out_data, (x,), backward)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        # Pooling has no parameters, so the worker axis simply folds into the
        # batch axis and the single-replica window arithmetic runs unchanged
        # (byte-identical per slice).  The fold happens at the ndarray level —
        # one graph node instead of reshape→pool→reshape — so the bank path
        # spends nothing on extra autograd bookkeeping.
        if x.ndim != 5:
            raise ValueError(f"pooling bank_forward expects (m, B, C, H, W) input, got shape {x.shape}")
        x_data = x.data
        m, b = x_data.shape[0], x_data.shape[1]
        with profiled("pool.bank_forward"):
            out4, array_backward = self._forward_arrays(x_data.reshape(m * b, *x_data.shape[2:]))
        out_data = out4.reshape(m, b, *out4.shape[1:])

        def backward(g):
            with profiled("pool.bank_backward"):
                dx4 = array_backward(g.reshape(m * b, *g.shape[2:]))
                return (dx4.reshape(x_data.shape),)

        return x._make(out_data, (x,), backward)


class MaxPool2d(_Pool2d):
    """Max pooling over non-overlapping (or strided) windows of an NCHW tensor."""

    def _forward_arrays(self, x_data: np.ndarray):
        k, s = self.kernel_size, self.stride
        n, c, h, w = x_data.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        # Exactly-tiling non-overlapping windows on a C-contiguous input
        # reduce over a plain reshape view — much faster than the strided
        # window view, and the same element set per window either way.
        tiled = s == k and h == out_h * k and w == out_w * k and x_data.flags.c_contiguous
        if tiled:
            blocks = x_data.reshape(n, c, out_h, k, out_w, k)
            views = [blocks[:, :, :, i, :, j] for i in range(k) for j in range(k)]
        else:
            shape = (n, c, out_h, out_w, k, k)
            strides = (
                x_data.strides[0],
                x_data.strides[1],
                x_data.strides[2] * s,
                x_data.strides[3] * s,
                x_data.strides[2],
                x_data.strides[3],
            )
            windows = np.lib.stride_tricks.as_strided(x_data, shape=shape, strides=strides)
            views = [windows[:, :, :, :, i, j] for i in range(k) for j in range(k)]
        # Sequential pairwise maximum over the k² window offsets, ascending
        # (i, j) — max is associativity-free, so this equals the multi-axis
        # reduce bit-for-bit while running one contiguous-output ufunc per
        # offset instead of a strided multi-axis reduction.
        if len(views) == 1:
            out_data = views[0].copy()
        else:
            out_data = np.maximum(views[0], views[1])
            for v in views[2:]:
                np.maximum(out_data, v, out=out_data)

        def backward(g):
            if tiled:
                flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, out_h, out_w, k * k)
            else:
                flat = windows.reshape(n, c, out_h, out_w, k * k)
            argmax = flat.argmax(axis=4)
            # Cached window-origin indices turn the scatter into one flat
            # indexed write instead of a 4-array tuple scatter per step; the
            # cached in-window offset table maps argmax straight to a flat
            # offset (one gather) instead of divmod arithmetic per call.
            # Scatter into an explicitly flat buffer: the pooling input is
            # often a non-C-contiguous view, where reshaping zeros_like(...)
            # would silently copy and drop the scattered writes.
            idx = _pool_base(n, c, h, w, out_h, out_w, s) + _pool_offsets(k, w)[argmax]
            dxr = np.zeros(n * c * h * w, dtype=x_data.dtype)
            if s >= k:
                # Non-overlapping windows: one argmax per window, destinations
                # unique — a plain write equals the accumulate bit-for-bit.
                dxr[idx.reshape(-1)] = g.reshape(-1)
            else:
                # Overlapping windows can collide; add.at iterates the index
                # array row-major over (n, c, oh, ow) — the same accumulation
                # order as the historical meshgrid scatter, so sums keep the
                # exact bytes.
                np.add.at(dxr, idx.reshape(-1), g.reshape(-1))
            return dxr.reshape(n, c, h, w)

        return out_data, backward


class AvgPool2d(_Pool2d):
    """Average pooling over windows of an NCHW tensor."""

    def _forward_arrays(self, x_data: np.ndarray):
        k, s = self.kernel_size, self.stride
        n, c, h, w = x_data.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        shape = (n, c, out_h, out_w, k, k)
        strides = (
            x_data.strides[0],
            x_data.strides[1],
            x_data.strides[2] * s,
            x_data.strides[3] * s,
            x_data.strides[2],
            x_data.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x_data, shape=shape, strides=strides)
        out_data = windows.mean(axis=(4, 5))

        def backward(g):
            dx = np.zeros_like(x_data)
            scale = 1.0 / (k * k)
            g_scaled = g * scale
            for i in range(k):
                for j in range(k):
                    dx[:, :, i : i + s * out_h : s, j : j + s * out_w : s] += g_scaled
            return dx

        return out_data, backward


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of (N, F) inputs.

    Running statistics are tracked for eval mode.  Note that running stats
    are *buffers*, not parameters, so PASGD model averaging (which averages
    the flat parameter vector) averages γ/β but leaves each worker's running
    stats local — matching common DDP semantics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(np.ones(num_features), requires_grad=True)
        self.bias = Tensor(np.zeros(num_features), requires_grad=True)
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, F) input")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.ravel()
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.ravel()
            )
            x_hat = centered / (var + self.eps).sqrt()
        else:
            x_hat = (x - Tensor(self.running_mean)) / Tensor(np.sqrt(self.running_var + self.eps))
        return x_hat * self.weight + self.bias

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """Normalize all m workers' batches under per-worker γ/β and stats.

        ``params`` must be a param+buffer mapping (``ParameterBank.state()``):
        the ``(m, F)`` running-stat buffers are read — and, in training mode,
        momentum-updated in place — per worker, exactly as m loop replicas
        would update their local copies.
        """
        if x.ndim != 3:
            raise ValueError("BatchNorm1d bank_forward expects (m, B, F) input")
        weight = params[f"{prefix}weight"]
        bias = params[f"{prefix}bias"]
        try:
            running_mean = params[f"{prefix}running_mean"]
            running_var = params[f"{prefix}running_var"]
        except KeyError:
            raise KeyError(
                "BatchNorm1d bank_forward needs the stacked running-stat buffers; "
                "pass ParameterBank.state() (params + buffers), not .params alone"
            ) from None
        m = x.shape[0]
        if self.training:
            mean = x.mean(axis=1, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=1, keepdims=True)
            running_mean[...] = (
                (1 - self.momentum) * running_mean + self.momentum * mean.data.reshape(m, -1)
            )
            running_var[...] = (
                (1 - self.momentum) * running_var + self.momentum * var.data.reshape(m, -1)
            )
            x_hat = centered / (var + self.eps).sqrt()
        else:
            x_hat = (x - Tensor(running_mean[:, None, :])) / Tensor(
                np.sqrt(running_var[:, None, :] + self.eps)
            )
        w = weight.reshape(m, 1, self.num_features)
        b = bias.reshape(m, 1, self.num_features)
        return x_hat * w + b


class Residual(Module):
    """Residual wrapper: ``y = x + inner(x)`` (the resnet-lite building block)."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return x + self.inner(x)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x + self.inner.bank_forward(x, params, f"{prefix}inner.")
