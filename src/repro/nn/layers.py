"""Neural-network layers built on the autograd Tensor.

The ``Module`` base class provides parameter registration and flat
get/set of the parameter vector, which is what the distributed substrate
needs for model averaging (PASGD averages the *entire* parameter vector
across workers, eq. 3 of the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn import init as init_mod
from repro.nn.tensor import Tensor
from repro.utils.seeding import check_random_state

__all__ = [
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Sequential",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "Residual",
]


class Module:
    """Base class for layers and models.

    Subclasses register :class:`Tensor` parameters as attributes; the base
    class discovers them (recursively through sub-modules) for optimization,
    averaging, and serialization.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute magic -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access -------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable parameters, depth-first."""
        for p in self._parameters.values():
            yield p
        for mod in self._modules.values():
            yield from mod.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- flat parameter vector (used by model averaging) --------------------
    def get_flat_parameters(self) -> np.ndarray:
        """Concatenate every parameter into one flat float vector (a copy)."""
        parts = [p.data.ravel() for p in self.parameters()]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load a flat vector produced by :meth:`get_flat_parameters` in place."""
        flat = np.asarray(flat, dtype=float)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
        offset = 0
        for p in self.parameters():
            n = p.size
            p.data[...] = flat[offset : offset + n].reshape(p.shape)
            offset += n

    def get_flat_gradients(self) -> np.ndarray:
        """Concatenate parameter gradients (zeros where a gradient is unset)."""
        parts = []
        for p in self.parameters():
            if p.grad is None:
                parts.append(np.zeros(p.size))
            else:
                parts.append(p.grad.ravel())
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    # -- state dict -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            value = np.asarray(state[name])
            if value.shape != p.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {p.shape}")
            p.data[...] = value

    # -- forward ---------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    # -- param-bank forward (vectorized worker-bank backend) -------------------
    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        """Run this module's computation for all m workers at once.

        ``x`` carries a leading worker axis — ``(m, B, ...)`` — and ``params``
        maps fully-qualified parameter names (as in :meth:`named_parameters`)
        to tensors stacked along the same axis, ``(m, *shape)``.  ``prefix``
        is this module's name prefix inside ``params``.  Layers that support
        the stacked path override this; the base implementation marks the
        module as loop-only (see :meth:`supports_bank`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the param-bank forward path"
        )

    def bank_loss(self, x, y, params) -> Tensor:
        """Per-worker losses ``(m,)`` of stacked batches under stacked params.

        Each entry must equal ``self.loss(x[i], y[i])`` evaluated with worker
        i's parameter slice, so that ``bank_loss(...).sum().backward()``
        deposits every worker's own batch gradient into its slice of the
        parameter bank.  Models that support the vectorized backend override
        this alongside :meth:`bank_forward`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a param-bank loss"
        )

    def supports_bank(self) -> bool:
        """Whether this module tree can run the stacked param-bank forward."""
        if type(self).bank_forward is Module.bank_forward:
            return False
        return all(mod.supports_bank() for mod in self._modules.values())

    @staticmethod
    def _as_bank_input(x) -> Tensor:
        """Coerce a stacked batch to a ``(m, B, F)`` tensor (models' prelude)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 3:
            x = x.reshape(x.shape[0], x.shape[1], -1)
        return x


class Linear(Module):
    """Fully connected layer ``y = x W + b`` with weight of shape (in, out)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        gen = check_random_state(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init_mod.kaiming_uniform((in_features, out_features), gen), requires_grad=True)
        if bias:
            self.bias = Tensor(init_mod.zeros((out_features,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        # (m, B, in) @ (m, in, out) — matmul broadcasts over the worker axis,
        # so one call runs every replica's affine map.
        weight = params[f"{prefix}weight"]
        out = x @ weight
        if self.bias is not None:
            bias = params[f"{prefix}bias"]  # (m, out)
            out = out + bias.reshape(bias.shape[0], 1, bias.shape[1])
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x.reshape(x.shape[0], x.shape[1], -1)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = check_random_state(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        if self.training and self.p > 0.0:
            raise NotImplementedError(
                "Dropout has no stream-equivalent param-bank forward; "
                "use the 'loop' backend for models with live dropout"
            )
        return x

    def supports_bank(self) -> bool:
        # A single mask draw over the (m, B, ...) stack cannot reproduce the
        # per-worker RNG streams of m loop replicas, and seeded runs must not
        # change with the backend — so a live dropout keeps the model on the
        # loop backend.  p = 0 is a no-op and stacks fine.
        return self.p == 0.0


class Sequential(Module):
    """Chain of sub-modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._seq: list[Module] = []
        for i, mod in enumerate(modules):
            setattr(self, f"layer{i}", mod)
            self._seq.append(mod)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._seq:
            x = mod(x)
        return x

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        for name, mod in self._modules.items():
            x = mod.bank_forward(x, params, f"{prefix}{name}.")
        return x

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Convert NCHW input patches to columns for convolution as matmul."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int, stride: int) -> np.ndarray:
    """Scatter column gradients back to the NCHW input shape (inverse of im2col)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    dx = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += patches[:, :, i, j]
    return dx


class Conv2d(Module):
    """2-D convolution (NCHW) implemented with im2col + matmul.

    Small by design; intended for the "resnet-lite"/"vgg-lite" models trained
    on the synthetic CIFAR substitute.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        gen = check_random_state(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            init_mod.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), gen),
            requires_grad=True,
        )
        if bias:
            self.bias = Tensor(init_mod.zeros((out_channels,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        if self.padding:
            x = x.pad2d(self.padding)

        kh = kw = self.kernel_size
        stride = self.stride
        x_data = x.data
        n, c, h, w = x_data.shape
        cols, out_h, out_w = _im2col(x_data, kh, kw, stride)
        w_mat = self.weight.data.reshape(self.out_channels, -1).T  # (c*kh*kw, out_c)
        out_cols = cols @ w_mat
        out_data = out_cols.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if self.bias is not None:
            out_data = out_data + self.bias.data.reshape(1, -1, 1, 1)

        weight = self.weight
        bias = self.bias
        x_shape = x_data.shape
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(g):
            # g: (n, out_c, out_h, out_w)
            g_cols = g.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
            dw = (cols.T @ g_cols).T.reshape(weight.shape)
            dcols = g_cols @ w_mat.T
            dx = _col2im(dcols, x_shape, kh, kw, stride)
            if bias is None:
                return (dx, dw)
            db = g.sum(axis=(0, 2, 3))
            return (dx, dw, db)

        return x._make(out_data, parents, backward)


class _Pool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size


class MaxPool2d(_Pool2d):
    """Max pooling over non-overlapping (or strided) windows of an NCHW tensor."""

    def forward(self, x: Tensor) -> Tensor:
        k, s = self.kernel_size, self.stride
        n, c, h, w = x.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        x_data = x.data
        shape = (n, c, out_h, out_w, k, k)
        strides = (
            x_data.strides[0],
            x_data.strides[1],
            x_data.strides[2] * s,
            x_data.strides[3] * s,
            x_data.strides[2],
            x_data.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x_data, shape=shape, strides=strides)
        out_data = windows.max(axis=(4, 5))

        def backward(g):
            dx = np.zeros_like(x_data)
            flat = windows.reshape(n, c, out_h, out_w, k * k)
            argmax = flat.argmax(axis=4)
            ii, jj = np.unravel_index(argmax, (k, k))
            ni, ci, oi, oj = np.meshgrid(
                np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij"
            )
            np.add.at(dx, (ni, ci, oi * s + ii, oj * s + jj), g)
            return (dx,)

        return x._make(out_data, (x,), backward)


class AvgPool2d(_Pool2d):
    """Average pooling over windows of an NCHW tensor."""

    def forward(self, x: Tensor) -> Tensor:
        k, s = self.kernel_size, self.stride
        n, c, h, w = x.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        x_data = x.data
        shape = (n, c, out_h, out_w, k, k)
        strides = (
            x_data.strides[0],
            x_data.strides[1],
            x_data.strides[2] * s,
            x_data.strides[3] * s,
            x_data.strides[2],
            x_data.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x_data, shape=shape, strides=strides)
        out_data = windows.mean(axis=(4, 5))

        def backward(g):
            dx = np.zeros_like(x_data)
            scale = 1.0 / (k * k)
            g_scaled = g * scale
            for i in range(k):
                for j in range(k):
                    dx[:, :, i : i + s * out_h : s, j : j + s * out_w : s] += g_scaled
            return (dx,)

        return x._make(out_data, (x,), backward)


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of (N, F) inputs.

    Running statistics are tracked for eval mode.  Note that running stats
    are *buffers*, not parameters, so PASGD model averaging (which averages
    the flat parameter vector) averages γ/β but leaves each worker's running
    stats local — matching common DDP semantics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(np.ones(num_features), requires_grad=True)
        self.bias = Tensor(np.zeros(num_features), requires_grad=True)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, F) input")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.ravel()
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.ravel()
            )
            x_hat = centered / (var + self.eps).sqrt()
        else:
            x_hat = (x - Tensor(self.running_mean)) / Tensor(np.sqrt(self.running_var + self.eps))
        return x_hat * self.weight + self.bias


class Residual(Module):
    """Residual wrapper: ``y = x + inner(x)`` (the resnet-lite building block)."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return x + self.inner(x)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return x + self.inner.bank_forward(x, params, f"{prefix}inner.")
