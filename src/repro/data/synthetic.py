"""Synthetic dataset generators.

``make_synth_cifar10`` / ``make_synth_cifar100`` produce Gaussian-cluster
image-like data with 10/100 classes — the drop-in replacement for the CIFAR
datasets used in the paper (see DESIGN.md, substitution table).  The other
generators cover regression and a non-linearly-separable spiral task used in
tests and examples.

The classification generators self-register in the shared
:data:`repro.api.registries.DATASETS` registry, so experiment configs refer
to them by name (``dataset="synth_cifar100"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registries import DATASETS
from repro.utils.seeding import check_random_state

__all__ = [
    "Dataset",
    "make_gaussian_blobs",
    "make_synth_cifar10",
    "make_synth_cifar100",
    "make_spirals",
    "make_linear_regression",
]


@dataclass
class Dataset:
    """A fixed design matrix / target pair with a train/test split helper."""

    X: np.ndarray
    y: np.ndarray
    n_classes: int | None = None
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y)
        if len(self.X) != len(self.y):
            raise ValueError(f"X has {len(self.X)} rows but y has {len(self.y)}")
        if len(self.X) == 0:
            raise ValueError("dataset must be non-empty")

    def __len__(self) -> int:
        return len(self.X)

    @property
    def n_features(self) -> int:
        return int(np.prod(self.X.shape[1:]))

    def subset(self, indices: np.ndarray) -> "Dataset":
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(self.X[idx], self.y[idx], n_classes=self.n_classes, name=self.name)

    def split(self, test_fraction: float = 0.2, rng=None) -> tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test)."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        gen = check_random_state(rng)
        perm = gen.permutation(len(self))
        n_test = max(1, int(round(test_fraction * len(self))))
        test_idx, train_idx = perm[:n_test], perm[n_test:]
        return self.subset(train_idx), self.subset(test_idx)


@DATASETS.register("gaussian_blobs")
def make_gaussian_blobs(
    n_samples: int,
    n_features: int,
    n_classes: int,
    class_sep: float = 2.0,
    noise_std: float = 1.0,
    label_noise: float = 0.0,
    rng=None,
    name: str = "blobs",
) -> Dataset:
    """Isotropic Gaussian clusters, one per class.

    ``class_sep`` controls how far apart the class means are (in units of the
    per-class standard deviation); smaller values make the task harder and
    raise the irreducible loss floor, mimicking harder datasets like CIFAR-100.
    ``label_noise`` flips that fraction of labels uniformly at random.
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError("label_noise must be in [0, 1)")
    gen = check_random_state(rng)
    centers = gen.normal(0.0, class_sep, size=(n_classes, n_features))
    y = gen.integers(0, n_classes, size=n_samples)
    X = centers[y] + gen.normal(0.0, noise_std, size=(n_samples, n_features))
    if label_noise > 0:
        flip = gen.random(n_samples) < label_noise
        y = np.where(flip, gen.integers(0, n_classes, size=n_samples), y)
    return Dataset(X, y.astype(np.int64), n_classes=n_classes, name=name)


@DATASETS.register("synth_cifar10")
def make_synth_cifar10(
    n_samples: int = 2000,
    n_features: int = 192,
    class_sep: float = 1.0,
    label_noise: float = 0.05,
    rng=None,
) -> Dataset:
    """Synthetic stand-in for CIFAR-10: 10 Gaussian classes, image-like dimensionality.

    The default class separation and label noise are chosen so that the task
    is *not* trivially separable — training loss decreases gradually and has
    a non-zero floor, which is the regime in which the paper's error-runtime
    trade-off (large τ → fast start but high floor) is visible.
    ``n_features = 192`` corresponds to 3×8×8 "images" so the CNN models can
    consume the same data in NCHW form.
    """
    return make_gaussian_blobs(
        n_samples,
        n_features,
        n_classes=10,
        class_sep=class_sep,
        label_noise=label_noise,
        rng=rng,
        name="synth-cifar10",
    )


@DATASETS.register("synth_cifar100")
def make_synth_cifar100(
    n_samples: int = 2000,
    n_features: int = 192,
    class_sep: float = 0.8,
    label_noise: float = 0.05,
    rng=None,
) -> Dataset:
    """Synthetic stand-in for CIFAR-100: 100 classes, lower separation (harder)."""
    return make_gaussian_blobs(
        n_samples,
        n_features,
        n_classes=100,
        class_sep=class_sep,
        label_noise=label_noise,
        rng=rng,
        name="synth-cifar100",
    )


@DATASETS.register("spirals")
def make_spirals(
    n_samples: int = 1000,
    n_classes: int = 3,
    noise_std: float = 0.2,
    rng=None,
) -> Dataset:
    """Interleaved 2-D spirals — a non-linearly-separable task for MLP tests."""
    gen = check_random_state(rng)
    per_class = n_samples // n_classes
    xs, ys = [], []
    for c in range(n_classes):
        r = np.linspace(0.2, 1.0, per_class)
        theta = np.linspace(c * 2 * np.pi / n_classes, c * 2 * np.pi / n_classes + 3.5, per_class)
        theta = theta + gen.normal(0.0, noise_std, size=per_class)
        xs.append(np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1))
        ys.append(np.full(per_class, c, dtype=np.int64))
    X = np.concatenate(xs)
    y = np.concatenate(ys)
    perm = gen.permutation(len(X))
    return Dataset(X[perm], y[perm], n_classes=n_classes, name="spirals")


def make_linear_regression(
    n_samples: int = 1000,
    n_features: int = 20,
    noise_std: float = 0.1,
    rng=None,
) -> tuple[Dataset, np.ndarray]:
    """Linear-regression data ``y = X w* + ε``; returns (dataset, true weights)."""
    gen = check_random_state(rng)
    w_star = gen.normal(size=n_features)
    X = gen.normal(size=(n_samples, n_features))
    y = X @ w_star + gen.normal(0.0, noise_std, size=n_samples)
    return Dataset(X, y, n_classes=None, name="linreg"), w_star
