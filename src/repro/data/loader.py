"""Mini-batch sampling from a worker's data shard.

``BatchLoader`` is an infinite sampler: PASGD's iteration count is driven by
the wall-clock budget and the communication schedule rather than by epochs,
so the loader reshuffles and continues whenever it exhausts its shard
(matching the paper's "partition ... randomly shuffled after every epoch").
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.seeding import check_random_state

__all__ = ["BatchLoader"]


class BatchLoader:
    """Cyclic shuffled mini-batch iterator over a dataset shard."""

    def __init__(self, dataset: Dataset, batch_size: int, rng=None, drop_last: bool = False):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = min(batch_size, len(dataset))
        self.requested_batch_size = batch_size
        self.drop_last = drop_last
        self._rng = check_random_state(rng)
        self._order = self._rng.permutation(len(dataset))
        self._cursor = 0
        self.epochs_completed = 0

    def next_indices(self) -> np.ndarray:
        """Dataset-local indices of the next mini-batch, advancing the stream.

        This is the RNG-bearing half of :meth:`next_batch` (shuffle order,
        epoch wrap); separating it lets the vectorized :class:`BankLoader`
        reproduce each shard's exact sampling stream while gathering all m
        batches with a single fancy-index.
        """
        n = len(self.dataset)
        if self._cursor + self.batch_size > n:
            remaining = self._order[self._cursor :]
            self._order = self._rng.permutation(n)
            self._cursor = 0
            self.epochs_completed += 1
            if len(remaining) > 0 and not self.drop_last:
                needed = self.batch_size - len(remaining)
                idx = np.concatenate([remaining, self._order[:needed]])
                self._cursor = needed
                return idx
        idx = self._order[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return idx

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the next (X, y) mini-batch, reshuffling at epoch boundaries."""
        idx = self.next_indices()
        return self.dataset.X[idx], self.dataset.y[idx]

    def __iter__(self):
        return self

    def __next__(self) -> tuple[np.ndarray, np.ndarray]:
        return self.next_batch()

    def full_data(self) -> tuple[np.ndarray, np.ndarray]:
        """The whole shard (used for exact loss evaluation)."""
        return self.dataset.X, self.dataset.y
