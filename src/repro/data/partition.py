"""Partitioning a dataset across workers.

The paper assigns each worker machine a partition of the training set which
is "randomly shuffled after every epoch".  ``partition_dataset`` supports the
i.i.d. (random equal shards) case used in the paper as well as a label-skewed
non-i.i.d. mode useful for federated-learning style extensions, since the
paper notes its strategy extends directly to Federated Learning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.seeding import check_random_state

__all__ = ["partition_dataset", "PartitionedDataset"]


@dataclass
class PartitionedDataset:
    """The full dataset plus per-worker index lists."""

    dataset: Dataset
    worker_indices: list[np.ndarray] = field(default_factory=list)

    @property
    def n_workers(self) -> int:
        return len(self.worker_indices)

    def shard(self, worker_id: int) -> Dataset:
        """Materialize worker ``worker_id``'s shard as a Dataset."""
        if not 0 <= worker_id < self.n_workers:
            raise IndexError(f"worker_id {worker_id} out of range [0, {self.n_workers})")
        return self.dataset.subset(self.worker_indices[worker_id])

    def shard_sizes(self) -> list[int]:
        return [len(idx) for idx in self.worker_indices]

    def reshuffle(self, rng=None) -> "PartitionedDataset":
        """Fresh i.i.d. repartition with the same number of workers (per-epoch shuffle)."""
        return partition_dataset(self.dataset, self.n_workers, strategy="iid", rng=rng)


def partition_dataset(
    dataset: Dataset,
    n_workers: int,
    strategy: str = "iid",
    classes_per_worker: int = 2,
    rng=None,
) -> PartitionedDataset:
    """Split ``dataset`` into ``n_workers`` shards.

    Parameters
    ----------
    strategy:
        ``"iid"`` — random equal-size shards (the paper's setting); or
        ``"label_skew"`` — each worker predominantly sees ``classes_per_worker``
        classes (federated-style heterogeneity).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if len(dataset) < n_workers:
        raise ValueError(f"cannot split {len(dataset)} samples across {n_workers} workers")
    gen = check_random_state(rng)

    if strategy == "iid":
        perm = gen.permutation(len(dataset))
        shards = [np.sort(s) for s in np.array_split(perm, n_workers)]
        return PartitionedDataset(dataset, shards)

    if strategy == "label_skew":
        if dataset.n_classes is None:
            raise ValueError("label_skew partitioning requires a classification dataset")
        labels = np.asarray(dataset.y, dtype=np.int64)
        n_classes = dataset.n_classes
        # Assign each worker a preferred subset of classes (wrapping round-robin),
        # then deal samples of each class to the workers that prefer it.
        preferred: list[set[int]] = []
        for w in range(n_workers):
            start = (w * classes_per_worker) % n_classes
            preferred.append({(start + j) % n_classes for j in range(classes_per_worker)})
        shards: list[list[int]] = [[] for _ in range(n_workers)]
        for c in range(n_classes):
            idx_c = np.flatnonzero(labels == c)
            gen.shuffle(idx_c)
            takers = [w for w in range(n_workers) if c in preferred[w]] or list(range(n_workers))
            for i, sample_idx in enumerate(idx_c):
                shards[takers[i % len(takers)]].append(int(sample_idx))
        # Guard against empty shards (possible when classes < workers): steal from the largest.
        for w in range(n_workers):
            while not shards[w]:
                donor = max(range(n_workers), key=lambda k: len(shards[k]))
                if donor == w or len(shards[donor]) <= 1:
                    raise ValueError("not enough samples to give every worker a non-empty shard")
                shards[w].append(shards[donor].pop())
        return PartitionedDataset(dataset, [np.sort(np.array(s, dtype=np.int64)) for s in shards])

    raise ValueError(f"unknown partition strategy {strategy!r}")
