"""Data substrate: synthetic datasets, per-worker partitioning, batch loading.

CIFAR-10/100 cannot be downloaded in this offline environment, so the
experiments use synthetic classification datasets whose difficulty (class
overlap, label noise, input dimensionality) is controllable.  What matters
for reproducing the paper's behaviour is the *gradient noise* produced by
mini-batch sampling over heterogeneous worker shards, which the synthetic
data exercises in exactly the same way.
"""

from repro.data.synthetic import (
    Dataset,
    make_gaussian_blobs,
    make_synth_cifar10,
    make_synth_cifar100,
    make_spirals,
    make_linear_regression,
)
from repro.data.partition import partition_dataset, PartitionedDataset
from repro.data.loader import BatchLoader
from repro.data.bank_loader import BankLoader

__all__ = [
    "Dataset",
    "make_gaussian_blobs",
    "make_synth_cifar10",
    "make_synth_cifar100",
    "make_spirals",
    "make_linear_regression",
    "partition_dataset",
    "PartitionedDataset",
    "BatchLoader",
    "BankLoader",
]
