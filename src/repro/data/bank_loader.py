"""Vectorized mini-batch sampling across all worker shards at once.

``BankLoader`` is the data half of the vectorized worker-bank backend: it
draws the next mini-batch of *every* worker in one call, returning stacked
``(m, B, ...)`` design matrices ready for the param-bank forward path.

Reproducibility is the hard requirement here: each worker's shard must see
exactly the sampling stream it would under its own :class:`BatchLoader`
(per-shard shuffle order, epoch wrap, per-worker RNG).  The loader therefore
keeps one ``BatchLoader`` per shard for the cheap index/RNG bookkeeping
(:meth:`BatchLoader.next_indices`) and vectorizes the expensive part — the
row gather — as a single fancy-index into one concatenated design matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.loader import BatchLoader
from repro.data.synthetic import Dataset

__all__ = ["BankLoader", "common_effective_batch"]


def common_effective_batch(shards: Sequence[Dataset], batch_size: int) -> int:
    """The one batch size every shard clips ``batch_size`` to, or ``ValueError``.

    :class:`BatchLoader` clips the requested batch to each shard's length;
    stacked sampling needs that clipped size to be *common* across shards.
    This is the single home of the rule — ``BankLoader`` enforces it at
    construction and the sharded backend pre-checks it in the parent (so an
    unstackable setup raises before any process is spawned).
    """
    effective = {min(batch_size, len(shard)) for shard in shards}
    if len(effective) > 1:
        raise ValueError(
            f"stacked sampling needs one common batch size, but the shards "
            f"clip batch_size={batch_size} to {sorted(effective)}"
        )
    return effective.pop()


class BankLoader:
    """Stacked cyclic mini-batch iterator over m worker shards.

    Parameters
    ----------
    shards:
        One :class:`Dataset` per worker.  All shards must share the feature
        shape (they are partitions of one parent dataset) and must support a
        common effective batch size.
    batch_size:
        Requested per-worker batch size; clipped per shard exactly as
        :class:`BatchLoader` does.  Shards small enough to clip to different
        effective sizes cannot be stacked and raise ``ValueError``.
    rngs:
        One RNG (or seed) per worker, consumed identically to handing each
        worker its own ``BatchLoader``.
    dtype:
        Optional dtype the stacked design matrix is stored (and therefore
        sampled) in — the entry point of the opt-in ``float32`` bank mode.
        ``None`` keeps the dataset's own dtype (the byte-identical default).
        Targets are never cast; class labels stay integral.
    """

    def __init__(
        self,
        shards: Sequence[Dataset],
        batch_size: int,
        rngs: Sequence | None = None,
        dtype=None,
    ):
        if not shards:
            raise ValueError("BankLoader needs at least one shard")
        if rngs is None:
            rngs = [None] * len(shards)
        if len(rngs) != len(shards):
            raise ValueError(f"{len(shards)} shards but {len(rngs)} RNG streams")
        common_effective_batch(shards, batch_size)
        self.loaders = [
            BatchLoader(shard, batch_size, rng=rng)
            for shard, rng in zip(shards, rngs)
        ]
        self.batch_size = self.loaders[0].batch_size
        self.n_workers = len(shards)
        # One concatenated design matrix so every round is a single gather.
        self._X = np.concatenate([shard.X for shard in shards], axis=0)
        if dtype is not None:
            self._X = self._X.astype(dtype, copy=False)
        self._y = np.concatenate([shard.y for shard in shards], axis=0)
        self._offsets = np.cumsum([0] + [len(shard) for shard in shards])[:-1]

    def next_batches(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(m, B, ...)`` inputs and ``(m, B, ...)`` targets for all workers."""
        rows = np.concatenate(
            [
                loader.next_indices() + offset
                for loader, offset in zip(self.loaders, self._offsets)
            ]
        )
        m, batch = self.n_workers, self.batch_size
        X = self._X[rows].reshape(m, batch, *self._X.shape[1:])
        y = self._y[rows].reshape(m, batch, *self._y.shape[1:])
        return X, y

    def __iter__(self):
        return self

    def __next__(self) -> tuple[np.ndarray, np.ndarray]:
        return self.next_batches()

    @property
    def epochs_completed(self) -> int:
        """Epochs completed by worker 0's stream (all shards stay in lockstep
        when they have equal sizes; they may drift by one otherwise)."""
        return self.loaders[0].epochs_completed
