"""Allow ``python -m repro --config <name>`` to run an experiment."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
