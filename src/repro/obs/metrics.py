"""The run-metrics registry: counters, gauges, histograms, one snapshot API.

Where the tracer answers *what happened when*, the metrics registry answers
*how much in total*: rounds run, bytes moved by the averaging collective,
how shard-RPC latencies distribute, how long workers wait for stragglers.
Emission sites use the module-level helpers (:func:`counter_inc`,
:func:`gauge_set`, :func:`observe`, :func:`observed`), which cost one
attribute read when no registry is active — the same zero-overhead-when-
disabled pattern as :func:`repro.utils.timer.profiled` and
:func:`repro.obs.tracer.span` — so the instrumentation stays in the
execution stack unconditionally.

:meth:`MetricsRegistry.snapshot` returns one JSON-compatible dict (sorted
keys all the way down) that :class:`~repro.utils.results.RunStore` and
:class:`~repro.sweep.store.ResultStore` persist alongside results.  Metric
values fall into two determinism classes: counts and virtual-time histograms
(``rounds_total``, ``straggler_wait_virtual_seconds``) are pure functions of
the seeded run, while wall-time histograms (``shard_rpc_seconds``) are not —
which is why sweep stores persist snapshots as a *sidecar* file outside the
byte-identity contract (see ``ResultStore.put_metrics``).

The kernel-plan cache is owned by :mod:`repro.nn.layers`; its counters are
bridged into every snapshot (``plan_cache_hits`` / ``plan_cache_misses``) so
one snapshot answers "did the im2col plans actually get reused?".
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import nullcontext

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_inc",
    "gauge_set",
    "observe",
    "observe_many",
    "observed",
]

#: Default histogram bucket upper bounds, in seconds: spans 10 µs to 100 s,
#: one decade per bucket, plus the implicit +inf overflow bucket.
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

#: Metrics the execution stack emits, pre-registered so every snapshot has
#: the same schema whether or not a given run exercised the metric.
STANDARD_METRICS = (
    ("counter", "rounds_total"),
    ("counter", "comm_rounds_total"),
    ("counter", "local_steps_total"),
    ("counter", "evals_total"),
    ("counter", "bytes_averaged_total"),
    # Sharded-transport accounting: state-plane payload bytes that crossed a
    # pickling Pipe versus bytes moved through the zero-copy shm plane.  The
    # shm transport's pipes carry only O(1) control tuples, so a healthy shm
    # run keeps bytes_over_pipe at zero while bytes_via_shm counts the bank.
    ("counter", "bytes_over_pipe"),
    ("counter", "bytes_via_shm"),
    ("counter", "sweep_cells_executed_total"),
    ("counter", "sweep_cells_cached_total"),
    ("counter", "sweep_cells_failed_total"),
    # Async/decentralized method family: gossip collectives run, async server
    # folds applied, workers dropped by the elastic straggler process.
    ("counter", "gossip_rounds_total"),
    ("counter", "async_applies_total"),
    ("counter", "worker_dropouts_total"),
    ("gauge", "workers"),
    # Post-mix disagreement of the gossip network (0 under exact averaging).
    ("gauge", "consensus_distance"),
    ("histogram", "shard_rpc_seconds"),
    # Wall-clock time of state gathers (sync_states/get_states/mean_state),
    # the phase the shm plane exists to accelerate.
    ("histogram", "shard_gather_seconds"),
    ("histogram", "straggler_wait_virtual_seconds"),
    # Per-applied-update staleness under the async parameter server: how many
    # server versions elapsed between a worker's pull and its push (a count,
    # so the second-scale default buckets double as small-integer bins).
    ("histogram", "staleness_updates"),
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount

    def to_dict(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are cumulative-style upper bounds (seconds by default); a sample
    lands in the first bucket whose bound is >= the value, overflowing into
    the implicit ``+inf`` bucket.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1: the +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        # First bucket whose bound is >= value; past the last bound lands in
        # the +inf overflow slot (index len(buckets)).
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        labels = [f"le_{b:g}" for b in self.buckets] + ["le_inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": dict(zip(labels, self.counts)),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named counters/gauges/histograms with one snapshot API.

    One registry is active per process at a time (``enable()`` / ``with
    MetricsRegistry() as m:``); emission sites use the module-level helpers
    so a disabled registry costs one attribute read.  The standard metric
    set (:data:`STANDARD_METRICS`) is pre-registered so snapshots have a
    stable schema; helpers auto-register unseen names with the kind the
    helper implies, so third-party components can emit without ceremony.
    """

    #: The process-wide active registry, or ``None`` (metrics disabled).
    _active: "MetricsRegistry | None" = None

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._prev: "MetricsRegistry | None" = None
        for kind, name in STANDARD_METRICS:
            self._register(name, kind)

    # -- activation ---------------------------------------------------------
    def enable(self) -> "MetricsRegistry":
        self._prev = MetricsRegistry._active
        MetricsRegistry._active = self
        return self

    def disable(self) -> "MetricsRegistry":
        # Restore whatever was active before enable(), so nested scopes
        # (a per-cell registry inside an outer run registry) unwind cleanly.
        if MetricsRegistry._active is self:
            MetricsRegistry._active = self._prev
        return self

    def __enter__(self) -> "MetricsRegistry":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    # -- registration and access --------------------------------------------
    def _register(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is not None:
            if self._kinds[name] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {self._kinds[name]}, "
                    f"not a {kind}"
                )
            return metric
        metric = _KINDS[kind]()
        self._metrics[name] = metric
        self._kinds[name] = kind
        return metric

    def counter(self, name: str) -> Counter:
        return self._register(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._register(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._register(name, "histogram")

    # -- snapshot ------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-compatible snapshot of every metric, plus bridged gauges.

        The kernel-plan cache counters from
        :func:`repro.nn.layers.kernel_plan_cache_stats` are read at snapshot
        time so the one dict answers both "what did the run do" and "did the
        hot-path caches work".
        """
        from repro.nn.layers import kernel_plan_cache_stats

        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._metrics):
            kind = self._kinds[name]
            value = self._metrics[name].to_dict()
            {"counter": counters, "gauge": gauges, "histogram": histograms}[kind][name] = value
        plan_stats = kernel_plan_cache_stats()
        gauges["plan_cache_hits"] = float(plan_stats["hits"])
        gauges["plan_cache_misses"] = float(plan_stats["misses"])
        gauges["plan_cache_conv_plans"] = float(plan_stats["conv_plans"])
        gauges["plan_cache_pool_plans"] = float(plan_stats["pool_plans"])
        return {
            "version": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(metrics={len(self._metrics)}, "
            f"active={MetricsRegistry._active is self})"
        )


# -- module-level emission helpers (no-ops while no registry is active) -------

def counter_inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` on the active registry, or do nothing."""
    registry = MetricsRegistry._active
    if registry is not None:
        registry.counter(name).inc(amount)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` on the active registry, or do nothing."""
    registry = MetricsRegistry._active
    if registry is not None:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` on the active registry."""
    registry = MetricsRegistry._active
    if registry is not None:
        registry.histogram(name).observe(value)


def observe_many(name: str, values) -> None:
    """Record every value of an iterable into histogram ``name``.

    The iteration only happens when a registry is active, so hot paths can
    pass per-worker arrays without paying for them while metrics are off.
    """
    registry = MetricsRegistry._active
    if registry is not None:
        histogram = registry.histogram(name)
        for value in values:
            histogram.observe(value)


class _ObservedScope:
    """Times a block on the wall clock and observes it into a histogram.

    The wall-clock read happens *here*, inside ``repro.obs`` — emission
    sites in DET002-scoped simulation paths (the sharded backend) never
    touch a clock themselves.
    """

    __slots__ = ("_name", "_t0")

    def __init__(self, name: str):
        self._name = name

    def __enter__(self) -> "_ObservedScope":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        registry = MetricsRegistry._active
        if registry is not None:
            registry.histogram(self._name).observe(time.perf_counter() - self._t0)


#: Shared disabled-path scope, same singleton pattern as ``profiled``.
_NULL_OBSERVED = nullcontext()


def observed(name: str):
    """Context manager observing the block's wall time into histogram ``name``.

    Returns a shared null scope while no registry is active, so wrapping hot
    paths costs one attribute read when metrics are off.
    """
    return _NULL_OBSERVED if MetricsRegistry._active is None else _ObservedScope(name)
