"""The frozen event-name registry behind every trace.

Traces are only diffable (``python -m repro.obs diff``) and only safe to
build tooling on if the set of event names is a *schema*, not a convention:
two runs of different code versions must still agree on what a ``"round"``
or a ``"shard_rpc"`` is.  Every name a :class:`~repro.obs.tracer.Tracer`
will accept therefore lives here, in one frozen set — enforced at runtime by
the tracer itself and statically by the ``OBS001`` analysis rule, which
cross-checks every ``span(...)``/``instant(...)`` call site in ``src/``
against this registry (the same machinery that keeps the bank-equivalence
matrix honest).

Adding an event type is deliberate: add the constant here, and every
consumer (summary tables, the Chrome exporter, the diff tool) picks it up.
"""

from __future__ import annotations

__all__ = [
    "EVENT_NAMES",
    "EXPERIMENT",
    "METHOD",
    "ROUND",
    "LOCAL_STEPS",
    "COMMUNICATE",
    "AVERAGE",
    "EVAL",
    "SHARD_RPC",
    "SWEEP_CELL",
    "PROFILE_OP",
    "GOSSIP_MIX",
    "ASYNC_APPLY",
    "WORKER_DROPOUT",
    "validate_event_name",
]

#: One full ``run_experiment`` invocation (all methods on one workload).
EXPERIMENT = "experiment"
#: One method's complete training run within an experiment.
METHOD = "method"
#: One PASGD round: τ local steps plus the averaging collective.
ROUND = "round"
#: The compute phase of a round: τ local steps at every worker.
LOCAL_STEPS = "local_steps"
#: The communication phase of a round (virtual clock: the sampled delay).
COMMUNICATE = "communicate"
#: The averaging arithmetic itself (wall clock; nested inside COMMUNICATE).
AVERAGE = "average"
#: One evaluation of the synchronized model (free in virtual time).
EVAL = "eval"
#: One parent-observed RPC round-trip to the sharded backend's pool.
SHARD_RPC = "shard_rpc"
#: One sweep-campaign cell, tagged with its content address.
SWEEP_CELL = "sweep_cell"
#: One aggregated per-op profiler row bridged into the trace at flush time.
PROFILE_OP = "profile_op"
#: One decentralized gossip-mixing collective (replaces AVERAGE's exact mean).
GOSSIP_MIX = "gossip_mix"
#: One staleness-weighted server-side fold of an arriving async update.
ASYNC_APPLY = "async_apply"
#: One elastic round in which at least one worker dropped out before averaging.
WORKER_DROPOUT = "worker_dropout"

#: Every event name a tracer will accept.  Frozen: tooling and the OBS001
#: analysis rule treat this as the trace schema.
EVENT_NAMES = frozenset({
    "experiment",
    "method",
    "round",
    "local_steps",
    "communicate",
    "average",
    "eval",
    "shard_rpc",
    "sweep_cell",
    "profile_op",
    "gossip_mix",
    "async_apply",
    "worker_dropout",
})


def validate_event_name(name: str) -> str:
    """Return ``name`` if registered, else raise with the full registry."""
    if name not in EVENT_NAMES:
        raise ValueError(
            f"unknown trace event name {name!r}; registered names: "
            f"{sorted(EVENT_NAMES)} (add new event types to repro.obs.events)"
        )
    return name
