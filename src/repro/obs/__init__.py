"""repro.obs — structured run telemetry.

Three layers over one event stream:

* :mod:`repro.obs.tracer` — typed span/instant events with dual
  virtual/wall timestamps, flushed to deterministic ``trace.jsonl``.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with one
  JSON-compatible snapshot, persisted by the run/sweep stores.
* :mod:`repro.obs.tooling` (and ``python -m repro.obs``) — summary tables,
  Chrome/Perfetto export, and trace diffing for equivalence triage.

All emission helpers are zero-overhead while disabled, so they live in the
execution stack unconditionally.
"""

from repro.obs.events import EVENT_NAMES, validate_event_name
from repro.obs.metrics import (
    MetricsRegistry,
    counter_inc,
    gauge_set,
    observe,
    observed,
)
from repro.obs.tooling import diff_traces, summarize_trace, summary_table, to_chrome_trace
from repro.obs.tracer import (
    WALL_FIELDS,
    Tracer,
    instant,
    read_trace,
    span,
    strip_wall_fields,
    trace_lines,
)

__all__ = [
    "EVENT_NAMES",
    "MetricsRegistry",
    "Tracer",
    "WALL_FIELDS",
    "counter_inc",
    "diff_traces",
    "gauge_set",
    "instant",
    "observe",
    "observed",
    "read_trace",
    "span",
    "strip_wall_fields",
    "summarize_trace",
    "summary_table",
    "to_chrome_trace",
    "trace_lines",
    "validate_event_name",
]
