"""Structured event tracing with dual virtual/wall timestamps.

The paper's whole argument is an error-*runtime* trade-off, so every span a
:class:`Tracer` records carries two clocks: the simulated
:class:`~repro.utils.timer.VirtualClock` (what the error-runtime frontier is
plotted against) and the real wall clock (what the reproduction actually
costs to run).  Where the two diverge — an averaging step that is cheap in
virtual time but slow in wall time, a shard RPC that blocks the parent — is
exactly what the tooling in :mod:`repro.obs.tooling` exists to surface.

Determinism contract: apart from the two wall-time fields (``wall_start``,
``wall_dur``), every byte of a flushed trace is a pure function of the
seeded run.  Event names come from the frozen registry in
:mod:`repro.obs.events` (checked at emit time, and statically by the OBS001
analysis rule); virtual timestamps come from the virtual clock; ``seq`` is
the in-process emission order; field values are run state (τ, round index,
labels, content addresses).  Two seeded runs therefore produce byte-identical
``trace.jsonl`` files modulo the wall fields — the property the
``python -m repro.obs diff`` triage tool and the test suite rely on.

Zero overhead when disabled: :func:`span` returns one shared ``nullcontext``
singleton and :func:`instant` is a single attribute read and return — the
same pattern as :func:`repro.utils.timer.profiled` — so emission sites stay
in place unconditionally, including in per-round hot paths.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from pathlib import Path

from repro.obs.events import EVENT_NAMES, PROFILE_OP
from repro.utils.timer import Profiler, VirtualClock

__all__ = [
    "Tracer",
    "WALL_FIELDS",
    "instant",
    "read_trace",
    "span",
    "strip_wall_fields",
    "trace_lines",
]

#: The only nondeterministic keys of an event record; everything else is a
#: pure function of the seeded run.  Tooling and tests strip these before
#: comparing traces.
WALL_FIELDS = ("wall_start", "wall_dur")


class _TraceSpan:
    """One ``with span(...):`` activation; records into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_clock", "_fields", "_v0", "_w0")

    def __init__(self, tracer: "Tracer", name: str, clock: "VirtualClock | None", fields: dict):
        self._tracer = tracer
        self._name = name
        self._clock = clock
        self._fields = fields

    def __enter__(self) -> "_TraceSpan":
        self._v0 = None if self._clock is None else self._clock.now
        self._w0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        w1 = time.perf_counter()
        tracer = self._tracer
        v0 = self._v0
        tracer._emit(
            name=self._name,
            kind="span",
            v_start=v0,
            v_dur=None if v0 is None else self._clock.now - v0,
            wall_start=self._w0 - tracer._wall0,
            wall_dur=w1 - self._w0,
            fields=self._fields,
        )


class Tracer:
    """Buffers typed span/instant events; flushes deterministic JSONL.

    One tracer is active per process at a time (``enable()`` / ``with
    Tracer() as t:``), and emission sites use the module-level :func:`span` /
    :func:`instant` helpers so a disabled tracer costs nothing.  Events are
    buffered in memory and written by :meth:`flush` as one sorted-keys JSON
    object per line — byte-stable across seeded runs apart from the
    ``wall_*`` fields (see :data:`WALL_FIELDS`).

    Parameters
    ----------
    profile:
        Also run a :class:`~repro.utils.timer.Profiler` while this tracer is
        enabled, and bridge its aggregated per-op rows into the trace as
        ``profile_op`` instant events at :meth:`finish`/:meth:`flush` time —
        so one ``--trace`` run yields both the event timeline and the
        kernel-level breakdown.  Shard processes never report into the
        parent's profiler; their cost appears as ``shard_rpc`` spans instead.
    """

    #: The process-wide active tracer, or ``None`` (tracing disabled).
    _active: "Tracer | None" = None

    def __init__(self, profile: bool = False):
        self._events: list[dict] = []
        self._seq = 0
        self._wall0 = time.perf_counter()
        self._profiler = Profiler() if profile else None
        self._profile_bridged = False
        self._prev: "Tracer | None" = None

    # -- activation ---------------------------------------------------------
    def enable(self) -> "Tracer":
        """Make this the active tracer; returns self."""
        self._prev = Tracer._active
        Tracer._active = self
        if self._profiler is not None:
            self._profiler.enable()
        return self

    def disable(self) -> "Tracer":
        """Stop recording, restoring whichever tracer was active before."""
        if Tracer._active is self:
            Tracer._active = self._prev
        if self._profiler is not None:
            self._profiler.disable()
        return self

    def __enter__(self) -> "Tracer":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    # -- emission -----------------------------------------------------------
    def _emit(
        self,
        name: str,
        kind: str,
        v_start: "float | None",
        v_dur: "float | None",
        wall_start: "float | None",
        wall_dur: "float | None",
        fields: dict,
    ) -> None:
        if name not in EVENT_NAMES:
            raise ValueError(
                f"unknown trace event name {name!r}; registered names: "
                f"{sorted(EVENT_NAMES)} (add new event types to repro.obs.events)"
            )
        self._events.append({
            "name": name,
            "kind": kind,
            "seq": self._seq,
            "v_start": v_start,
            "v_dur": v_dur,
            "wall_start": wall_start,
            "wall_dur": wall_dur,
            "fields": fields,
        })
        self._seq += 1

    def span(self, name: str, clock: "VirtualClock | None" = None, **fields) -> _TraceSpan:
        """Context manager recording a span event when the block exits.

        ``clock`` opts into virtual timestamps: ``v_start`` is the clock at
        entry and ``v_dur`` whatever the block advanced it by (0.0 for work
        that is free in simulated time, e.g. evaluation).
        """
        return _TraceSpan(self, name, clock, fields)

    def instant(self, name: str, clock: "VirtualClock | None" = None, **fields) -> None:
        """Record a zero-duration event at the current position."""
        self._emit(
            name=name,
            kind="instant",
            v_start=None if clock is None else clock.now,
            v_dur=None,
            wall_start=time.perf_counter() - self._wall0,
            wall_dur=None,
            fields=fields,
        )

    # -- output -------------------------------------------------------------
    def finish(self) -> list[dict]:
        """Bridge pending profiler rows (once) and return the event buffer.

        ``profile_op`` instants carry each slash-joined op path and its call
        count in ``fields`` (both deterministic) and the aggregated wall time
        in ``wall_dur`` — so the nondeterministic value lives in a wall field
        that :func:`strip_wall_fields` removes, keeping the whole stripped
        trace byte-stable.  Rows are emitted sorted by op path.
        """
        if self._profiler is not None and not self._profile_bridged:
            self._profile_bridged = True
            rows = self._profiler.to_dict()
            for op in sorted(rows):
                entry = rows[op]
                self._emit(
                    name=PROFILE_OP,
                    kind="instant",
                    v_start=None,
                    v_dur=None,
                    wall_start=None,
                    wall_dur=entry["total_seconds"],
                    fields={"op": op, "calls": entry["calls"]},
                )
        return self._events

    @property
    def events(self) -> list[dict]:
        """The raw buffered event records (no profiler bridge)."""
        return self._events

    @property
    def profiler(self) -> "Profiler | None":
        """The bridged per-op profiler, when constructed with ``profile=True``."""
        return self._profiler

    def to_jsonl(self) -> str:
        """The trace as JSONL: one sorted-keys JSON object per line."""
        return "".join(json.dumps(e, sort_keys=True) + "\n" for e in self.finish())

    def flush(self, path: "str | Path") -> Path:
        """Write the trace to ``path`` (atomically; parents created)."""
        import os

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(self.to_jsonl())
        os.replace(tmp, path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(events={len(self._events)}, active={Tracer._active is self})"


#: Shared disabled-path context manager — ``span`` must cost next to nothing
#: when no tracer is active, so it returns this singleton instead of
#: constructing anything (same pattern as ``repro.utils.timer.profiled``).
_NULL_SPAN = nullcontext()


def span(name: str, clock: "VirtualClock | None" = None, **fields):
    """Scope a span event under the active tracer, or do nothing."""
    tracer = Tracer._active
    return _NULL_SPAN if tracer is None else tracer.span(name, clock=clock, **fields)


def instant(name: str, clock: "VirtualClock | None" = None, **fields) -> None:
    """Record an instant event under the active tracer, or do nothing."""
    tracer = Tracer._active
    if tracer is not None:
        tracer.instant(name, clock=clock, **fields)


# -- reading traces back -----------------------------------------------------

def read_trace(path: "str | Path") -> list[dict]:
    """Parse a ``trace.jsonl`` file back into event records."""
    events = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}:{lineno}: not valid JSON ({err.msg})") from None
        if not isinstance(event, dict) or "name" not in event or "kind" not in event:
            raise ValueError(f"{path}:{lineno}: not a trace event record")
        events.append(event)
    return events


def strip_wall_fields(events: list[dict]) -> list[dict]:
    """Copies of ``events`` with the nondeterministic wall fields removed.

    What remains is byte-stable across seeded runs — the form the
    determinism tests and the ``diff`` tool compare.
    """
    return [{k: v for k, v in e.items() if k not in WALL_FIELDS} for e in events]


def trace_lines(events: list[dict]) -> str:
    """Serialize event records exactly as :meth:`Tracer.to_jsonl` would."""
    return "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
