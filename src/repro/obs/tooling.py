"""Trace tooling: summary tables, Chrome/Perfetto export, trace diffing.

Three consumers of the same ``trace.jsonl`` event records:

* :func:`summarize_trace` / :func:`summary_table` — per-event-type rollup
  (count, virtual vs wall totals) for a quick "where did this run spend its
  time" read in the terminal.
* :func:`to_chrome_trace` — the Chrome trace-event JSON format, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  Span events appear on
  two tracks: one positioned by the wall clock (what the process really
  did, ``shard_rpc`` stalls included) and one by the virtual clock (what
  the simulated cluster experienced) — scrolling between them is the
  fastest way to see where the two diverge.  ``profile_op`` rows from the
  bridged per-op profiler come along as counter-style args.
* :func:`diff_traces` — compares the deterministic projection of two traces
  (wall fields stripped, see :data:`~repro.obs.tracer.WALL_FIELDS`): first
  structural divergence, per-event-name count deltas, and a round-timeline
  comparison of virtual start/duration — the debugging primitive for
  backend-equivalence triage ("the sharded run's round 17 diverged; what
  happened before it?").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracer import strip_wall_fields

__all__ = [
    "TraceDiff",
    "diff_traces",
    "summarize_trace",
    "summary_table",
    "to_chrome_trace",
]


# -- summary ------------------------------------------------------------------

def summarize_trace(events: list[dict]) -> dict[str, dict]:
    """Per-event-name rollup: counts and virtual/wall duration totals.

    Returns ``{name: {"count", "spans", "instants", "v_total", "wall_total",
    "wall_mean"}}`` sorted by name; duration totals are ``None`` when no
    event of that name carried the corresponding clock.
    """
    rollup: dict[str, dict] = {}
    for event in events:
        entry = rollup.setdefault(
            event["name"],
            {"count": 0, "spans": 0, "instants": 0,
             "v_total": None, "wall_total": None, "wall_mean": None},
        )
        entry["count"] += 1
        entry["spans" if event["kind"] == "span" else "instants"] += 1
        if event.get("v_dur") is not None:
            entry["v_total"] = (entry["v_total"] or 0.0) + event["v_dur"]
        if event.get("wall_dur") is not None:
            entry["wall_total"] = (entry["wall_total"] or 0.0) + event["wall_dur"]
    for entry in rollup.values():
        if entry["wall_total"] is not None and entry["spans"]:
            entry["wall_mean"] = entry["wall_total"] / entry["spans"]
    return dict(sorted(rollup.items()))


def summary_table(events: list[dict]) -> str:
    """The :func:`summarize_trace` rollup as an aligned text table."""
    rollup = summarize_trace(events)
    if not rollup:
        return "(empty trace)"

    def fmt(value, spec: str) -> str:
        return "-" if value is None else format(value, spec)

    width = max(len("event"), *(len(name) for name in rollup))
    header = (
        f"{'event':<{width}}  {'count':>7}  {'spans':>7}  {'virtual (s)':>12}  "
        f"{'wall (s)':>10}  {'wall mean (ms)':>14}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in rollup.items():
        wall_mean_ms = None if entry["wall_mean"] is None else 1e3 * entry["wall_mean"]
        lines.append(
            f"{name:<{width}}  {entry['count']:>7}  {entry['spans']:>7}  "
            f"{fmt(entry['v_total'], '12.4f'):>12}  "
            f"{fmt(entry['wall_total'], '10.4f'):>10}  "
            f"{fmt(wall_mean_ms, '14.4f'):>14}"
        )
    return "\n".join(lines)


# -- Chrome trace-event export ------------------------------------------------

#: Synthetic pids for the two clock tracks of the Chrome export.
_WALL_PID = 1
_VIRTUAL_PID = 2


def to_chrome_trace(events: list[dict]) -> dict:
    """Convert trace events to the Chrome trace-event JSON format.

    Span events become complete (``"ph": "X"``) events — on the wall-clock
    track always, and on the virtual-clock track additionally whenever they
    carry virtual timestamps.  Instants become ``"ph": "i"``; ``profile_op``
    rows (no timestamps of their own) are placed at time 0 on the wall track
    with their aggregated stats in ``args``.  Timestamps are microseconds,
    per the format.
    """
    trace_events: list[dict] = [
        {"ph": "M", "pid": _WALL_PID, "tid": 0, "name": "process_name",
         "args": {"name": "wall clock"}},
        {"ph": "M", "pid": _VIRTUAL_PID, "tid": 0, "name": "process_name",
         "args": {"name": "virtual clock"}},
    ]
    for event in events:
        args = dict(event.get("fields", {}))
        args["seq"] = event.get("seq")
        name = event["name"]
        if event["kind"] == "span":
            if event.get("wall_start") is not None:
                trace_events.append({
                    "ph": "X", "pid": _WALL_PID, "tid": 0, "name": name,
                    "ts": 1e6 * event["wall_start"],
                    "dur": 1e6 * (event.get("wall_dur") or 0.0),
                    "args": args,
                })
            if event.get("v_start") is not None:
                trace_events.append({
                    "ph": "X", "pid": _VIRTUAL_PID, "tid": 0, "name": name,
                    "ts": 1e6 * event["v_start"],
                    "dur": 1e6 * (event.get("v_dur") or 0.0),
                    "args": args,
                })
        else:
            wall_start = event.get("wall_start")
            # profile_op rows keep their aggregated wall time in wall_dur
            # (a strippable wall field); surface it in the viewer's args.
            if event.get("wall_dur") is not None:
                args["total_seconds"] = event["wall_dur"]
            trace_events.append({
                "ph": "i", "pid": _WALL_PID, "tid": 0, "name": name, "s": "g",
                "ts": 0.0 if wall_start is None else 1e6 * wall_start,
                "args": args,
            })
            if event.get("v_start") is not None:
                trace_events.append({
                    "ph": "i", "pid": _VIRTUAL_PID, "tid": 0, "name": name,
                    "s": "g", "ts": 1e6 * event["v_start"], "args": args,
                })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# -- diff ---------------------------------------------------------------------

@dataclass
class TraceDiff:
    """Outcome of :func:`diff_traces` on two traces' deterministic parts."""

    #: Event counts (a vs b) per event name, only where they differ.
    count_deltas: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Index of the first event whose deterministic record differs, with the
    #: two records (``None`` past the shorter trace's end).
    first_divergence: "tuple[int, dict | None, dict | None] | None" = None
    #: Per-round virtual-timeline mismatches: ``(round_index, a, b)`` where
    #: a/b are ``(v_start, v_dur)`` or ``None`` for a missing round.
    round_mismatches: list = field(default_factory=list)
    lengths: tuple = (0, 0)

    @property
    def identical(self) -> bool:
        """True when the traces agree on everything but wall time."""
        return (
            self.first_divergence is None
            and not self.count_deltas
            and not self.round_mismatches
        )

    def summary(self) -> str:
        if self.identical:
            return (
                f"traces identical modulo wall time "
                f"({self.lengths[0]} events)"
            )
        lines = [f"traces differ: {self.lengths[0]} vs {self.lengths[1]} events"]
        for name, (na, nb) in sorted(self.count_deltas.items()):
            lines.append(f"  count[{name}]: {na} vs {nb}")
        if self.first_divergence is not None:
            index, ea, eb = self.first_divergence
            lines.append(f"  first divergence at event {index}:")
            lines.append(f"    a: {'<end of trace>' if ea is None else json.dumps(ea, sort_keys=True)}")
            lines.append(f"    b: {'<end of trace>' if eb is None else json.dumps(eb, sort_keys=True)}")
        for round_index, ta, tb in self.round_mismatches[:10]:
            lines.append(
                f"  round {round_index}: virtual (start, dur) "
                f"{ta if ta is not None else '<missing>'} vs "
                f"{tb if tb is not None else '<missing>'}"
            )
        if len(self.round_mismatches) > 10:
            lines.append(
                f"  ... {len(self.round_mismatches) - 10} more round mismatch(es)"
            )
        return "\n".join(lines)


def _round_timeline(events: list[dict]) -> dict[int, tuple]:
    """``{round_index: (v_start, v_dur)}`` from a trace's ``round`` spans."""
    timeline = {}
    for event in events:
        if event["name"] == "round" and event["kind"] == "span":
            timeline[event["fields"].get("round", len(timeline) + 1)] = (
                event.get("v_start"),
                event.get("v_dur"),
            )
    return timeline


def diff_traces(events_a: list[dict], events_b: list[dict]) -> TraceDiff:
    """Compare two traces' deterministic projections (wall fields stripped).

    Backend-equivalence triage: two seeded runs that should be byte-identical
    (e.g. vectorized vs a re-run, or two sharded layouts) must produce
    identical deterministic traces; when they do not, the first divergence
    and the round-timeline mismatches point at *when* the runs parted ways.
    """
    a = strip_wall_fields(events_a)
    b = strip_wall_fields(events_b)
    diff = TraceDiff(lengths=(len(a), len(b)))

    counts_a: dict[str, int] = {}
    counts_b: dict[str, int] = {}
    for event in a:
        counts_a[event["name"]] = counts_a.get(event["name"], 0) + 1
    for event in b:
        counts_b[event["name"]] = counts_b.get(event["name"], 0) + 1
    for name in sorted(set(counts_a) | set(counts_b)):
        na, nb = counts_a.get(name, 0), counts_b.get(name, 0)
        if na != nb:
            diff.count_deltas[name] = (na, nb)

    for index in range(max(len(a), len(b))):
        ea = a[index] if index < len(a) else None
        eb = b[index] if index < len(b) else None
        if ea != eb:
            diff.first_divergence = (index, ea, eb)
            break

    timeline_a = _round_timeline(a)
    timeline_b = _round_timeline(b)
    for round_index in sorted(set(timeline_a) | set(timeline_b)):
        ta = timeline_a.get(round_index)
        tb = timeline_b.get(round_index)
        if ta != tb:
            diff.round_mismatches.append((round_index, ta, tb))
    return diff
