"""``python -m repro.obs`` — trace tooling from the command line.

Three verbs over ``trace.jsonl`` files produced by ``--trace``:

* ``summary TRACE`` — per-event-type rollup table.
* ``export TRACE --format chrome [-o OUT]`` — Chrome/Perfetto trace JSON.
* ``diff A B`` — compare two traces' deterministic projections; exits 0 when
  identical modulo wall time, 1 when they differ.

Exit codes: 0 success / traces identical, 1 traces differ, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.tooling import diff_traces, summary_table, to_chrome_trace
from repro.obs.tracer import read_trace

__all__ = ["main"]


def _load(path: str) -> list[dict]:
    try:
        return read_trace(path)
    except FileNotFoundError:
        raise SystemExit(f"repro.obs: trace file not found: {path}")
    except ValueError as err:
        raise SystemExit(f"repro.obs: {err}")


def _cmd_summary(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    print(f"trace: {args.trace} ({len(events)} events)")
    print(summary_table(events))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    document = to_chrome_trace(events)
    payload = json.dumps(document, sort_keys=True, indent=2) + "\n"
    if args.output is None:
        sys.stdout.write(payload)
    else:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(payload)
        print(
            f"wrote {len(document['traceEvents'])} trace events to {output} "
            f"(load in chrome://tracing or https://ui.perfetto.dev)"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_traces(_load(args.trace_a), _load(args.trace_b))
    print(diff.summary())
    return 0 if diff.identical else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, export, and diff repro trace.jsonl files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="per-event-type rollup table")
    p_summary.add_argument("trace", help="path to a trace.jsonl file")
    p_summary.set_defaults(func=_cmd_summary)

    p_export = sub.add_parser("export", help="convert a trace for external viewers")
    p_export.add_argument("trace", help="path to a trace.jsonl file")
    p_export.add_argument(
        "--format", choices=("chrome",), default="chrome",
        help="output format (chrome: Chrome trace-event / Perfetto JSON)",
    )
    p_export.add_argument(
        "-o", "--output", default=None,
        help="write here instead of stdout (parents created)",
    )
    p_export.set_defaults(func=_cmd_export)

    p_diff = sub.add_parser(
        "diff", help="compare two traces' deterministic projections",
    )
    p_diff.add_argument("trace_a", help="first trace.jsonl")
    p_diff.add_argument("trace_b", help="second trace.jsonl")
    p_diff.set_defaults(func=_cmd_diff)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as err:
        if isinstance(err.code, str):
            print(err.code, file=sys.stderr)
            return 2
        raise
