"""Random-state handling utilities.

Every stochastic component in the library (delay distributions, data
generators, mini-batch samplers, optimizers with noise injection) accepts
either an integer seed, a :class:`numpy.random.Generator`, or ``None``.
``check_random_state`` normalizes the three into a ``Generator`` so that
experiments are reproducible end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

__all__ = ["check_random_state", "set_global_seed", "SeedSequence"]


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``seed`` to a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if seed is None:
        return np.random.default_rng()  # repro: ignore[DET001] documented entropy fallback for seed=None
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))  # repro: ignore[DET001] this IS the sanctioned construction site
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def set_global_seed(seed: int) -> None:
    """Seed Python's ``random`` and NumPy's legacy global RNG.

    Library code never relies on global state, but examples and benchmarks
    call this once at startup so that any incidental use of the global RNG is
    reproducible too.
    """
    random.seed(seed)  # repro: ignore[DET001] global-seed helper for examples/benchmarks by design
    np.random.seed(seed % (2**32))  # repro: ignore[DET001] global-seed helper for examples/benchmarks by design


@dataclass
class SeedSequence:
    """Deterministically spawn independent child seeds from a root seed.

    Used to give every worker in a simulated cluster its own independent
    stream while keeping the whole experiment reproducible from one root.

    Examples
    --------
    >>> seq = SeedSequence(123)
    >>> a = seq.spawn()
    >>> b = seq.spawn()
    >>> a != b
    True
    """

    root: int
    _counter: int = field(default=0, init=False)

    def spawn(self) -> int:
        """Return the next child seed."""
        self._counter += 1
        # SplitMix64-style mixing keeps children statistically independent.
        z = (self.root + 0x9E3779B97F4A7C15 * self._counter) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return int(z ^ (z >> 31)) & 0x7FFFFFFF

    def generator(self) -> np.random.Generator:
        """Spawn a child seed and wrap it in a fresh ``Generator``."""
        return np.random.default_rng(self.spawn())  # repro: ignore[DET001] seeded from spawn(); sanctioned site
