"""Small helpers shared by the command-line entry points."""

from __future__ import annotations

import argparse
import ast

__all__ = ["key_value_parser"]


def key_value_parser(flag: str):
    """An argparse ``type=`` callable parsing ``key=value`` pairs.

    Values parse as Python literals with a plain-string fallback, so
    ``tau=4`` yields an int and ``delay=pareto`` a string — the one
    convention shared by ``--set`` (main CLI) and ``--where`` (sweep CLI).
    ``flag`` only names the option in the error message.
    """

    def parse(pair: str) -> tuple[str, object]:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise argparse.ArgumentTypeError(f"{flag} expects key=value, got {pair!r}")
        try:
            value: object = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        return key, value

    return parse
