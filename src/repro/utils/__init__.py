"""Shared utilities: seeding, structured results, logging, and timing."""

from repro.utils.seeding import SeedSequence, check_random_state, set_global_seed
from repro.utils.results import MetricPoint, RunRecord, RunStore
from repro.utils.timer import Stopwatch, VirtualClock
from repro.utils.logging import configure_logging, get_logger, log_context

__all__ = [
    "SeedSequence",
    "check_random_state",
    "set_global_seed",
    "MetricPoint",
    "RunRecord",
    "RunStore",
    "Stopwatch",
    "VirtualClock",
    "configure_logging",
    "get_logger",
    "log_context",
]
