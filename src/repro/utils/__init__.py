"""Shared utilities: seeding, structured results, logging, and timing."""

from repro.utils.seeding import SeedSequence, check_random_state, set_global_seed
from repro.utils.results import MetricPoint, RunRecord, RunStore
from repro.utils.timer import Stopwatch, VirtualClock
from repro.utils.logging import get_logger

__all__ = [
    "SeedSequence",
    "check_random_state",
    "set_global_seed",
    "MetricPoint",
    "RunRecord",
    "RunStore",
    "Stopwatch",
    "VirtualClock",
    "get_logger",
]
