"""Thin logging wrapper so all library components share one configuration.

Two output modes share one installed handler: the human-readable default,
and a structured JSON mode (``configure_logging(json_mode=True)``) that
emits one JSON object per line — ``{"logger", "level", "message", "fields"}``
— for log shippers and the test suite.  ``fields`` carries the ambient
key/values bound with :func:`log_context`, a contextvar-based scope so
nested contexts stack and concurrent tasks do not leak fields into each
other::

    with log_context(cell="a1b2c3", backend="sharded"):
        logger.info("executing")   # fields: {"cell": ..., "backend": ...}
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
from contextlib import contextmanager

__all__ = ["get_logger", "configure_logging", "log_context"]

_ROOT_NAME = "repro"
_handler: "logging.Handler | None" = None

#: Ambient structured-log fields, bound with :func:`log_context`.
_log_fields: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_log_fields", default={}
)

_TEXT_FORMAT = ("[%(asctime)s] %(name)s %(levelname)s: %(message)s", "%H:%M:%S")


class _JsonFormatter(logging.Formatter):
    """One sorted-keys JSON object per record, ambient fields included."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(
            {
                "logger": record.name,
                "level": record.levelname,
                "message": record.getMessage(),
                "fields": _log_fields.get(),
            },
            sort_keys=True,
            default=str,
        )


def configure_logging(
    level: int = logging.INFO, stream=None, json_mode: bool = False
) -> None:
    """Install a single stream handler on the library's root logger.

    Safe to call multiple times: exactly one handler is ever installed, and
    repeat calls re-apply ``level`` (to the logger *and* the handler) and
    ``json_mode`` to it, so later calls genuinely reconfigure rather than
    being ignored.  ``stream`` only takes effect on the first call (the
    handler keeps the stream it was created with).
    """
    global _handler
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if _handler is None:
        _handler = logging.StreamHandler(stream or sys.stderr)
        logger.addHandler(_handler)
    _handler.setLevel(level)
    _handler.setFormatter(
        _JsonFormatter() if json_mode else logging.Formatter(*_TEXT_FORMAT)
    )


@contextmanager
def log_context(**fields):
    """Bind structured fields to every log record emitted in this scope.

    Fields appear in JSON-mode output under ``"fields"``; nested contexts
    merge (inner keys win) and unwind on exit.  Contextvar-backed, so
    concurrently running tasks each see only their own bindings.
    """
    token = _log_fields.set({**_log_fields.get(), **fields})
    try:
        yield
    finally:
        _log_fields.reset(token)


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the library root namespace."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
