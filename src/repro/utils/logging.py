"""Thin logging wrapper so all library components share one configuration."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"
_configured = False


def configure_logging(level: int = logging.INFO, stream=None) -> None:
    """Install a single stream handler on the library's root logger.

    Safe to call multiple times; only the first call installs a handler.
    """
    global _configured
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
        _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the library root namespace."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
