"""Wall-clock accounting: real stopwatches and the simulated virtual clock.

The paper's central object of study is *error versus wall-clock time*.  In
this reproduction the wall clock of the simulated cluster is a
:class:`VirtualClock` advanced by the delay model (``repro.runtime``): each
local gradient step advances it by a sampled compute time, each averaging
step by a sampled communication delay.  ``Stopwatch`` measures real process
time for the harness itself (used by the pytest-benchmark targets).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "VirtualClock"]


@dataclass
class Stopwatch:
    """Simple cumulative real-time stopwatch based on ``perf_counter``."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, init=False)

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class VirtualClock:
    """Monotone simulated wall clock measured in seconds.

    The clock only moves forward; ``advance`` rejects negative increments so
    that a buggy delay distribution cannot silently rewind time.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)
        self._n_advances = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def n_advances(self) -> int:
        """Number of times the clock has been advanced."""
        return self._n_advances

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative duration {dt}")
        self._now += float(dt)
        self._n_advances += 1
        return self._now

    def reset(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)
        self._n_advances = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.4f}, advances={self._n_advances})"
