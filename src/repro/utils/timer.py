"""Wall-clock accounting: stopwatches, the per-op profiler, and virtual time.

The paper's central object of study is *error versus wall-clock time*.  In
this reproduction the wall clock of the simulated cluster is a
:class:`VirtualClock` advanced by the delay model (``repro.runtime``): each
local gradient step advances it by a sampled compute time, each averaging
step by a sampled communication delay.  ``Stopwatch`` measures real process
time for the harness itself (used by the pytest-benchmark targets), and
:class:`Profiler` breaks real time down per operation: hot paths (conv
kernels, the fused optimizer step, the averaging collective, shard RPC) wrap
themselves in :func:`profiled` scopes, which cost one dict lookup while no
profiler is active and record nested wall-time totals while one is.

Real-time reads live in this module *only*: the DET002 linter rule bans
``perf_counter`` and friends everywhere else in the simulation paths, so
trajectories and content addresses can never depend on when they ran.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

__all__ = ["Profiler", "Stopwatch", "VirtualClock", "profiled"]


@dataclass
class Stopwatch:
    """Simple cumulative real-time stopwatch based on ``perf_counter``."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, init=False)

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()  # repro: ignore[DET002] real-time stopwatch for the harness itself
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at  # repro: ignore[DET002] real-time stopwatch for the harness itself
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _Scope:
    """One ``with profiled(op):`` activation; records into its profiler."""

    __slots__ = ("_profiler", "_op", "_t0")

    def __init__(self, profiler: "Profiler", op: str):
        self._profiler = profiler
        self._op = op

    def __enter__(self) -> "_Scope":
        stack = self._profiler._stack
        stack.append(f"{stack[-1]}/{self._op}" if stack else self._op)
        self._t0 = time.perf_counter()  # repro: ignore[DET002] the profiler is the sanctioned real-time reader
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._t0  # repro: ignore[DET002] the profiler is the sanctioned real-time reader
        path = self._profiler._stack.pop()
        with self._profiler._lock:
            stats = self._profiler._stats
            entry = stats.get(path)
            if entry is None:
                stats[path] = [1, dt]
            else:
                entry[0] += 1
                entry[1] += dt


class Profiler:
    """Per-op wall-time profiler with nested scopes.

    Hot paths mark themselves with ``with profiled("conv2d.bank_forward"):``
    — a no-op returning a shared ``nullcontext`` unless a profiler is active.
    Scopes nest: an op recorded inside another scope accumulates under the
    slash-joined path (``local_period/conv2d.bank_forward``), so the report
    separates e.g. forward-pass conv time from the same kernel run during
    evaluation.  Activate with :meth:`enable` (or ``with Profiler() as p:``),
    then read :meth:`table` / :meth:`to_dict` / :meth:`to_json`.

    One profiler is active per process at a time; shard processes of the
    sharded backend therefore do not report into the parent's profiler — the
    parent's ``shard_rpc.*`` scopes measure request/reply round-trips, which
    is the quantity the parent can actually act on.

    Thread safety: the nesting stack is thread-local (the in-process sharded
    transport drives its shard servers on a thread pool, and each thread's
    scopes must nest under that thread's own path, never a sibling's) while
    the stats table is shared under a lock, so concurrent scopes accumulate
    into one report.  Both costs are paid only while a profiler is active —
    the disabled path is still the shared ``nullcontext``.
    """

    #: The process-wide active profiler, or ``None`` (profiling disabled).
    _active: "Profiler | None" = None

    def __init__(self):
        self._stats: dict[str, list] = {}  # path -> [calls, total_seconds]
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def _stack(self) -> list:
        """This thread's scope-nesting stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- activation ---------------------------------------------------------
    def enable(self) -> "Profiler":
        """Make this the active profiler; returns self."""
        Profiler._active = self
        return self

    def disable(self) -> "Profiler":
        """Stop recording (only if this profiler is the active one)."""
        if Profiler._active is self:
            Profiler._active = None
        return self

    def __enter__(self) -> "Profiler":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    def record(self, op: str) -> _Scope:
        """Context manager timing one ``op`` activation (honors nesting)."""
        return _Scope(self, op)

    # -- reporting ----------------------------------------------------------
    def to_dict(self) -> dict:
        """``{op_path: {"calls": n, "total_seconds": t, "mean_seconds": t/n}}``,
        sorted by total time descending."""
        return {
            path: {
                "calls": calls,
                "total_seconds": total,
                "mean_seconds": total / calls,
            }
            for path, (calls, total) in sorted(
                self._stats.items(), key=lambda item: -item[1][1]
            )
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), indent=2, **kwargs)

    def table(self) -> str:
        """Aligned per-op text table sorted by total time descending."""
        rows = self.to_dict()
        if not rows:
            return "(no profiled operations recorded)"
        grand = sum(entry["total_seconds"] for entry in rows.values())
        width = max(len("op"), *(len(path) for path in rows))
        header = f"{'op':<{width}}  {'calls':>8}  {'total (s)':>10}  {'mean (ms)':>10}  {'%':>6}"
        lines = [header, "-" * len(header)]
        for path, entry in rows.items():
            share = 100.0 * entry["total_seconds"] / grand if grand else 0.0
            lines.append(
                f"{path:<{width}}  {entry['calls']:>8}  {entry['total_seconds']:>10.4f}  "
                f"{1e3 * entry['mean_seconds']:>10.4f}  {share:>6.1f}"
            )
        return "\n".join(lines)


#: Shared disabled-path context manager: ``profiled`` must cost next to
#: nothing when no profiler is active, so it returns this singleton instead
#: of constructing anything.
_NULL_SCOPE = nullcontext()


def profiled(op: str):
    """Scope ``op`` under the active profiler, or do nothing.

    The disabled path is one attribute read and a return — cheap enough to
    leave in per-step hot paths (layer kernels, the optimizer step)
    unconditionally.
    """
    profiler = Profiler._active
    return _NULL_SCOPE if profiler is None else profiler.record(op)


class VirtualClock:
    """Monotone simulated wall clock measured in seconds.

    The clock only moves forward; ``advance`` rejects negative increments so
    that a buggy delay distribution cannot silently rewind time.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)
        self._n_advances = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def n_advances(self) -> int:
        """Number of times the clock has been advanced."""
        return self._n_advances

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative duration {dt}")
        self._now += float(dt)
        self._n_advances += 1
        return self._now

    def reset(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)
        self._n_advances = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.4f}, advances={self._n_advances})"
