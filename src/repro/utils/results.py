"""Structured experiment results.

Every training run in the library produces a :class:`RunRecord`: a named
sequence of :class:`MetricPoint` samples indexed by iteration count *and* by
(simulated) wall-clock time, mirroring the paper's insistence on looking at
both x-axes.  :class:`RunStore` collects records from a sweep and provides
the queries the evaluation section needs ("time to reach loss X", "best test
accuracy within a time budget").
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "MetricPoint",
    "RunRecord",
    "RunStore",
    "encode_json_floats",
    "decode_json_floats",
]

#: Tagged sentinels for the three non-finite floats.  RFC 8259 has no NaN or
#: Infinity literal, but Python's default ``json.dumps(allow_nan=True)``
#: writes them anyway — producing files no conforming parser accepts.  Every
#: on-disk store therefore encodes non-finite floats as these strings (and
#: serializes with ``allow_nan=False`` so a regression fails loudly instead
#: of silently writing an invalid file); reads decode them symmetrically.
_NONFINITE_ENCODE = {math.inf: "Infinity", -math.inf: "-Infinity"}
_NONFINITE_DECODE = {
    "NaN": math.nan,
    "Infinity": math.inf,
    "-Infinity": -math.inf,
}


def encode_json_floats(value: Any) -> Any:
    """Recursively replace non-finite floats with tagged sentinel strings.

    The inverse of :func:`decode_json_floats`; containers are rebuilt (the
    input is never mutated), finite values pass through untouched.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return _NONFINITE_ENCODE[value]
        return value
    if isinstance(value, dict):
        return {key: encode_json_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_json_floats(item) for item in value]
    return value


def decode_json_floats(value: Any) -> Any:
    """Recursively replace sentinel strings with the floats they encode.

    Also maps literal ``NaN``/``Infinity`` tokens that Python's permissive
    parser produced from *pre-sentinel* files (they arrive as float objects
    and pass through unchanged), so old stores stay readable.
    """
    if isinstance(value, str):
        return _NONFINITE_DECODE.get(value, value)
    if isinstance(value, dict):
        return {key: decode_json_floats(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_json_floats(item) for item in value]
    return value


@dataclass(frozen=True)
class MetricPoint:
    """One logged sample of training state.

    Attributes
    ----------
    iteration:
        Number of local iterations completed so far (the paper's ``k``).
    wall_time:
        Simulated wall-clock time in seconds at which the sample was taken.
    train_loss:
        Training loss of the synchronized (averaged) model.
    test_accuracy:
        Test accuracy of the synchronized model, or ``nan`` if not evaluated.
    tau:
        Communication period in force when the sample was taken.
    lr:
        Learning rate in force when the sample was taken.
    extra:
        Free-form additional scalars (e.g. local-model accuracy).
    """

    iteration: int
    wall_time: float
    train_loss: float
    test_accuracy: float = float("nan")
    tau: int = 1
    lr: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class RunRecord:
    """A complete training run: configuration plus its metric trajectory."""

    name: str
    config: dict[str, Any] = field(default_factory=dict)
    points: list[MetricPoint] = field(default_factory=list)

    def log(self, point: MetricPoint) -> None:
        """Append a metric point, enforcing monotone iteration/wall-time order."""
        if self.points:
            last = self.points[-1]
            if point.iteration < last.iteration:
                raise ValueError(
                    f"iterations must be non-decreasing: {point.iteration} < {last.iteration}"
                )
            if point.wall_time < last.wall_time - 1e-12:
                raise ValueError(
                    f"wall_time must be non-decreasing: {point.wall_time} < {last.wall_time}"
                )
        self.points.append(point)

    # -- column accessors -------------------------------------------------
    @property
    def iterations(self) -> list[int]:
        return [p.iteration for p in self.points]

    @property
    def wall_times(self) -> list[float]:
        return [p.wall_time for p in self.points]

    @property
    def train_losses(self) -> list[float]:
        return [p.train_loss for p in self.points]

    @property
    def test_accuracies(self) -> list[float]:
        return [p.test_accuracy for p in self.points]

    @property
    def taus(self) -> list[int]:
        return [p.tau for p in self.points]

    # -- queries -----------------------------------------------------------
    def final_loss(self) -> float:
        """Training loss at the last logged point."""
        if not self.points:
            raise ValueError("run has no logged points")
        return self.points[-1].train_loss

    def best_loss(self) -> float:
        """Minimum training loss over the run."""
        if not self.points:
            raise ValueError("run has no logged points")
        return min(p.train_loss for p in self.points)

    def best_accuracy(self, time_budget: float | None = None) -> float:
        """Best test accuracy, optionally restricted to ``wall_time <= time_budget``."""
        accs = [
            p.test_accuracy
            for p in self.points
            if not math.isnan(p.test_accuracy)
            and (time_budget is None or p.wall_time <= time_budget)
        ]
        if not accs:
            return float("nan")
        return max(accs)

    def time_to_loss(self, target_loss: float) -> float:
        """First simulated wall-clock time at which ``train_loss <= target_loss``.

        Returns ``inf`` if the run never reaches the target.  This is the
        quantity behind every "X× less time" claim in the paper.
        """
        for p in self.points:
            if p.train_loss <= target_loss:
                return p.wall_time
        return float("inf")

    def iterations_to_loss(self, target_loss: float) -> float:
        """First iteration count at which ``train_loss <= target_loss`` (inf if never)."""
        for p in self.points:
            if p.train_loss <= target_loss:
                return float(p.iteration)
        return float("inf")

    def loss_at_time(self, t: float) -> float:
        """Training loss of the last point logged at or before simulated time ``t``."""
        best = float("nan")
        for p in self.points:
            if p.wall_time <= t:
                best = p.train_loss
            else:
                break
        return best

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "config": self.config,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        rec = cls(name=data["name"], config=dict(data.get("config", {})))
        for pd in data.get("points", []):
            extra = dict(pd.get("extra", {}))
            rec.points.append(
                MetricPoint(
                    iteration=int(pd["iteration"]),
                    wall_time=float(pd["wall_time"]),
                    train_loss=float(pd["train_loss"]),
                    test_accuracy=float(pd.get("test_accuracy", float("nan"))),
                    tau=int(pd.get("tau", 1)),
                    lr=float(pd.get("lr", 0.0)),
                    extra=extra,
                )
            )
        return rec


class RunStore:
    """An in-memory (and optionally on-disk) collection of :class:`RunRecord`.

    A metrics snapshot (see ``repro.obs.metrics.MetricsRegistry.snapshot``)
    can be attached via :attr:`metrics`; it rides along through
    :meth:`to_payload`/:meth:`from_payload` but only appears in the payload
    when actually set, so stores without telemetry serialize exactly as they
    always have (golden fixtures and content-addressed sweep cells included).
    """

    def __init__(self) -> None:
        self._runs: dict[str, RunRecord] = {}
        #: Optional metrics snapshot for the runs in this store.
        self.metrics: dict[str, Any] | None = None

    def add(self, record: RunRecord) -> None:
        if record.name in self._runs:
            raise KeyError(f"run {record.name!r} already stored")
        self._runs[record.name] = record

    def get(self, name: str) -> RunRecord:
        return self._runs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._runs

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._runs.values())

    def names(self) -> list[str]:
        return list(self._runs)

    def speedup(self, fast: str, slow: str, target_loss: float) -> float:
        """Wall-clock speedup of run ``fast`` over run ``slow`` at a target loss.

        Mirrors the paper's headline metric, e.g. "ADACOMM takes 3x less time
        than fully synchronous SGD to reach the same training loss".
        Returns ``nan`` if either run never reaches the target.
        """
        t_fast = self._runs[fast].time_to_loss(target_loss)
        t_slow = self._runs[slow].time_to_loss(target_loss)
        if not (math.isfinite(t_fast) and math.isfinite(t_slow)) or t_fast <= 0:
            return float("nan")
        return t_slow / t_fast

    def to_payload(self) -> dict[str, Any]:
        """JSON-compatible dict of the whole store (see :meth:`from_payload`)."""
        payload: dict[str, Any] = {"runs": [r.to_dict() for r in self._runs.values()]}
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RunStore":
        """Rebuild a store from :meth:`to_payload` output."""
        store = cls()
        for rd in payload.get("runs", []):
            store.add(RunRecord.from_dict(rd))
        store.metrics = payload.get("metrics")
        return store

    def save(self, path: str | Path) -> None:
        """Serialize the whole store to a strictly RFC 8259 compliant JSON file.

        Non-finite floats (unevaluated ``test_accuracy`` is ``nan``;
        ``time_to_loss`` summaries can be ``inf``) are stored as tagged
        sentinel strings via :func:`encode_json_floats` — the default
        ``allow_nan=True`` would emit bare ``NaN``/``Infinity`` tokens that
        no conforming JSON parser accepts.
        """
        Path(path).write_text(
            json.dumps(
                encode_json_floats(self.to_payload()),
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunStore":
        return cls.from_payload(decode_json_floats(json.loads(Path(path).read_text())))

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "RunStore":
        store = cls()
        for r in records:
            store.add(r)
        return store
