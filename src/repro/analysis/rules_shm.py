"""SHM001: shared-memory segments must have a reachable teardown path.

``multiprocessing.shared_memory.SharedMemory(create=True)`` allocates a
named POSIX segment under ``/dev/shm`` that outlives the creating
process unless ``unlink()`` is called — a leaked segment survives even
interpreter exit and silently eats the (often small) ``/dev/shm``
tmpfs until the host is rebooted.  The repro transport layer
(``repro.distributed.transport``) therefore requires every owner of a
created segment to expose *both* halves of the teardown protocol:
``close()`` (drop this process's mapping) **and** ``unlink()`` (remove
the name from the filesystem).

This rule statically cross-checks that contract, in the same spirit as
``BANK001``: any class in ``src/`` whose body constructs
``SharedMemory(create=True)`` must also contain at least one
``.close()`` call and at least one ``.unlink()`` call somewhere in its
methods (typically ``close``/``destroy``/a ``weakref.finalize``
callback).  Module-level creations outside any class are checked
against the whole module.  The check is syntactic by design — it cannot
prove the teardown *runs*, but it guarantees the path exists and keeps
"allocate and forget" from ever passing review silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["ShmTeardownRule"]


def _is_shm_create(node: ast.Call) -> bool:
    """True for ``SharedMemory(..., create=True)`` (keyword or 2nd positional)."""
    chain = dotted_chain(node.func)
    if not chain or chain[-1] != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    if len(node.args) >= 2:
        arg = node.args[1]
        return isinstance(arg, ast.Constant) and arg.value is True
    return False


def _attribute_calls(scope: ast.AST) -> set[str]:
    """Names of all ``something.<name>()`` attribute calls inside ``scope``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            names.add(node.func.attr)
    return names


class ShmTeardownRule(Rule):
    """SHM001: SharedMemory(create=True) owners must close() AND unlink()."""

    id = "SHM001"
    summary = "shared-memory creators must have close() and unlink() teardown"

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        class_of: dict[ast.AST, ast.ClassDef | None] = {}

        def annotate(node: ast.AST, owner: ast.ClassDef | None) -> None:
            for child in ast.iter_child_nodes(node):
                next_owner = child if isinstance(child, ast.ClassDef) else owner
                class_of[child] = next_owner
                annotate(child, next_owner)

        annotate(module.tree, None)

        module_calls: set[str] | None = None
        scope_calls: dict[ast.ClassDef, set[str]] = {}

        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_shm_create(node)):
                continue
            owner = class_of.get(node)
            if owner is not None:
                if owner not in scope_calls:
                    scope_calls[owner] = _attribute_calls(owner)
                calls, where = scope_calls[owner], f"class {owner.name!r}"
            else:
                if module_calls is None:
                    module_calls = _attribute_calls(module.tree)
                calls, where = module_calls, "this module"
            missing = sorted({"close", "unlink"} - calls)
            if missing:
                yield Finding(
                    rule=self.id,
                    message=(
                        "SharedMemory(create=True) without a reachable "
                        f"{' / '.join(f'{name}()' for name in missing)} call in "
                        f"{where}; leaked segments persist in /dev/shm after "
                        "process exit"
                    ),
                    file=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                )


RULES.register(ShmTeardownRule.id, ShmTeardownRule())
