"""SPAWN001: process-pool entry points must be module-level callables.

The sharded bank workers (``repro.distributed.sharded_bank``) and the
sweep runner (``repro.sweep.runner``) both use the ``spawn`` start
method, where the child re-imports the target by qualified name.  A
lambda, a function defined inside another function, or a name bound to a
lambda cannot be pickled across that boundary — the failure shows up
only when the pool actually spins up, usually inside a test that is
skipped on single-CPU CI runners.  This rule moves the failure to lint
time.

The check fires on ``Process(target=...)`` construction and on pool
dispatch methods (``map``, ``imap_unordered``, ``apply_async``, ...):
the dispatched callable must be a plain module-level name (or a
``functools.partial`` around one).  Lambdas anywhere in the argument
list are flagged too — they ride along in the pickled payload.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["SpawnSafetyRule"]

#: Pool/executor methods whose first positional argument is shipped to
#: worker processes.
_POOL_METHODS = {
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
}


def _collect_function_kinds(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """Return (module_level, nested, lambda_bound) function names.

    "Module level" includes methods (resolvable by qualified name);
    "nested" means defined inside another function body and therefore
    unpicklable under spawn.
    """
    module_level: set[str] = set()
    nested: set[str] = set()
    lambda_bound: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                (nested if inside_function else module_level).add(child.name)
                visit(child, inside_function=True)
            elif isinstance(child, ast.Assign) and isinstance(child.value, ast.Lambda):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        lambda_bound.add(target.id)
                visit(child, inside_function)
            else:
                visit(child, inside_function)

    visit(tree, inside_function=False)
    return module_level, nested, lambda_bound


class SpawnSafetyRule(Rule):
    """SPAWN001: no lambdas/local functions in process-pool payloads."""

    id = "SPAWN001"
    summary = "process-pool targets must be module-level (spawn-picklable)"

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        module_level, nested, lambda_bound = _collect_function_kinds(module.tree)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if not chain:
                continue
            payload_exprs: list[ast.expr] = []
            if chain[-1] == "Process":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        payload_exprs.append(keyword.value)
            elif chain[-1] in _POOL_METHODS and len(chain) >= 2 and node.args:
                payload_exprs.append(node.args[0])
            else:
                continue

            for expr in payload_exprs:
                yield from self._check_payload(module, expr, module_level, nested, lambda_bound)

            # Lambdas riding along in args/kwargs get pickled with the payload.
            for arg in list(node.args[1:]) + [kw.value for kw in node.keywords if kw.arg != "target"]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield self._finding(
                            module,
                            sub,
                            "lambda in a process-pool argument list cannot be "
                            "pickled under the spawn start method",
                        )

    def _check_payload(
        self,
        module: ModuleInfo,
        expr: ast.expr,
        module_level: set[str],
        nested: set[str],
        lambda_bound: set[str],
    ) -> Iterator[Finding]:
        target = self._unwrap_partial(expr)
        if isinstance(target, ast.Lambda):
            yield self._finding(
                module,
                target,
                "lambda as a process target cannot be pickled under spawn; "
                "define a module-level function",
            )
        elif isinstance(target, ast.Name):
            if target.id in lambda_bound:
                yield self._finding(
                    module,
                    target,
                    f"process target {target.id!r} is bound to a lambda; "
                    f"define a module-level function",
                )
            elif target.id in nested and target.id not in module_level:
                yield self._finding(
                    module,
                    target,
                    f"process target {target.id!r} is defined inside another "
                    f"function and cannot be pickled under spawn; move it to "
                    f"module level",
                )

    @staticmethod
    def _unwrap_partial(expr: ast.expr) -> ast.expr:
        """``functools.partial(f, ...)`` → ``f`` (partials of picklables pickle)."""
        if isinstance(expr, ast.Call):
            chain = dotted_chain(expr.func)
            if chain and chain[-1] == "partial" and expr.args:
                return expr.args[0]
        return expr

    def _finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            message=message,
            file=module.display,
            line=node.lineno,
            col=node.col_offset,
        )


RULES.register(SpawnSafetyRule.id, SpawnSafetyRule())
