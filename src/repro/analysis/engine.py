"""The rule framework: per-file AST checks plus a cross-file finalize pass.

A :class:`Rule` sees each parsed module once (:meth:`Rule.check`) and may
accumulate state in the shared :class:`AnalysisContext` for a cross-file
:meth:`Rule.finalize` pass after every file has been visited — that is how
BANK001 compares the layers defining ``bank_forward`` against the
equivalence-matrix declaration in ``tests/conftest.py``, and how API001
detects duplicate registry names across modules.

Rules self-register into :data:`RULES` (the same lazy
:class:`~repro.api.registry.Registry` machinery behind the component
registries), so ``--select``/``--ignore`` and ``--list-rules`` are pure
registry queries and the README rule table cannot drift from the code.

Path scoping: a rule with a non-empty :attr:`Rule.scope` only checks
modules whose *package-relative* path (the part after the ``repro``
package directory, e.g. ``sweep/store.py``) starts with one of the scope
entries.  Fixture trees in tests reproduce the layout (``tmp/repro/core/``)
to exercise scoped rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, SuppressionIndex
from repro.api.registry import Registry

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "ModuleInfo",
    "RULES",
    "Rule",
    "all_rules",
    "dotted_chain",
    "run_analysis",
]


def _populate_rules() -> None:
    """Import the rule modules, which register themselves into RULES."""
    import repro.analysis.rules_bank  # noqa: F401  (registration side effect)
    import repro.analysis.rules_determinism  # noqa: F401
    import repro.analysis.rules_hash  # noqa: F401
    import repro.analysis.rules_obs  # noqa: F401
    import repro.analysis.rules_perf  # noqa: F401
    import repro.analysis.rules_shm  # noqa: F401
    import repro.analysis.rules_spawn  # noqa: F401
    import repro.analysis.rules_style  # noqa: F401


#: id → :class:`Rule` instance for the whole battery.
RULES = Registry("analysis rule", populate=_populate_rules)


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file handed to every applicable rule."""

    #: Path as discovered (used verbatim in findings, clickable from the CLI).
    display: str
    #: Package-relative posix path (``sweep/store.py``) used for rule scoping.
    relpath: str
    tree: ast.Module
    source: str

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`id`, :attr:`summary` (one line, used by
    ``--list-rules`` and the README table), optionally :attr:`scope`, and
    implement :meth:`check` and/or :meth:`finalize`.
    """

    id: str = ""
    summary: str = ""
    default_on: bool = True
    #: Package-relative path prefixes this rule is limited to; empty = all.
    scope: tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if not self.scope:
            return True
        return any(
            module.relpath == entry or module.relpath.startswith(entry)
            for entry in self.scope
        )

    def check(self, module: ModuleInfo, ctx: "AnalysisContext") -> Iterable[Finding]:
        """Per-file pass; yield findings for ``module``."""
        return ()

    def finalize(self, ctx: "AnalysisContext") -> Iterable[Finding]:
        """Cross-file pass, run once after every module has been checked."""
        return ()


@dataclass
class AnalysisContext:
    """Shared state for one :func:`run_analysis` invocation."""

    #: Per-rule scratch space for cross-file rules (``ctx.state[rule_id]``).
    state: dict = field(default_factory=dict)
    #: Path of ``tests/conftest.py`` (the equivalence-matrix declaration),
    #: or ``None`` when none was found near the scanned paths.
    conftest_path: "Path | None" = None
    modules: list[ModuleInfo] = field(default_factory=list)

    def rule_state(self, rule_id: str, factory=dict):
        if rule_id not in self.state:
            self.state[rule_id] = factory()
        return self.state[rule_id]


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding]
    files_scanned: int
    suppressed: int
    rules_run: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "rules": list(self.rules_run),
            "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
        }


def dotted_chain(node: ast.AST) -> tuple[str, ...]:
    """Resolve ``a.b.c`` attribute chains to ``("a", "b", "c")``.

    Returns ``()`` for expressions that are not pure name/attribute chains
    (calls, subscripts, ...), which callers treat as "not a match".
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [RULES.get(rule_id) for rule_id in RULES.names()]


def _iter_python_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if "__pycache__" in candidate.parts:
            continue
        yield candidate


def _package_relpath(file_path: Path, root: Path) -> str:
    """Path relative to the ``repro`` package directory, for rule scoping.

    Falls back to the path relative to the scanned root when the file does
    not live under a ``repro`` directory (fixture trees in tests reproduce
    the package layout to opt into scoped rules).
    """
    parts = file_path.parts
    if "repro" in parts:
        tail = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        return "/".join(tail[1:])
    try:
        return file_path.relative_to(root).as_posix()
    except ValueError:
        return file_path.name


def _discover_conftest(roots: list[Path]) -> "Path | None":
    """Locate ``tests/conftest.py`` near the scanned paths (or the CWD)."""
    candidates: list[Path] = []
    for root in roots:
        base = root if root.is_dir() else root.parent
        for ancestor in (base, *base.resolve().parents):
            candidates.append(ancestor / "tests" / "conftest.py")
    candidates.append(Path("tests") / "conftest.py")
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def _selected_rules(
    select: "Iterable[str] | None", ignore: "Iterable[str] | None"
) -> list[Rule]:
    known = set(RULES.names())
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise ValueError(
                f"unknown analysis rule {requested!r}; available: {sorted(known)}"
            )
    chosen = set(select) if select else {r.id for r in all_rules() if r.default_on}
    chosen -= set(ignore or ())
    return [rule for rule in all_rules() if rule.id in chosen]


def run_analysis(
    paths: Iterable[str | Path],
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
    conftest: "str | Path | None" = None,
) -> AnalysisReport:
    """Run the selected rule battery over ``paths`` and return the report.

    ``select`` keeps only the named rules (default: every ``default_on``
    rule); ``ignore`` drops rules from that set.  ``conftest`` overrides
    the auto-discovered ``tests/conftest.py`` used by cross-file rules.
    Suppressed findings are filtered out and counted in the report.
    """
    roots = [Path(p) for p in paths]
    for root in roots:
        if not root.exists():
            raise FileNotFoundError(f"analysis path does not exist: {root}")
    rules = _selected_rules(select, ignore)

    ctx = AnalysisContext()
    ctx.conftest_path = Path(conftest) if conftest is not None else _discover_conftest(roots)

    findings: list[Finding] = []
    suppression_indexes: dict[str, SuppressionIndex] = {}
    files_scanned = 0
    for root in roots:
        for file_path in _iter_python_files(root):
            display = str(file_path)
            if display in suppression_indexes:
                continue  # the same file reached through two scanned roots
            source = file_path.read_text()
            files_scanned += 1
            suppression_indexes[display] = SuppressionIndex.from_source(source)
            try:
                tree = ast.parse(source, filename=display)
            except SyntaxError as err:
                findings.append(
                    Finding(
                        rule="E999",
                        message=f"syntax error: {err.msg}",
                        file=display,
                        line=err.lineno or 1,
                        col=(err.offset or 1) - 1,
                    )
                )
                continue
            module = ModuleInfo(
                display=display,
                relpath=_package_relpath(file_path, root),
                tree=tree,
                source=source,
            )
            ctx.modules.append(module)
            for rule in rules:
                if rule.applies_to(module):
                    findings.extend(rule.check(module, ctx))

    for rule in rules:
        findings.extend(rule.finalize(ctx))

    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        index = suppression_indexes.get(finding.file)
        if index is None:
            # Findings can land in files outside the scanned roots (the
            # conftest declaration); honor their suppressions too.
            try:
                index = SuppressionIndex.from_source(Path(finding.file).read_text())
            except OSError:
                index = SuppressionIndex()
            suppression_indexes[finding.file] = index
        if index.suppresses(finding):
            suppressed += 1
        else:
            kept.append(finding)

    kept.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=kept,
        files_scanned=files_scanned,
        suppressed=suppressed,
        rules_run=[rule.id for rule in rules],
    )
