"""HASH001: content addresses are computed from canonical JSON only.

The sweep store (``repro.sweep.store``) and result records
(``repro.utils.results``) identify cells by ``sha256(json.dumps(payload))``
— the whole resume-and-dedup design collapses if two runs serialize the
same payload with different key orders.  ``json.dumps`` without
``sort_keys=True`` is order-of-insertion; a ``dict`` literal refactor or
a kwargs reordering silently changes every content hash and invalidates
the store.

The rule fires on:

* ``json.dumps(...)`` lacking ``sort_keys=True`` anywhere inside a
  ``hashlib.*`` call's arguments (the payload *is* the hash input);
* any ``json.dumps(...)`` lacking ``sort_keys=True`` in the store/result
  modules (``sweep/``, ``utils/results.py``), where every serialization
  either feeds a hash or a golden-compared file;
* any ``json.dumps(...)`` in those modules lacking ``allow_nan=False`` —
  Python's permissive default writes bare ``NaN``/``Infinity`` tokens,
  which no RFC 8259 parser accepts and whose spelling is
  writer-dependent, so both portability and content addresses break;
* iteration directly over a set literal / ``set(...)`` /
  set-comprehension in those modules — set order is salted per process,
  so anything derived from it must go through ``sorted(...)`` first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["CanonicalHashRule"]

#: Modules where *every* ``json.dumps`` must be canonical.
_STORE_PATHS = ("sweep/", "utils/results.py")

_HASHLIB_CONSTRUCTORS = {
    "sha1",
    "sha224",
    "sha256",
    "sha384",
    "sha512",
    "sha3_256",
    "sha3_512",
    "md5",
    "blake2b",
    "blake2s",
    "new",
}


def _is_json_dumps(node: ast.Call, dumps_aliases: set[str]) -> bool:
    chain = dotted_chain(node.func)
    if chain == ("json", "dumps"):
        return True
    return len(chain) == 1 and chain[0] in dumps_aliases


def _has_sort_keys(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "sort_keys":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _has_allow_nan_false(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "allow_nan":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is False
    return False


def _dumps_aliases(tree: ast.Module) -> set[str]:
    """Names that ``from json import dumps [as d]`` binds in this module."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "json":
            for item in node.names:
                if item.name == "dumps":
                    aliases.add(item.asname or "dumps")
    return aliases


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        return chain == ("set",) or chain == ("frozenset",)
    return False


class CanonicalHashRule(Rule):
    """HASH001: hash/store serialization must be key-sorted and set-free."""

    id = "HASH001"
    summary = "hash/store JSON must use sort_keys=True; no raw set iteration"

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        dumps_aliases = _dumps_aliases(module.tree)
        in_store_path = any(
            module.relpath == entry or module.relpath.startswith(entry)
            for entry in _STORE_PATHS
        )
        flagged: set[tuple[int, int]] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                if len(chain) == 2 and chain[0] == "hashlib" and chain[1] in _HASHLIB_CONSTRUCTORS:
                    yield from self._check_hash_input(module, node, dumps_aliases, flagged)
                elif in_store_path and _is_json_dumps(node, dumps_aliases):
                    if (
                        not _has_sort_keys(node)
                        and (node.lineno, node.col_offset) not in flagged
                    ):
                        flagged.add((node.lineno, node.col_offset))
                        yield self._finding(
                            module,
                            node,
                            "json.dumps in a store/hash module without sort_keys=True; "
                            "content addresses require canonical key order",
                        )
                    if not _has_allow_nan_false(node):
                        yield self._finding(
                            module,
                            node,
                            "json.dumps in a store/hash module without allow_nan=False; "
                            "the permissive default writes bare NaN/Infinity tokens "
                            "that no RFC 8259 parser accepts — encode non-finite "
                            "floats as sentinels and pass allow_nan=False",
                        )
            if in_store_path:
                yield from self._check_set_iteration(module, node)

    def _check_hash_input(
        self,
        module: ModuleInfo,
        hash_call: ast.Call,
        dumps_aliases: set[str],
        flagged: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        for arg in list(hash_call.args) + [kw.value for kw in hash_call.keywords]:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Call)
                    and _is_json_dumps(sub, dumps_aliases)
                    and not _has_sort_keys(sub)
                    and (sub.lineno, sub.col_offset) not in flagged
                ):
                    flagged.add((sub.lineno, sub.col_offset))
                    yield self._finding(
                        module,
                        sub,
                        "json.dumps feeding a hashlib digest without sort_keys=True; "
                        "the hash depends on dict insertion order",
                    )

    def _check_set_iteration(self, module: ModuleInfo, node: ast.AST) -> Iterator[Finding]:
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for iter_expr in iters:
            if _is_set_expr(iter_expr):
                yield self._finding(
                    module,
                    iter_expr,
                    "iterating a set in a store/hash module; set order is salted "
                    "per process — wrap in sorted(...)",
                )

    def _finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            message=message,
            file=module.display,
            line=node.lineno,
            col=node.col_offset,
        )


RULES.register(CanonicalHashRule.id, CanonicalHashRule())
