"""PERF001: no per-call float64 coercions in bank hot paths.

The vectorized backends earn their speedup by keeping every per-step
operation allocation-free: im2col index maps are cached, the optimizer
updates preallocated buffers in place, and the bank owns its storage
dtype (``bank_dtype``).  A ``np.asarray(x, dtype=float)`` inside a
``bank_forward`` or ``step`` body silently undoes that — it forces a
full float64 copy of an ``(m, ...)`` stacked array on *every* call, and
it re-widens float32 banks back to float64 mid-trajectory.  Dtype
coercion belongs at construction and API boundaries (where the existing
``asarray`` calls live), never in the per-step path.

The rule is purely syntactic on purpose: it flags ``np.asarray`` /
``np.array`` calls with an explicit ``dtype=float`` / ``dtype=np.float64``
keyword lexically inside a function named ``bank_forward`` or ``step``.
A coercion that is genuinely needed there (none today) can carry a
``# repro: ignore[PERF001]`` suppression with a comment saying why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import AnalysisContext, RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["HotPathCoercionRule"]

#: Function names treated as per-step hot paths.
_HOT_PATH_NAMES = ("bank_forward", "step")

#: numpy constructors whose ``dtype=`` keyword forces a copy/cast.
_COERCING_CALLS = ("asarray", "array", "ascontiguousarray")


def _numpy_aliases(tree: ast.Module) -> set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _is_float64_dtype(value: ast.AST, np_aliases: set[str]) -> bool:
    """True for ``dtype=float`` (the builtin) and ``dtype=np.float64``."""
    if isinstance(value, ast.Name) and value.id == "float":
        return True
    chain = dotted_chain(value)
    return len(chain) == 2 and chain[0] in np_aliases and chain[1] == "float64"


class HotPathCoercionRule(Rule):
    """PERF001: bank_forward/step must not re-cast arrays to float64 per call."""

    id = "PERF001"
    summary = "no np.asarray(..., dtype=float) coercions inside bank_forward/step"

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        np_aliases = _numpy_aliases(module.tree)
        if not np_aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef) or node.name not in _HOT_PATH_NAMES:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                chain = dotted_chain(call.func)
                if not (
                    len(chain) == 2
                    and chain[0] in np_aliases
                    and chain[1] in _COERCING_CALLS
                ):
                    continue
                for kw in call.keywords:
                    if kw.arg == "dtype" and _is_float64_dtype(kw.value, np_aliases):
                        yield Finding(
                            rule=self.id,
                            message=(
                                f"np.{chain[1]}(..., dtype=float) inside hot path "
                                f"{node.name}() forces a float64 copy every call and "
                                f"overrides the bank's storage dtype; coerce once at "
                                f"construction instead"
                            ),
                            file=module.display,
                            line=call.lineno,
                            col=call.col_offset,
                        )


RULES.register(HotPathCoercionRule.id, HotPathCoercionRule())
