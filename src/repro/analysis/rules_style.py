"""PY001 + PY002: the two foot-guns that have bitten this codebase's kin.

PY001 — a mutable default argument (``def f(x, history=[])``) is shared
across every call; in a simulator that reuses trainer objects across
sweep cells, a shared default list is a cross-cell state leak that
breaks run-to-run determinism in the most confusing way possible.

PY002 — ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit``,
which is how a hung sweep worker becomes unkillable.  Catch a concrete
exception type (or at minimum ``Exception``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["BareExceptRule", "MutableDefaultRule"]

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(Rule):
    """PY001: no mutable default arguments."""

    id = "PY001"
    summary = "no mutable default arguments (shared across calls)"

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
                if _is_mutable_default(default):
                    yield Finding(
                        rule=self.id,
                        message=(
                            "mutable default argument is shared across calls; "
                            "default to None and construct inside the function"
                        ),
                        file=module.display,
                        line=default.lineno,
                        col=default.col_offset,
                    )


class BareExceptRule(Rule):
    """PY002: no bare ``except:`` clauses."""

    id = "PY002"
    summary = "no bare except: (swallows KeyboardInterrupt/SystemExit)"

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    rule=self.id,
                    message=(
                        "bare except: catches KeyboardInterrupt and SystemExit; "
                        "name the exception type"
                    ),
                    file=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                )


RULES.register(MutableDefaultRule.id, MutableDefaultRule())
RULES.register(BareExceptRule.id, BareExceptRule())
