"""Determinism rules: seeded ``Generator`` streams, no wall clocks.

DET001 — the whole reproducibility story (byte-identical backends, golden
fixtures, content-addressed sweep cells) assumes every random draw comes
from an explicitly seeded ``numpy.random.Generator`` threaded through
``repro.utils.seeding.check_random_state``.  Legacy global RNGs
(``np.random.rand``, the stdlib ``random`` module) and unseeded
``default_rng()`` calls silently break that; direct *seeded*
``default_rng(...)`` construction outside the seeding utility bypasses
the one place allowed to normalize seeds (the ``sweep/spec.py`` sampling
RNG was built that way before this rule existed).

DET002 — the simulator's clock is virtual (``repro.utils.timer``); any
wall-clock read inside simulation or hash paths makes trajectories and
content addresses depend on when they ran, which is exactly the class of
bug the content-addressed store exists to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["UnseededRandomnessRule", "WallClockRule"]

#: ``np.random.*`` attributes that are legitimate non-drawing accesses
#: (classes and seeding plumbing handled separately).
_NP_RANDOM_ALLOWED = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "RandomState",  # flagged only when *called*, allowed in isinstance checks
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock reads flagged by DET002, as trailing segments of a dotted
#: call chain (so ``datetime.datetime.now()`` matches ``("datetime", "now")``).
_WALL_CLOCK_TAILS = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)
_WALL_CLOCK_BARE = {"time", "time_ns", "monotonic", "perf_counter", "perf_counter_ns"}


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the numpy module in this file (``np``, ``numpy``, ...)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _stdlib_random_aliases(tree: ast.Module) -> set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "random":
                    aliases.add(item.asname or "random")
    return aliases


class UnseededRandomnessRule(Rule):
    """DET001: no unseeded or legacy-global randomness in ``src/``."""

    id = "DET001"
    summary = "randomness must flow through seeded Generators (check_random_state)"

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        np_aliases = _numpy_aliases(module.tree)
        random_aliases = _stdlib_random_aliases(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_from_import(module, node)
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if len(chain) >= 3 and chain[0] in np_aliases and chain[1] == "random":
                yield from self._check_np_random_call(module, node, chain[2])
            elif len(chain) == 2 and chain[0] in random_aliases:
                yield self._finding(
                    module,
                    node,
                    f"stdlib random.{chain[1]}() draws from the process-global RNG; "
                    f"thread a seeded numpy Generator through instead",
                )

    def _check_from_import(self, module: ModuleInfo, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module == "random" and node.level == 0:
            names = ", ".join(item.name for item in node.names)
            yield self._finding(
                module,
                node,
                f"importing from the stdlib random module ({names}) pulls in "
                f"process-global RNG state; use seeded numpy Generators",
            )
        elif node.module == "numpy.random" and node.level == 0:
            for item in node.names:
                if item.name not in _NP_RANDOM_ALLOWED and item.name != "default_rng":
                    yield self._finding(
                        module,
                        node,
                        f"numpy.random.{item.name} is the legacy global-state API; "
                        f"use a seeded Generator from check_random_state",
                    )

    def _check_np_random_call(
        self, module: ModuleInfo, node: ast.Call, attr: str
    ) -> Iterator[Finding]:
        if attr == "default_rng":
            if not node.args and not node.keywords:
                yield self._finding(
                    module,
                    node,
                    "np.random.default_rng() without a seed is nondeterministic; "
                    "pass a seed or use check_random_state",
                )
            else:
                yield self._finding(
                    module,
                    node,
                    "construct Generators via repro.utils.seeding.check_random_state "
                    "so seed normalization stays in one place",
                )
        elif attr not in _NP_RANDOM_ALLOWED or attr == "RandomState":
            yield self._finding(
                module,
                node,
                f"np.random.{attr} uses the legacy global (or legacy-seeded) RNG; "
                f"draw from a seeded Generator instead",
            )

    def _finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            message=message,
            file=module.display,
            line=node.lineno,
            col=node.col_offset,
        )


class WallClockRule(Rule):
    """DET002: no wall-clock reads in simulation/hash paths."""

    id = "DET002"
    summary = "no wall-clock reads in simulation/hash paths (virtual time only)"
    scope = ("core/", "runtime/", "distributed/", "sweep/store.py", "sweep/spec.py", "utils/")

    def check(self, module: ModuleInfo, ctx) -> Iterator[Finding]:
        bare_clock_names = self._bare_clock_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if len(chain) >= 2 and chain[-2:] in _as_tails():
                yield Finding(
                    rule=self.id,
                    message=(
                        f"wall-clock read {'.'.join(chain)}() in a simulation/hash "
                        f"path; simulated time lives in repro.utils.timer"
                    ),
                    file=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                )
            elif len(chain) == 1 and chain[0] in bare_clock_names:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"wall-clock read {chain[0]}() (imported from time) in a "
                        f"simulation/hash path; simulated time lives in repro.utils.timer"
                    ),
                    file=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                )

    @staticmethod
    def _bare_clock_imports(tree: ast.Module) -> set[str]:
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for item in node.names:
                    if item.name in _WALL_CLOCK_BARE:
                        names.add(item.asname or item.name)
        return names


def _as_tails() -> Iterable[tuple[str, str]]:
    return _WALL_CLOCK_TAILS


RULES.register(UnseededRandomnessRule.id, UnseededRandomnessRule())
RULES.register(WallClockRule.id, WallClockRule())
