"""repro.analysis — AST-based invariant linter for the repro codebase.

The repo's headline guarantee — loop, vectorized, and sharded backends
producing byte-identical trajectories, with content-addressed stores that
are pure cache hits across runs — rests on a handful of invariants that
used to live only in reviewers' heads and after-the-fact equivalence
tests: seeded ``Generator`` streams everywhere, pickle-safe spawn
payloads, hash-stable canonical JSON, every bank-capable layer pinned by
the equivalence matrix.  This package turns those rules into
machine-checked ones.

Architecture
------------
* :mod:`repro.analysis.findings` — the :class:`Finding` record and the
  ``# repro: ignore[RULE]`` suppression-comment grammar.
* :mod:`repro.analysis.engine` — the rule framework: :class:`Rule`,
  per-file AST checks plus a cross-file ``finalize`` pass, path scoping,
  and :func:`run_analysis` which parses files once and fans them out to
  every selected rule.
* ``rules_*`` modules — the rule battery, each grounded in a real past
  bug (see each rule's docstring); they self-register into :data:`RULES`.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` with text/JSON
  output, rule selection, and ``--list-rules`` (the README table is
  generated from it, so docs cannot drift).

Run the battery over the tree::

    PYTHONPATH=src python -m repro.analysis src/

The process exits non-zero on findings, which is how CI gates every PR on
the invariants alongside the equivalence matrix.
"""

from repro.analysis.engine import (
    AnalysisReport,
    ModuleInfo,
    RULES,
    Rule,
    run_analysis,
)
from repro.analysis.findings import Finding, suppressions_for_line

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "RULES",
    "Rule",
    "run_analysis",
    "suppressions_for_line",
]
