"""BANK001 + API001: bank parity and registry hygiene.

BANK001 — the vectorized/sharded backends are only trustworthy because
every layer that overrides ``bank_forward`` is exercised by the
equivalence matrix in ``tests/conftest.py``.  That matrix pins the set
of bank-capable layers in ``BANK_EQUIVALENCE_LAYERS``; this rule
statically extracts every class in ``src/`` defining a concrete
``bank_forward`` and cross-checks the two.  A new layer that adds
``bank_forward`` without joining the matrix fails lint (at the class
definition); a declaration entry whose class no longer exists fails lint
(at the conftest line).  A runtime test closes the remaining gap by
asserting the declaration matches the layers actually instantiated by
the equivalence cases.

API001 — the component registries (``MODELS``, ``OBJECTIVES``, ...)
raise on duplicate names, but only at import time of the *second*
registrant, which may be lazy.  This rule surfaces duplicate
``.register("name")`` calls across modules at lint time, and checks that
``__all__`` lists only names actually defined in the module (a stale
``__all__`` entry breaks ``from m import *`` and the API docs).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.engine import AnalysisContext, RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["BankParityRule", "RegistryHygieneRule"]

#: Name of the declaration assignment this rule looks for in conftest.
DECLARATION_NAME = "BANK_EQUIVALENCE_LAYERS"


def _is_abstract_bank_forward(func: ast.FunctionDef) -> bool:
    """True for the base-class stub: optional docstring + raise NotImplementedError."""
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


class BankParityRule(Rule):
    """BANK001: bank_forward definers must match the equivalence declaration."""

    id = "BANK001"
    summary = "every concrete bank_forward layer must be in the equivalence matrix"

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        definers = ctx.rule_state(self.id)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "bank_forward"
                    and not _is_abstract_bank_forward(item)
                ):
                    definers.setdefault(
                        node.name, (module.display, node.lineno, node.col_offset)
                    )
        return iter(())

    def finalize(self, ctx: AnalysisContext) -> Iterator[Finding]:
        definers: dict = ctx.rule_state(self.id)
        if not definers:
            return
        if ctx.conftest_path is None:
            file, line, col = sorted(definers.values())[0]
            yield Finding(
                rule=self.id,
                message=(
                    f"bank_forward definers found but no tests/conftest.py with a "
                    f"{DECLARATION_NAME} declaration was located"
                ),
                file=file,
                line=line,
                col=col,
            )
            return

        declared = self._parse_declaration(ctx.conftest_path)
        if declared is None:
            file, line, col = sorted(definers.values())[0]
            yield Finding(
                rule=self.id,
                message=(
                    f"{ctx.conftest_path} does not declare {DECLARATION_NAME}; "
                    f"the equivalence matrix cannot be cross-checked"
                ),
                file=file,
                line=line,
                col=col,
            )
            return

        declared_names = {name for name, _ in declared.items()}
        for class_name in sorted(set(definers) - declared_names):
            file, line, col = definers[class_name]
            yield Finding(
                rule=self.id,
                message=(
                    f"class {class_name} defines bank_forward but is missing from "
                    f"{DECLARATION_NAME} in {ctx.conftest_path}; add it to the "
                    f"equivalence matrix"
                ),
                file=file,
                line=line,
                col=col,
            )
        for class_name in sorted(declared_names - set(definers)):
            decl_line = declared[class_name]
            yield Finding(
                rule=self.id,
                message=(
                    f"{DECLARATION_NAME} declares {class_name} but no class in the "
                    f"scanned tree defines bank_forward under that name; remove or "
                    f"rename the stale entry"
                ),
                file=str(ctx.conftest_path),
                line=decl_line,
                col=0,
            )

    @staticmethod
    def _parse_declaration(conftest_path: Path) -> "dict[str, int] | None":
        """``{class_name: lineno}`` from the conftest declaration, or None."""
        try:
            tree = ast.parse(conftest_path.read_text(), filename=str(conftest_path))
        except (OSError, SyntaxError):
            return None
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == DECLARATION_NAME for t in node.targets
            ):
                continue
            value = node.value
            if isinstance(value, ast.Call) and value.args:
                # frozenset({...}) / frozenset([...])
                value = value.args[0]
            if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
                return {
                    elt.value: elt.lineno
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
        return None


class RegistryHygieneRule(Rule):
    """API001: unique registry names, truthful ``__all__``."""

    id = "API001"
    summary = "registry names unique; __all__ entries must exist and not repeat"

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        yield from self._check_all_declaration(module)
        self._collect_registrations(module, ctx)

    def finalize(self, ctx: AnalysisContext) -> Iterator[Finding]:
        registrations: dict = ctx.rule_state(self.id)
        for (registry, name), sites in sorted(registrations.items()):
            if len(sites) < 2:
                continue
            for file, line, col in sites[1:]:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"duplicate registration {name!r} in registry {registry} "
                        f"(first registered at {sites[0][0]}:{sites[0][1]})"
                    ),
                    file=file,
                    line=line,
                    col=col,
                )

    def _collect_registrations(self, module: ModuleInfo, ctx: AnalysisContext) -> None:
        registrations = ctx.rule_state(self.id)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            chain = dotted_chain(node.func)
            registry = None
            if len(chain) >= 2 and chain[-1] == "register" and chain[-2].isupper():
                registry = chain[-2]
            elif chain == ("register_model",):
                registry = "MODELS"
            if registry is None:
                continue
            if any(
                kw.arg == "overwrite"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                continue
            registrations.setdefault((registry, first.value), []).append(
                (module.display, node.lineno, node.col_offset)
            )

    def _check_all_declaration(self, module: ModuleInfo) -> Iterator[Finding]:
        all_node = None
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                all_node = node
        if all_node is None:
            return

        defined = _top_level_names(module.tree)
        # A module-level __getattr__ (PEP 562) can lazily provide any name,
        # so existence checks are unreliable there; duplicates still are not.
        lazy_provider = "__getattr__" in defined
        seen: set[str] = set()
        for elt in all_node.value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                continue
            name = elt.value
            if name in seen:
                yield Finding(
                    rule=self.id,
                    message=f"__all__ lists {name!r} more than once",
                    file=module.display,
                    line=elt.lineno,
                    col=elt.col_offset,
                )
            seen.add(name)
            if name not in defined and not lazy_provider:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"__all__ lists {name!r} but the module defines no such "
                        f"top-level name"
                    ),
                    file=module.display,
                    line=elt.lineno,
                    col=elt.col_offset,
                )


def _top_level_names(tree: ast.Module) -> set[str]:
    """Names importable from the module: top-level defs, assigns, imports.

    Descends into top-level ``if``/``try`` blocks (conditional imports)
    but not into function or class bodies.
    """
    names: set[str] = set()

    def visit(body) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for item in node.names:
                    names.add(item.asname or item.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for item in node.names:
                    if item.name == "*":
                        continue
                    names.add(item.asname or item.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return names


RULES.register(BankParityRule.id, BankParityRule())
RULES.register(RegistryHygieneRule.id, RegistryHygieneRule())
