"""``python -m repro.analysis`` — run the invariant battery from the shell.

Exit codes: 0 clean, 1 findings (or syntax errors), 2 usage errors.  The
README's rule table is :func:`rules_table_markdown` verbatim — a test
asserts the two match, so ``--list-rules`` and the docs cannot drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.engine import all_rules, run_analysis

__all__ = ["build_parser", "main", "rules_table_markdown"]


def rules_table_markdown() -> str:
    """The rule battery as a GitHub-flavored markdown table."""
    lines = ["| Rule | Scope | Invariant |", "| --- | --- | --- |"]
    for rule in all_rules():
        scope = ", ".join(f"`{entry}`" for entry in rule.scope) if rule.scope else "all of `src/`"
        lines.append(f"| `{rule.id}` | {scope} | {rule.summary} |")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--rules",
        "--select",
        dest="select",
        metavar="RULE",
        nargs="+",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULE",
        nargs="+",
        help="drop these rule ids from the selected set",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--conftest",
        metavar="PATH",
        help="tests/conftest.py holding the bank-equivalence declaration "
        "(default: auto-discovered near the scanned paths)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(rules_table_markdown())
        return 0

    try:
        report = run_analysis(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            conftest=args.conftest,
        )
    except (FileNotFoundError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
            f" [{len(report.rules_run)} rule(s); {report.suppressed} suppressed]"
        )
        print(summary)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
