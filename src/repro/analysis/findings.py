"""The :class:`Finding` record and the suppression-comment grammar.

A finding is one rule violation at one source location.  Findings are
plain data — the engine produces them, the CLI renders them — so the JSON
output schema is exactly :meth:`Finding.to_dict` and is pinned by
``tests/test_analysis.py``.

Suppressions
------------
A violation is silenced by a trailing comment on the *flagged line*::

    value = np.random.default_rng()  # repro: ignore[DET001] entropy fallback

The bracket list may name several rules (``ignore[DET001, PY001]``); a
bare ``# repro: ignore`` (no brackets) suppresses every rule on the line.
Anything after the closing bracket is free-form justification — the audit
convention in this repo is that every suppression carries one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Finding", "IGNORE_ALL", "suppressions_for_line"]

#: Sentinel returned by :func:`suppressions_for_line` for a bare
#: ``# repro: ignore`` comment (suppress every rule on the line).
IGNORE_ALL = "*"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location (1-based line, 0-based col)."""

    rule: str
    message: str
    file: str
    line: int
    col: int = 0

    def to_dict(self) -> dict:
        """JSON form — the schema of ``--format json`` output."""
        return {
            "rule": self.rule,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        """Human form: ``file:line:col: RULE message`` (clickable in editors)."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.col, self.rule)


@dataclass
class SuppressionIndex:
    """Per-file map of line number → rule ids suppressed on that line."""

    by_line: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            rules = suppressions_for_line(line)
            if rules:
                index.by_line[lineno] = rules
        return index

    def suppresses(self, finding: Finding) -> bool:
        rules = self.by_line.get(finding.line)
        if not rules:
            return False
        return IGNORE_ALL in rules or finding.rule in rules


def suppressions_for_line(line: str) -> set[str]:
    """Rule ids suppressed by a ``# repro: ignore[...]`` comment on ``line``.

    Returns the empty set when the line carries no suppression, and a set
    containing :data:`IGNORE_ALL` for the bracket-less form.
    """
    match = _SUPPRESSION_RE.search(line)
    if match is None:
        return set()
    rules = match.group("rules")
    if rules is None:
        return {IGNORE_ALL}
    names = {part.strip() for part in rules.split(",") if part.strip()}
    return names or {IGNORE_ALL}
