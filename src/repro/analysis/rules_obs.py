"""OBS001: trace event names must come from the frozen registry.

The tracer validates event names at emit time, but a misspelled name in a
rarely exercised branch (an error path, a backend only covered by slow
tests) would only surface as a runtime ``ValueError`` mid-run.  This rule
closes that gap statically, the same way BANK001 keeps the bank-equivalence
matrix honest: every literal first argument of a ``span(...)`` /
``instant(...)`` call in the scanned tree is cross-checked against the
``EVENT_NAMES`` declaration in ``obs/events.py``.  Call sites through names
imported from :mod:`repro.obs` must also pass a *literal* name — a computed
event name cannot be checked here and would silently bypass the schema.

The ``obs/`` package itself is exempt: it is the implementation (the tracer
forwards an arbitrary ``name`` parameter by design).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import AnalysisContext, RULES, ModuleInfo, Rule, dotted_chain
from repro.analysis.findings import Finding

__all__ = ["ObsEventNameRule"]

#: Name of the frozen-set assignment this rule looks for in obs/events.py.
DECLARATION_NAME = "EVENT_NAMES"

#: Package-relative path of the module declaring the event-name registry.
DECLARATION_RELPATH = "obs/events.py"

_EMIT_NAMES = ("span", "instant")


class ObsEventNameRule(Rule):
    """OBS001: span/instant event names must be literals from obs/events.py."""

    id = "OBS001"
    summary = "trace event names must be literals from the obs/events.py registry"

    def check(self, module: ModuleInfo, ctx: AnalysisContext) -> Iterator[Finding]:
        if module.relpath == DECLARATION_RELPATH or module.relpath.startswith("obs/"):
            return iter(())
        emit_aliases = self._emit_aliases(module.tree)
        sites = ctx.rule_state(self.id, factory=list)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if not chain:
                continue
            is_import_call = len(chain) == 1 and chain[0] in emit_aliases
            is_method_call = len(chain) >= 2 and chain[-1] in _EMIT_NAMES
            if not (is_import_call or is_method_call):
                continue
            first = node.args[0] if node.args else None
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                sites.append(
                    (first.value, module.display, first.lineno, first.col_offset)
                )
            elif is_import_call:
                # Attribute calls without a literal first arg are too
                # ambiguous to flag (``re.Match.span()`` takes no string),
                # but a call through the imported helpers definitely emits.
                findings.append(
                    Finding(
                        rule=self.id,
                        message=(
                            f"{chain[0]}(...) event name must be a string literal "
                            f"from {DECLARATION_NAME} in repro.obs.events; a "
                            f"computed name bypasses the trace schema"
                        ),
                        file=module.display,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
        return iter(findings)

    def finalize(self, ctx: AnalysisContext) -> Iterator[Finding]:
        sites: list = ctx.rule_state(self.id, factory=list)
        if not sites:
            return
        declared = self._parse_declaration(ctx)
        if declared is None:
            _, file, line, col = sorted(sites)[0]
            yield Finding(
                rule=self.id,
                message=(
                    f"span/instant call sites found but no {DECLARATION_RELPATH} "
                    f"with a {DECLARATION_NAME} declaration is in the scanned tree"
                ),
                file=file,
                line=line,
                col=col,
            )
            return
        for name, file, line, col in sorted(sites, key=lambda s: (s[1], s[2], s[3])):
            if name not in declared:
                yield Finding(
                    rule=self.id,
                    message=(
                        f"unknown trace event name {name!r}; registered names: "
                        f"{sorted(declared)} (add new event types to "
                        f"repro.obs.events)"
                    ),
                    file=file,
                    line=line,
                    col=col,
                )

    @staticmethod
    def _emit_aliases(tree: ast.Module) -> set[str]:
        """Local names bound to repro.obs span/instant by an import."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module is None or "obs" not in node.module.split("."):
                continue
            for item in node.names:
                if item.name in _EMIT_NAMES:
                    aliases.add(item.asname or item.name)
        return aliases

    @staticmethod
    def _parse_declaration(ctx: AnalysisContext) -> "set[str] | None":
        """The string members of ``EVENT_NAMES`` in obs/events.py, or None."""
        for module in ctx.modules:
            if module.relpath != DECLARATION_RELPATH:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == DECLARATION_NAME
                    for t in node.targets
                ):
                    continue
                value = node.value
                if isinstance(value, ast.Call) and value.args:
                    # frozenset({...}) / frozenset([...])
                    value = value.args[0]
                if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
                    return {
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    }
        return None


RULES.register(ObsEventNameRule.id, ObsEventNameRule())
