"""Synthetic quadratic objectives with analytically known constants.

Theorem 1's bound involves the Lipschitz constant ``L`` of the gradient, the
gradient-noise variance ``σ²`` and the initial optimality gap ``F(x1)-Finf``.
For deep networks these are unknown, which is exactly why the paper replaces
the closed-form τ* (eq. 14) with the practical update rule (eq. 17).  The
quadratic problems in this module make all three constants exact, so the
tests and the theory-validation benches can compare simulated PASGD/AdaComm
behaviour against the bound directly.

``QuadraticObjective`` is F(x) = 0.5 (x-x*)^T A (x-x*) + f_inf with stochastic
gradients ∇F(x) + ζ, ζ ~ N(0, σ²/d I).  ``NoisyQuadraticProblem`` wraps it in
the same ``loss``/parameter interface as the NN models so the PASGD trainer
can optimize it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.utils.seeding import check_random_state

__all__ = ["QuadraticObjective", "NoisyQuadraticProblem"]


@dataclass
class QuadraticObjective:
    """F(x) = 0.5 (x - x*)^T A (x - x*) + f_inf with A symmetric PSD.

    Attributes
    ----------
    matrix:
        The Hessian ``A`` (d × d, symmetric positive semi-definite).
    optimum:
        The minimizer ``x*``.
    f_inf:
        The minimum value ``F(x*)``.
    noise_std:
        Standard deviation of the isotropic gradient noise per coordinate.
    """

    matrix: np.ndarray
    optimum: np.ndarray
    f_inf: float = 0.0
    noise_std: float = 0.0

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=float)
        self.optimum = np.asarray(self.optimum, dtype=float)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("matrix must be square")
        if self.optimum.shape != (self.matrix.shape[0],):
            raise ValueError("optimum must be a vector matching the matrix dimension")
        if not np.allclose(self.matrix, self.matrix.T, atol=1e-10):
            raise ValueError("matrix must be symmetric")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")

    @classmethod
    def random(
        cls,
        dim: int,
        condition_number: float = 10.0,
        noise_std: float = 0.1,
        f_inf: float = 0.0,
        rng=None,
    ) -> "QuadraticObjective":
        """Random quadratic with eigenvalues log-spaced in [1/κ, 1] (so L = 1)."""
        if dim < 1:
            raise ValueError("dim must be positive")
        if condition_number < 1:
            raise ValueError("condition_number must be >= 1")
        gen = check_random_state(rng)
        eigs = np.logspace(-np.log10(condition_number), 0.0, dim)
        q, _ = np.linalg.qr(gen.normal(size=(dim, dim)))
        matrix = q @ np.diag(eigs) @ q.T
        matrix = 0.5 * (matrix + matrix.T)
        optimum = gen.normal(size=dim)
        return cls(matrix=matrix, optimum=optimum, f_inf=f_inf, noise_std=noise_std)

    @property
    def dim(self) -> int:
        return self.matrix.shape[0]

    @property
    def lipschitz_constant(self) -> float:
        """L = largest eigenvalue of A."""
        return float(np.linalg.eigvalsh(self.matrix).max())

    @property
    def gradient_noise_variance(self) -> float:
        """σ² = E‖ζ‖² = d · noise_std² (the constant in Theorem 1)."""
        return self.dim * self.noise_std**2

    def value(self, x: np.ndarray) -> float:
        """Exact objective value F(x)."""
        diff = np.asarray(x, dtype=float) - self.optimum
        return float(0.5 * diff @ self.matrix @ diff + self.f_inf)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Exact gradient ∇F(x) = A (x - x*)."""
        return self.matrix @ (np.asarray(x, dtype=float) - self.optimum)

    def stochastic_gradient(self, x: np.ndarray, rng=None) -> np.ndarray:
        """Unbiased noisy gradient ∇F(x) + ζ with ζ ~ N(0, noise_std² I)."""
        gen = check_random_state(rng)
        grad = self.gradient(x)
        if self.noise_std > 0:
            grad = grad + gen.normal(0.0, self.noise_std, size=self.dim)
        return grad

    def gradient_norm_squared(self, x: np.ndarray) -> float:
        g = self.gradient(x)
        return float(g @ g)

    # -- stacked (worker-bank) evaluation -----------------------------------
    def stacked_values(self, X: np.ndarray) -> np.ndarray:
        """Exact objective values of m stacked iterates: ``(m, d) -> (m,)``.

        Row i reproduces :meth:`value` on ``X[i]`` with the identical
        vec-mat-vec evaluation order, so losses logged by the loop and bank
        backends agree to the last bit.
        """
        X = np.asarray(X, dtype=float)
        return np.array([self.value(x) for x in X])

    def stacked_stochastic_gradients(self, X: np.ndarray, rngs: Sequence | None = None) -> np.ndarray:
        """Per-worker noisy gradients for m stacked iterates: ``(m, d)``.

        ``rngs[i]`` is worker i's noise stream; row i equals
        :meth:`stochastic_gradient` on ``(X[i], rngs[i])``, consuming each
        stream exactly as m independent calls would.  The d×d products stay
        per-row on purpose: BLAS accumulates GEMV and GEMM differently, and
        byte-identical cross-backend trajectories outrank the negligible
        batched-matmul win at these dimensions — the bank's speedup comes
        from the single stacked autograd/SGD step, not from this d×d matvec.
        """
        X = np.asarray(X, dtype=float)
        if rngs is None:
            rngs = [None] * len(X)
        if len(rngs) != len(X):
            raise ValueError(f"{len(X)} stacked iterates but {len(rngs)} RNG streams")
        return np.stack(
            [self.stochastic_gradient(x, rng) for x, rng in zip(X, rngs)]
        )


class NoisyQuadraticProblem(Module):
    """Module wrapper exposing a quadratic objective through the model interface.

    The trainer calls ``model.loss(x_batch, y_batch)``; for quadratic problems
    the "data batch" is ignored and the stochastic gradient noise is injected
    directly, with variance matching ``objective.noise_std``.  The loss tensor
    returned is built so that ``backward()`` deposits exactly the stochastic
    gradient into the parameter, which lets the standard SGD optimizer drive
    the analytic problem.
    """

    def __init__(self, objective: QuadraticObjective, x0: np.ndarray | None = None, rng=None):
        super().__init__()
        self.objective = objective
        start = np.zeros(objective.dim) if x0 is None else np.asarray(x0, dtype=float).copy()
        if start.shape != (objective.dim,):
            raise ValueError("x0 must match the objective dimension")
        self.x = Tensor(start, requires_grad=True)
        self._rng = check_random_state(rng)
        #: Per-worker noise streams for the bank path (wired by
        #: ``repro.nn.bank.attach_bank_streams`` at backend construction).
        self._bank_rngs: "list | None" = None

    def forward(self, _: Tensor) -> Tensor:  # pragma: no cover - not meaningful here
        return self.x

    def loss(self, x_batch=None, y_batch=None) -> Tensor:
        """Return a scalar whose gradient w.r.t. ``self.x`` is a stochastic gradient.

        We construct ``loss = g_noisy · x`` where ``g_noisy`` is held constant,
        plus a detached offset so that ``loss.item()`` equals the *exact*
        objective value (useful for logging).  ``backward()`` then yields
        exactly ``g_noisy`` as the parameter gradient.
        """
        x_val = self.x.data
        g_noisy = self.objective.stochastic_gradient(x_val, self._rng)
        exact_value = self.objective.value(x_val)
        # Linear surrogate: gradient equals g_noisy, value equals exact F(x).
        offset = exact_value - float(g_noisy @ x_val)
        return (self.x * Tensor(g_noisy)).sum() + Tensor(np.array(offset))

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        return params[f"{prefix}x"]

    def bank_loss(self, x_batch=None, y_batch=None, params=None) -> Tensor:
        """Per-worker surrogate losses ``(m,)`` over stacked iterates.

        Entry i mirrors :meth:`loss` at worker i's iterate with worker i's
        noise stream: the gradient of ``losses.sum()`` w.r.t. the stacked
        parameter is exactly the m noisy gradients, and each loss value is
        the exact objective value F(x_i).
        """
        X = params["x"]  # (m, d) stacked iterates
        m = X.shape[0]
        rngs = self._bank_rngs
        if self.objective.noise_std > 0:
            if rngs is None or len(rngs) != m:
                raise RuntimeError(
                    "NoisyQuadraticProblem bank_loss needs one noise stream per "
                    "worker; the worker-bank backend attaches them at "
                    "construction (see repro.nn.bank.attach_bank_streams)"
                )
        else:
            rngs = [None] * m
        x_vals = X.data
        g_noisy = self.objective.stacked_stochastic_gradients(x_vals, rngs)
        values = self.objective.stacked_values(x_vals)
        offsets = values - np.array(
            [float(g @ xv) for g, xv in zip(g_noisy, x_vals)]
        )
        return (X * Tensor(g_noisy)).sum(axis=1) + Tensor(offsets)

    def _consumes_stream(self) -> bool:
        return self.objective.noise_std > 0

    def current_value(self) -> float:
        """Exact objective value at the current iterate."""
        return self.objective.value(self.x.data)

    def current_gradient_norm(self) -> float:
        """Exact ‖∇F(x)‖ at the current iterate."""
        return float(np.linalg.norm(self.objective.gradient(self.x.data)))
