"""Multi-layer perceptrons, including the vgg-lite / resnet-lite stand-ins.

The names ``vgg_lite_mlp`` / ``resnet_lite_mlp`` are deliberate: the paper
distinguishes VGG-16 from ResNet-50 only through their communication /
computation profiles, so the stand-ins differ in width (parameter count,
which drives the communication delay ``D0`` assigned by the experiment
configs) rather than trying to mimic the exact architectures.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm1d, Dropout, Linear, Module, ReLU, Residual, Sequential, Tanh
from repro.nn.losses import bank_cross_entropy, cross_entropy
from repro.nn.tensor import Tensor
from repro.utils.seeding import SeedSequence, check_random_state

__all__ = ["MLP", "build_mlp", "vgg_lite_mlp", "resnet_lite_mlp"]


class MLP(Module):
    """Fully connected classifier with configurable hidden sizes.

    Parameters
    ----------
    n_features, n_classes:
        Input dimensionality and number of output classes.
    hidden_sizes:
        Sequence of hidden-layer widths, e.g. ``(128, 64)``.
    activation:
        ``"relu"`` or ``"tanh"``.
    dropout:
        Dropout probability applied after each hidden activation (0 disables).
    batch_norm:
        Whether to insert BatchNorm1d after each hidden linear layer.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden_sizes: tuple[int, ...] = (128,),
        activation: str = "relu",
        dropout: float = 0.0,
        batch_norm: bool = False,
        rng=None,
    ):
        super().__init__()
        if activation not in ("relu", "tanh"):
            raise ValueError(f"unknown activation {activation!r}")
        gen = check_random_state(rng)
        seeds = SeedSequence(int(gen.integers(0, 2**31 - 1)))

        layers: list[Module] = []
        prev = n_features
        for width in hidden_sizes:
            layers.append(Linear(prev, width, rng=seeds.generator()))
            if batch_norm:
                layers.append(BatchNorm1d(width))
            layers.append(ReLU() if activation == "relu" else Tanh())
            if dropout > 0:
                layers.append(Dropout(dropout, rng=seeds.generator()))
            prev = width
        layers.append(Linear(prev, n_classes, rng=seeds.generator()))

        self.n_features = n_features
        self.n_classes = n_classes
        self.hidden_sizes = tuple(hidden_sizes)
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)

    def loss(self, x, y: np.ndarray) -> Tensor:
        return cross_entropy(self(x), y)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        x = self._as_bank_input(x)
        return self.net.bank_forward(x, params, f"{prefix}net.")

    def bank_loss(self, x, y: np.ndarray, params) -> Tensor:
        return bank_cross_entropy(self.bank_forward(x, params), y)


def build_mlp(n_features: int, n_classes: int, hidden_sizes=(128,), rng=None, **kwargs) -> MLP:
    """Convenience constructor used by the model registry."""
    return MLP(n_features, n_classes, hidden_sizes=tuple(hidden_sizes), rng=rng, **kwargs)


def vgg_lite_mlp(n_features: int = 256, n_classes: int = 10, rng=None) -> MLP:
    """Communication-heavy stand-in for VGG-16: wide layers, many parameters."""
    return MLP(n_features, n_classes, hidden_sizes=(512, 512, 256), rng=rng)


def resnet_lite_mlp(n_features: int = 256, n_classes: int = 10, rng=None) -> "ResidualMLP":
    """Compute-heavy stand-in for ResNet-50: narrow residual blocks."""
    return ResidualMLP(n_features, n_classes, width=96, n_blocks=3, rng=rng)


class ResidualMLP(Module):
    """MLP whose hidden layers are residual blocks ``x + ReLU(Linear(x))``."""

    def __init__(self, n_features: int, n_classes: int, width: int = 96, n_blocks: int = 3, rng=None):
        super().__init__()
        gen = check_random_state(rng)
        seeds = SeedSequence(int(gen.integers(0, 2**31 - 1)))
        self.n_features = n_features
        self.n_classes = n_classes
        self.stem = Linear(n_features, width, rng=seeds.generator())
        blocks: list[Module] = []
        for _ in range(n_blocks):
            blocks.append(
                Residual(Sequential(Linear(width, width, rng=seeds.generator()), ReLU()))
            )
        self.blocks = Sequential(*blocks)
        self.head = Linear(width, n_classes, rng=seeds.generator())

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        h = self.stem(x).relu()
        h = self.blocks(h)
        return self.head(h)

    def loss(self, x, y: np.ndarray) -> Tensor:
        return cross_entropy(self(x), y)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        x = self._as_bank_input(x)
        h = self.stem.bank_forward(x, params, f"{prefix}stem.").relu()
        h = self.blocks.bank_forward(h, params, f"{prefix}blocks.")
        return self.head.bank_forward(h, params, f"{prefix}head.")

    def bank_loss(self, x, y: np.ndarray, params) -> Tensor:
        return bank_cross_entropy(self.bank_forward(x, params), y)
