"""Named model registry used by the experiment configs and example scripts."""

from __future__ import annotations

from typing import Callable

from repro.models.cnn import resnet_lite_cnn, vgg_lite_cnn
from repro.models.linear import LinearRegressionModel, SoftmaxRegression
from repro.models.mlp import MLP, resnet_lite_mlp, vgg_lite_mlp

__all__ = ["build_model", "available_models", "register_model"]

_BUILDERS: dict[str, Callable] = {}


def register_model(name: str, builder: Callable) -> None:
    """Register a model builder ``(**kwargs) -> Module`` under ``name``."""
    if name in _BUILDERS:
        raise KeyError(f"model {name!r} already registered")
    _BUILDERS[name] = builder


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str, **kwargs):
    """Instantiate a registered model by name.

    Examples
    --------
    >>> model = build_model("softmax", n_features=16, n_classes=4, rng=0)
    >>> model.num_parameters() > 0
    True
    """
    try:
        builder = _BUILDERS[name]
    except KeyError as err:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}") from err
    return builder(**kwargs)


register_model("softmax", lambda **kw: SoftmaxRegression(**kw))
register_model("linear_regression", lambda **kw: LinearRegressionModel(**kw))
register_model("mlp", lambda **kw: MLP(**kw))
register_model("vgg_lite_mlp", lambda **kw: vgg_lite_mlp(**kw))
register_model("resnet_lite_mlp", lambda **kw: resnet_lite_mlp(**kw))
register_model("vgg_lite_cnn", lambda **kw: vgg_lite_cnn(**kw))
register_model("resnet_lite_cnn", lambda **kw: resnet_lite_cnn(**kw))
