"""Named model registry used by the experiment configs and example scripts.

Backed by the shared :data:`repro.api.registries.MODELS` registry.  Builders
are registered with *inspectable signatures* so the harness can hand every
builder one superset of keyword arguments (``n_features``, ``n_classes``,
``hidden_sizes``, ``rng``) and let :func:`repro.api.filter_kwargs` drop the
ones a particular architecture does not take.

The CNN builders additionally adapt their input geometry: given a flat
feature count they infer an ``(in_channels, image_size)`` pair so any
registered dataset — not just the 3×8×8 synthetic CIFAR stand-in — can feed
them.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.api.registries import MODELS
from repro.models.cnn import SmallCNN
from repro.models.linear import LinearRegressionModel, SoftmaxRegression
from repro.models.mlp import MLP, resnet_lite_mlp, vgg_lite_mlp

__all__ = ["build_model", "available_models", "register_model", "infer_image_geometry"]


def register_model(name: str, builder: Callable, *, overwrite: bool = False) -> None:
    """Register a model builder ``(**kwargs) -> Module`` under ``name``.

    Raises ``ValueError`` (listing the registered names) on duplicates unless
    ``overwrite=True``.
    """
    MODELS.register(name, builder, overwrite=overwrite)


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return MODELS.names()


def build_model(name: str, **kwargs):
    """Instantiate a registered model by name.

    Examples
    --------
    >>> model = build_model("softmax", n_features=16, n_classes=4, rng=0)
    >>> model.num_parameters() > 0
    True
    """
    return MODELS.build(name, **kwargs)


def infer_image_geometry(n_features: int) -> tuple[int, int]:
    """Infer an ``(in_channels, image_size)`` pair from a flat feature count.

    Tries RGB-like 3-channel square images first, then single-channel ones;
    raises ``ValueError`` when ``n_features`` fits neither, so CNN models fail
    with a clear message instead of a reshape error deep in the forward pass.
    """
    for channels in (3, 1):
        if n_features % channels:
            continue
        size = math.isqrt(n_features // channels)
        if size >= 2 and channels * size * size == n_features:
            return channels, size
    raise ValueError(
        f"cannot view {n_features} features as a square image "
        f"(need 3*s*s or 1*s*s with s >= 2); use an MLP model or adjust n_features"
    )


def _adaptive_cnn(channels: tuple[int, ...]) -> Callable:
    def build(
        n_features: int | None = None,
        n_classes: int = 10,
        image_size: int | None = None,
        in_channels: int | None = None,
        rng=None,
    ) -> SmallCNN:
        # Explicit geometry wins; otherwise infer it from the flat feature
        # count; otherwise fall back to the 3×8×8 synthetic-CIFAR default.
        if image_size is None and in_channels is None and n_features is not None:
            in_channels, image_size = infer_image_geometry(n_features)
        in_channels = 3 if in_channels is None else in_channels
        image_size = 8 if image_size is None else image_size
        if n_features is not None and in_channels * image_size * image_size != n_features:
            raise ValueError(
                f"CNN geometry {in_channels}x{image_size}x{image_size} does not match "
                f"the {n_features} flat features of the dataset"
            )
        # Drop pooling stages that would shrink the image below 1×1.
        max_stages = max(1, int(math.log2(image_size)))
        return SmallCNN(
            in_channels=in_channels,
            image_size=image_size,
            channels=channels[:max_stages],
            n_classes=n_classes,
            rng=rng,
        )

    return build


register_model("softmax", SoftmaxRegression)
register_model("linear_regression", LinearRegressionModel)
register_model("mlp", MLP)
register_model("vgg_lite_mlp", vgg_lite_mlp)
register_model("resnet_lite_mlp", resnet_lite_mlp)
register_model("vgg_lite_cnn", _adaptive_cnn(channels=(16, 32)))
register_model("resnet_lite_cnn", _adaptive_cnn(channels=(8, 8)))
