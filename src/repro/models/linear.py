"""Linear models: softmax (multinomial logistic) regression and linear regression.

These are the cheapest trainable models in the zoo and the default workload
for the fast benchmark targets: their loss surface is convex, so the
error-floor behaviour predicted by Theorem 1 is clean and easy to verify.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.losses import bank_cross_entropy, bank_mse_loss, cross_entropy, mse_loss
from repro.nn.tensor import Tensor

__all__ = ["SoftmaxRegression", "LinearRegressionModel"]


class SoftmaxRegression(Module):
    """Multinomial logistic regression: a single linear layer + cross-entropy."""

    def __init__(self, n_features: int, n_classes: int, rng=None):
        super().__init__()
        self.n_features = n_features
        self.n_classes = n_classes
        self.fc = Linear(n_features, n_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.fc(x)

    def loss(self, x, y: np.ndarray) -> Tensor:
        """Cross-entropy loss of a batch (the trainer's standard interface)."""
        return cross_entropy(self(x), y)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        x = self._as_bank_input(x)
        return self.fc.bank_forward(x, params, f"{prefix}fc.")

    def bank_loss(self, x, y: np.ndarray, params) -> Tensor:
        return bank_cross_entropy(self.bank_forward(x, params), y)


class LinearRegressionModel(Module):
    """Least-squares linear regression: a single linear layer + MSE."""

    def __init__(self, n_features: int, n_outputs: int = 1, rng=None):
        super().__init__()
        self.n_features = n_features
        self.n_outputs = n_outputs
        self.fc = Linear(n_features, n_outputs, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.fc(x)

    def loss(self, x, y) -> Tensor:
        pred = self(x)
        target = np.asarray(y, dtype=float)
        if target.ndim == 1:
            target = target.reshape(-1, 1)
        return mse_loss(pred, target)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        x = self._as_bank_input(x)
        return self.fc.bank_forward(x, params, f"{prefix}fc.")

    def bank_loss(self, x, y, params) -> Tensor:
        pred = self.bank_forward(x, params)
        target = np.asarray(y, dtype=float)
        if target.ndim == 2:  # (m, B) targets -> (m, B, 1)
            target = target[..., None]
        return bank_mse_loss(pred, target)
