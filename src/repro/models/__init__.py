"""Model zoo: classification networks and synthetic objectives.

The paper's two workloads differ chiefly in their communication/computation
ratio α = D/Y (Figure 8): VGG-16 is communication-heavy (α ≈ 4), ResNet-50
is compute-heavy (α < 1).  The zoo provides NumPy-trainable stand-ins —
``vgg_lite`` (a wide MLP/CNN with a large parameter count relative to its
FLOPs) and ``resnet_lite`` (a narrow residual network) — plus convex
objectives (quadratics and logistic regression) with analytically known
Lipschitz constants and gradient-noise levels for validating the theory.
"""

from repro.models.linear import SoftmaxRegression, LinearRegressionModel
from repro.models.mlp import MLP, build_mlp, vgg_lite_mlp, resnet_lite_mlp
from repro.models.cnn import SmallCNN, vgg_lite_cnn, resnet_lite_cnn
from repro.models.quadratic import QuadraticObjective, NoisyQuadraticProblem
from repro.models.registry import build_model, available_models

__all__ = [
    "SoftmaxRegression",
    "LinearRegressionModel",
    "MLP",
    "build_mlp",
    "vgg_lite_mlp",
    "resnet_lite_mlp",
    "SmallCNN",
    "vgg_lite_cnn",
    "resnet_lite_cnn",
    "QuadraticObjective",
    "NoisyQuadraticProblem",
    "build_model",
    "available_models",
]
