"""Small convolutional networks for the synthetic image-classification tasks.

Kept deliberately tiny so they are trainable in seconds with the NumPy
backend; the distinction that matters for the paper's experiments — the
communication/computation ratio of the model — is configured at the
experiment level, not baked into the architecture.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, Module, ReLU, Sequential
from repro.nn.losses import bank_cross_entropy, cross_entropy
from repro.nn.tensor import Tensor
from repro.utils.seeding import SeedSequence, check_random_state

__all__ = ["SmallCNN", "vgg_lite_cnn", "resnet_lite_cnn"]


class SmallCNN(Module):
    """Conv → ReLU → Pool stages followed by a linear classifier head.

    Parameters
    ----------
    in_channels, image_size:
        Geometry of the (square) input images, NCHW layout.
    channels:
        Output channel counts of the successive conv stages.
    n_classes:
        Number of output classes.
    pool:
        ``"max"`` or ``"avg"`` pooling after each stage.
    """

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 8,
        channels: tuple[int, ...] = (8, 16),
        n_classes: int = 10,
        pool: str = "max",
        rng=None,
    ):
        super().__init__()
        if pool not in ("max", "avg"):
            raise ValueError(f"pool must be 'max' or 'avg', got {pool!r}")
        gen = check_random_state(rng)
        seeds = SeedSequence(int(gen.integers(0, 2**31 - 1)))

        stages: list[Module] = []
        prev_c = in_channels
        size = image_size
        for c in channels:
            stages.append(Conv2d(prev_c, c, kernel_size=3, padding=1, rng=seeds.generator()))
            stages.append(ReLU())
            stages.append(MaxPool2d(2) if pool == "max" else AvgPool2d(2))
            prev_c = c
            size //= 2
            if size < 1:
                raise ValueError("image_size too small for the number of pooling stages")
        stages.append(Flatten())
        self.features = Sequential(*stages)
        self.classifier = Linear(prev_c * size * size, n_classes, rng=seeds.generator())
        self.in_channels = in_channels
        self.image_size = image_size
        self.n_classes = n_classes

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            # Accept flat inputs and reshape to NCHW for convenience.
            n = x.shape[0]
            x = x.reshape(n, self.in_channels, self.image_size, self.image_size)
        return self.classifier(self.features(x))

    def loss(self, x, y: np.ndarray) -> Tensor:
        return cross_entropy(self(x), y)

    def bank_forward(self, x: Tensor, params, prefix: str = "") -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim == 3:
            # Stacked flat inputs (m, B, F) -> stacked NCHW, mirroring forward.
            m, b = x.shape[0], x.shape[1]
            x = x.reshape(m, b, self.in_channels, self.image_size, self.image_size)
        elif x.ndim != 5:
            raise ValueError(f"SmallCNN bank_forward expects (m, B, F) or (m, B, C, H, W), got {x.shape}")
        h = self.features.bank_forward(x, params, f"{prefix}features.")
        return self.classifier.bank_forward(h, params, f"{prefix}classifier.")

    def bank_loss(self, x, y: np.ndarray, params) -> Tensor:
        return bank_cross_entropy(self.bank_forward(x, params), y)


def vgg_lite_cnn(n_classes: int = 10, image_size: int = 8, rng=None) -> SmallCNN:
    """Wider CNN (more parameters → larger communication payload)."""
    return SmallCNN(in_channels=3, image_size=image_size, channels=(16, 32), n_classes=n_classes, rng=rng)


def resnet_lite_cnn(n_classes: int = 10, image_size: int = 8, rng=None) -> SmallCNN:
    """Narrower CNN (fewer parameters → smaller communication payload)."""
    return SmallCNN(in_channels=3, image_size=image_size, channels=(8, 8), n_classes=n_classes, rng=rng)
