"""Core contribution: error-runtime theory, AdaComm, and the PASGD trainer.

* ``theory`` — Theorem 1's error-runtime bound, Theorem 2's optimal τ*, and
  Theorem 3's convergence-condition checks for variable (τ, η) sequences.
* ``adacomm`` — the communication-period update rules (basic eq. 17,
  saturation-refined eq. 18, learning-rate-coupled eq. 19/20) and the
  :class:`AdaCommController` that applies them every T0 seconds of simulated
  wall-clock time.
* ``schedules`` — the ``CommunicationSchedule`` interface with fixed-τ,
  explicit-sequence, and AdaComm-driven implementations.
* ``trainer`` — :class:`PASGDTrainer`, which drives a simulated cluster under
  a communication schedule and an LR schedule and records loss/accuracy
  versus iterations *and* simulated wall-clock time.
"""

from repro.core.theory import (
    TheoreticalConstants,
    error_runtime_bound,
    error_iteration_bound,
    optimal_communication_period,
    adacomm_convergence_conditions,
    variable_tau_bound,
)
from repro.core.adacomm import (
    AdaCommConfig,
    AdaCommController,
    basic_tau_update,
    refined_tau_update,
    lr_coupled_tau_update,
    estimate_initial_tau,
)
from repro.core.schedules import (
    CommunicationSchedule,
    FixedCommunicationSchedule,
    SequenceCommunicationSchedule,
    AdaCommSchedule,
)
from repro.core.trainer import PASGDTrainer, TrainerConfig

__all__ = [
    "TheoreticalConstants",
    "error_runtime_bound",
    "error_iteration_bound",
    "optimal_communication_period",
    "adacomm_convergence_conditions",
    "variable_tau_bound",
    "AdaCommConfig",
    "AdaCommController",
    "basic_tau_update",
    "refined_tau_update",
    "lr_coupled_tau_update",
    "estimate_initial_tau",
    "CommunicationSchedule",
    "FixedCommunicationSchedule",
    "SequenceCommunicationSchedule",
    "AdaCommSchedule",
    "PASGDTrainer",
    "TrainerConfig",
]
