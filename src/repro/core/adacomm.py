"""ADACOMM: the adaptive communication-period strategy (Section 4).

The controller divides training into wall-clock intervals of length ``T0``
and recomputes the communication period at each interval boundary from the
observed training loss (and, optionally, the current learning rate):

* basic rule (eq. 17):      τ_l = ceil( sqrt(F_l / F_0) · τ_0 )
* refined rule (eq. 18):    if the basic rule fails to strictly decrease τ,
                            multiply the previous τ by γ < 1 instead
                            (the paper uses γ = 1/2)
* LR-coupled rule (eq. 20): τ_l = ceil( sqrt( (η_0/η_l) · F_l / F_0 ) · τ_0 )
  (the practical ``η L ≈ 1`` approximation of eq. 19, which avoids the
  unreasonably large τ values the raw (η_0/η_l)^{3/2} coupling produces).

``estimate_initial_tau`` reproduces the paper's heuristic of grid-searching
τ_0 over one short trial per candidate, and also exposes the theory-driven
alternative based on Theorem 2 when the problem constants are known.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.theory import TheoreticalConstants, optimal_communication_period
from repro.utils.logging import get_logger

logger = get_logger("core.adacomm")

__all__ = [
    "basic_tau_update",
    "refined_tau_update",
    "lr_coupled_tau_update",
    "estimate_initial_tau",
    "AdaCommConfig",
    "AdaCommController",
]


def basic_tau_update(initial_loss: float, current_loss: float, initial_tau: int) -> int:
    """Basic update rule (eq. 17): ``τ_l = ceil( sqrt(F_l / F_0) · τ_0 )``.

    The returned value is always at least 1.
    """
    _validate_losses(initial_loss, current_loss)
    if initial_tau < 1:
        raise ValueError(f"initial_tau must be >= 1, got {initial_tau}")
    ratio = math.sqrt(current_loss / initial_loss)
    return max(1, math.ceil(ratio * initial_tau))


def lr_coupled_tau_update(
    initial_loss: float,
    current_loss: float,
    initial_tau: int,
    initial_lr: float,
    current_lr: float,
) -> int:
    """Learning-rate-coupled update rule (eq. 20).

    ``τ_l = ceil( sqrt( (η_0 / η_l) · F_l / F_0 ) · τ_0 )``; a smaller
    learning rate tolerates a larger communication period.
    """
    _validate_losses(initial_loss, current_loss)
    if initial_tau < 1:
        raise ValueError(f"initial_tau must be >= 1, got {initial_tau}")
    if initial_lr <= 0 or current_lr <= 0:
        raise ValueError("learning rates must be positive")
    ratio = math.sqrt((initial_lr / current_lr) * (current_loss / initial_loss))
    return max(1, math.ceil(ratio * initial_tau))


def refined_tau_update(
    initial_loss: float,
    current_loss: float,
    initial_tau: int,
    previous_tau: int,
    gamma: float = 0.5,
    initial_lr: float | None = None,
    current_lr: float | None = None,
    slack: int = 0,
) -> int:
    """Refined update rule (eq. 18), optionally LR-coupled (eq. 20).

    Computes the candidate τ from the basic (or LR-coupled) rule; if the
    candidate is not strictly smaller than ``previous_tau`` (minus an optional
    ``slack``), the period is decayed multiplicatively to ``γ · previous_tau``
    instead, which prevents τ from stalling when the training loss plateaus.
    """
    if previous_tau < 1:
        raise ValueError(f"previous_tau must be >= 1, got {previous_tau}")
    if not 0.0 < gamma < 1.0:
        raise ValueError(f"gamma must be in (0, 1), got {gamma}")
    if slack < 0:
        raise ValueError(f"slack must be non-negative, got {slack}")

    if initial_lr is not None and current_lr is not None:
        candidate = lr_coupled_tau_update(
            initial_loss, current_loss, initial_tau, initial_lr, current_lr
        )
    else:
        candidate = basic_tau_update(initial_loss, current_loss, initial_tau)

    if candidate + slack < previous_tau:
        return candidate
    return max(1, math.floor(gamma * previous_tau))


def _validate_losses(initial_loss: float, current_loss: float) -> None:
    # NaN passes every ordered comparison's False branch (nan < 0 is False),
    # so finiteness is checked explicitly — a NaN that slipped through here
    # used to surface as ``math.ceil(nan * tau)`` deep in the update rules.
    if not math.isfinite(initial_loss) or initial_loss <= 0:
        raise ValueError(f"initial loss must be positive and finite, got {initial_loss}")
    if not math.isfinite(current_loss) or current_loss < 0:
        raise ValueError(f"current loss must be non-negative and finite, got {current_loss}")


def estimate_initial_tau(
    candidate_taus: list[int] | None = None,
    trial_losses: dict[int, float] | None = None,
    constants: TheoreticalConstants | None = None,
    lr: float | None = None,
    interval_length: float | None = None,
    max_tau: int = 100,
) -> int:
    """Choose the initial communication period τ_0.

    Two modes, mirroring Section 4.2:

    * **grid search** — pass ``trial_losses`` mapping each candidate τ to the
      training loss reached after a short trial run; the τ with the lowest
      loss wins (ties go to the smaller τ).
    * **theory-driven** — pass problem ``constants``, the learning rate, and
      the interval length T0; Theorem 2's τ* for the first interval is used.

    The result is clipped to ``[1, max_tau]``.
    """
    if trial_losses:
        candidates = sorted(trial_losses)
        if candidate_taus is not None:
            missing = set(candidate_taus) - set(candidates)
            if missing:
                raise ValueError(f"trial losses missing for candidates {sorted(missing)}")
            candidates = sorted(candidate_taus)
        best = min(candidates, key=lambda t: (trial_losses[t], t))
        return int(min(max(best, 1), max_tau))

    if constants is not None and lr is not None and interval_length is not None:
        tau_star = optimal_communication_period(constants, lr, interval_length)
        return int(min(max(1, math.ceil(tau_star)), max_tau))

    raise ValueError(
        "provide either trial_losses (grid-search mode) or constants+lr+interval_length "
        "(theory mode) to estimate the initial communication period"
    )


@dataclass
class AdaCommConfig:
    """Configuration of the AdaComm controller.

    Attributes
    ----------
    initial_tau:
        τ_0 for the first interval (from grid search or Theorem 2).
    interval_length:
        T0, the wall-clock length of each adaptation interval in (simulated)
        seconds.  The paper uses 60 s (~10 epochs at τ_0) on its testbed.
    gamma:
        Multiplicative decay applied when the update rule fails to strictly
        decrease τ (eq. 18); the paper recommends 1/2.
    couple_lr:
        Whether to use the LR-coupled rule (eq. 20) instead of the basic rule.
    slack:
        Optional slack ``s`` in the "strictly less than" test of eq. 18.
    min_tau, max_tau:
        Clamp range for the adapted period.
    """

    initial_tau: int = 10
    interval_length: float = 60.0
    gamma: float = 0.5
    couple_lr: bool = True
    slack: int = 0
    min_tau: int = 1
    max_tau: int = 1000

    def __post_init__(self) -> None:
        if self.initial_tau < 1:
            raise ValueError("initial_tau must be >= 1")
        if self.interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if not 0.0 < self.gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if self.slack < 0:
            raise ValueError("slack must be non-negative")
        if not 1 <= self.min_tau <= self.max_tau:
            raise ValueError("require 1 <= min_tau <= max_tau")
        if self.initial_tau > self.max_tau:
            raise ValueError("initial_tau exceeds max_tau")


@dataclass
class AdaCommController:
    """Stateful interval-based communication-period adapter (Section 4).

    The trainer drives the controller with two calls:

    * :meth:`current_tau` — the period to use for the next local-update
      period;
    * :meth:`observe` — after every averaging step, report the simulated
      wall-clock time, the training loss of the synchronized model, and the
      learning rate in force.  When the wall clock crosses an interval
      boundary the controller recomputes τ using the refined rule.
    """

    config: AdaCommConfig
    _tau: int = field(init=False)
    _initial_loss: float | None = field(default=None, init=False)
    _initial_lr: float | None = field(default=None, init=False)
    _next_boundary: float = field(init=False)
    _interval_index: int = field(default=0, init=False)
    tau_history: list[tuple[float, int]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._tau = self.config.initial_tau
        self._next_boundary = self.config.interval_length
        self.tau_history.append((0.0, self._tau))

    @property
    def interval_index(self) -> int:
        """Index l of the current adaptation interval."""
        return self._interval_index

    def current_tau(self) -> int:
        """Communication period to use right now."""
        return self._tau

    def observe(self, wall_time: float, train_loss: float, lr: float) -> int:
        """Report training progress; returns the (possibly updated) τ.

        The first observation fixes the reference loss F_0 and learning rate
        η_0 used by the update rules.  Subsequent observations only trigger a
        recomputation when ``wall_time`` has crossed the next interval
        boundary; multiple boundaries may be crossed at once if a single
        period was very long, in which case the rule is applied once with the
        latest loss (matching an implementation that only wakes up at
        averaging steps).
        """
        if wall_time < 0:
            raise ValueError("wall_time must be non-negative")
        if not math.isfinite(train_loss):
            # A diverging run reports NaN (or inf) losses; adapting on one
            # would poison every later τ (and ceil(nan·τ) raises).  Keep the
            # previous period and wait for a finite observation — the next
            # boundary crossing adapts with whatever loss is reported then.
            logger.warning(
                "ignoring non-finite training loss %r at t=%.3f; keeping tau=%d",
                train_loss,
                wall_time,
                self._tau,
            )
            return self._tau
        if train_loss < 0:
            raise ValueError("train_loss must be non-negative")
        if lr <= 0:
            raise ValueError("lr must be positive")

        if self._initial_loss is None:
            # Guard against a zero initial loss (already converged): fall back to 1.
            self._initial_loss = max(train_loss, 1e-12)
            self._initial_lr = lr
            return self._tau

        if wall_time < self._next_boundary:
            return self._tau

        # Crossed one or more interval boundaries: adapt once with the latest loss.
        while wall_time >= self._next_boundary:
            self._next_boundary += self.config.interval_length
            self._interval_index += 1

        cfg = self.config
        new_tau = refined_tau_update(
            initial_loss=self._initial_loss,
            current_loss=max(train_loss, 0.0),
            initial_tau=cfg.initial_tau,
            previous_tau=self._tau,
            gamma=cfg.gamma,
            initial_lr=self._initial_lr if cfg.couple_lr else None,
            current_lr=lr if cfg.couple_lr else None,
            slack=cfg.slack,
        )
        self._tau = int(min(max(new_tau, cfg.min_tau), cfg.max_tau))
        self.tau_history.append((wall_time, self._tau))
        return self._tau

    def reset(self) -> None:
        """Return the controller to its initial state."""
        self._tau = self.config.initial_tau
        self._initial_loss = None
        self._initial_lr = None
        self._next_boundary = self.config.interval_length
        self._interval_index = 0
        self.tau_history = [(0.0, self._tau)]
