"""Theoretical results of the paper in executable form.

Implements:

* Theorem 1 (eq. 13): the error-runtime bound for PASGD with fixed τ —
  ``2(F(x1)-Finf)/(ηT) · (Y + D/τ) + ηLσ²/m + η²L²σ²(τ-1)``.
* Lemma 1 (eq. 26): the error-vs-iterations bound it derives from.
* Theorem 2 (eq. 14): the bound-minimizing communication period
  ``τ* = sqrt(2(F(x1)-Finf)D / (η³L²σ²T))``.
* Theorem 3 (eq. 21): the sufficient conditions on {(η_r, τ_r)} for
  convergence of the adaptive scheme, plus the non-asymptotic bound for a
  variable-τ sequence (eq. 66).
* The learning-rate condition ``ηL + η²L²τ(τ-1) ≤ 1`` under which Theorem 1
  holds.

These functions are used three ways: by the AdaComm controller (through the
practical update rules in ``repro.core.adacomm``), by the Figure-6 benchmark
(plotting the bound), and by the test suite (verifying convexity of the bound
in τ, correctness of the minimizer, etc.).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "TheoreticalConstants",
    "learning_rate_condition",
    "error_iteration_bound",
    "error_runtime_bound",
    "optimal_communication_period",
    "adacomm_convergence_conditions",
    "variable_tau_bound",
]


@dataclass(frozen=True)
class TheoreticalConstants:
    """Problem constants appearing in the convergence analysis.

    Attributes
    ----------
    initial_gap:
        ``F(x1) − F_inf``, the initial optimality gap.
    lipschitz:
        ``L``, the gradient Lipschitz constant (Assumption 1).
    gradient_variance:
        ``σ²``, the variance bound of mini-batch stochastic gradients
        (Assumption 3).
    n_workers:
        ``m``, number of worker nodes.
    compute_time:
        ``Y``, the (mean) local computation time per mini-batch, seconds.
    communication_delay:
        ``D``, the (mean) all-node broadcast delay, seconds.
    """

    initial_gap: float
    lipschitz: float
    gradient_variance: float
    n_workers: int
    compute_time: float = 1.0
    communication_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.initial_gap < 0:
            raise ValueError("initial_gap must be non-negative")
        if self.lipschitz <= 0:
            raise ValueError("lipschitz must be positive")
        if self.gradient_variance < 0:
            raise ValueError("gradient_variance must be non-negative")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.compute_time <= 0:
            raise ValueError("compute_time must be positive")
        if self.communication_delay < 0:
            raise ValueError("communication_delay must be non-negative")


def learning_rate_condition(lr: float, lipschitz: float, tau: int) -> bool:
    """Check Theorem 1's step-size condition ``ηL + η²L²τ(τ−1) ≤ 1``."""
    if lr <= 0 or lipschitz <= 0 or tau < 1:
        raise ValueError("lr and lipschitz must be positive and tau >= 1")
    return lr * lipschitz + (lr**2) * (lipschitz**2) * tau * (tau - 1) <= 1.0 + 1e-12


def error_iteration_bound(
    constants: TheoreticalConstants, lr: float, tau: int, n_iterations: int
) -> float:
    """Lemma 1 / eq. 26: bound on the min expected squared gradient norm after K iterations.

    ``2(F(x1)−Finf)/(ηK) + ηLσ²/m + η²L²σ²(τ−1)``
    """
    if lr <= 0:
        raise ValueError("lr must be positive")
    if tau < 1:
        raise ValueError("tau must be >= 1")
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    c = constants
    return (
        2.0 * c.initial_gap / (lr * n_iterations)
        + lr * c.lipschitz * c.gradient_variance / c.n_workers
        + (lr**2) * (c.lipschitz**2) * c.gradient_variance * (tau - 1)
    )


def error_runtime_bound(
    constants: TheoreticalConstants, lr: float, tau: int | float, wall_time: float
) -> float:
    """Theorem 1 / eq. 13: bound on the min expected squared gradient norm after T seconds.

    Substituting ``K = T / (Y + D/τ)`` into the iteration bound gives

    ``2(F(x1)−Finf)/(ηT) · (Y + D/τ) + ηLσ²/m + η²L²σ²(τ−1)``.

    ``tau`` may be fractional here because Theorem 2 optimizes over a
    continuous relaxation.
    """
    if lr <= 0:
        raise ValueError("lr must be positive")
    if tau < 1:
        raise ValueError("tau must be >= 1")
    if wall_time <= 0:
        raise ValueError("wall_time must be positive")
    c = constants
    runtime_per_iter = c.compute_time + c.communication_delay / tau
    return (
        2.0 * c.initial_gap / (lr * wall_time) * runtime_per_iter
        + lr * c.lipschitz * c.gradient_variance / c.n_workers
        + (lr**2) * (c.lipschitz**2) * c.gradient_variance * (tau - 1)
    )


def optimal_communication_period(
    constants: TheoreticalConstants, lr: float, wall_time: float, clip_to_int: bool = False
) -> float:
    """Theorem 2 / eq. 14: the τ minimizing the error-runtime bound at time T.

    ``τ* = sqrt( 2 (F(x1)−Finf) D / (η³ L² σ² T) )``

    Returns the continuous minimizer by default; with ``clip_to_int=True``
    the value is rounded up (ceil) and clipped below at 1, matching how the
    practical rules consume it.
    """
    if lr <= 0:
        raise ValueError("lr must be positive")
    if wall_time <= 0:
        raise ValueError("wall_time must be positive")
    c = constants
    if c.gradient_variance == 0 or c.lipschitz == 0:
        raise ValueError("optimal tau undefined for zero gradient variance or Lipschitz constant")
    if c.communication_delay == 0 or c.initial_gap == 0:
        tau_star = 1.0
    else:
        tau_star = math.sqrt(
            2.0
            * c.initial_gap
            * c.communication_delay
            / ((lr**3) * (c.lipschitz**2) * c.gradient_variance * wall_time)
        )
    if clip_to_int:
        return float(max(1, math.ceil(tau_star)))
    return max(tau_star, 1.0) if clip_to_int else tau_star


def adacomm_convergence_conditions(
    lrs: np.ndarray | list[float], taus: np.ndarray | list[int]
) -> dict[str, float]:
    """Evaluate the three series of Theorem 3 (eq. 21) for a finite schedule.

    Returns the partial sums ``sum η_r τ_r``, ``sum η_r² τ_r`` and
    ``sum η_r³ τ_r²``.  For an infinite schedule to converge, the first must
    diverge while the last two stay finite; for finite schedules the test
    suite checks the expected qualitative behaviour (e.g. decreasing τ makes
    the higher-order sums smaller for the same learning-rate sequence).
    """
    lrs = np.asarray(lrs, dtype=float)
    taus = np.asarray(taus, dtype=float)
    if lrs.shape != taus.shape:
        raise ValueError("lrs and taus must have the same length")
    if np.any(lrs <= 0) or np.any(taus < 1):
        raise ValueError("learning rates must be positive and taus >= 1")
    return {
        "sum_lr_tau": float(np.sum(lrs * taus)),
        "sum_lr2_tau": float(np.sum(lrs**2 * taus)),
        "sum_lr3_tau2": float(np.sum(lrs**3 * taus**2)),
    }


def variable_tau_bound(
    constants: TheoreticalConstants, lr: float, taus: np.ndarray | list[int]
) -> float:
    """Non-asymptotic bound for a fixed-LR variable-τ schedule (eq. 66).

    ``2(F(x1)−F*) / (ηK) + ηLσ²/m + η²L²σ² (Σ τ_j² / Σ τ_j − 1)``
    with ``K = Σ τ_j``.
    """
    if lr <= 0:
        raise ValueError("lr must be positive")
    taus = np.asarray(taus, dtype=float)
    if taus.size == 0 or np.any(taus < 1):
        raise ValueError("taus must be a non-empty sequence of values >= 1")
    c = constants
    total_iters = float(np.sum(taus))
    effective_tau_term = float(np.sum(taus**2) / total_iters - 1.0)
    return (
        2.0 * c.initial_gap / (lr * total_iters)
        + lr * c.lipschitz * c.gradient_variance / c.n_workers
        + (lr**2) * (c.lipschitz**2) * c.gradient_variance * effective_tau_term
    )
