"""The PASGD trainer: runs a simulated cluster under a communication schedule.

One ``PASGDTrainer.train()`` call produces a :class:`~repro.utils.results.RunRecord`
containing the loss/accuracy trajectory of the *synchronized* model against
both the iteration count and the simulated wall clock — the two x-axes of
Figure 1.  The trainer is agnostic to which schedule drives it, so the same
code path produces the fully-synchronous baseline (τ=1), the fixed-τ PASGD
baselines, and ADACOMM, exactly as in the paper's experiments.

Training loop per round:

1. ask the schedule for τ;
2. ask the LR schedule for η (given the epoch count and current τ — this is
   where the "decay τ to 1 before decaying η" gating happens) and push it to
   all workers;
3. run τ local steps on every worker (clock advances by the slowest worker);
4. average the models (clock advances by the communication delay), applying
   block momentum if configured;
5. evaluate the synchronized model if an evaluation is due and log a point;
6. report (wall time, loss, lr) back to the schedule so AdaComm can adapt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.schedules import CommunicationSchedule
from repro.distributed.cluster import SimulatedCluster
from repro.nn.layers import Module
from repro.nn.losses import accuracy as accuracy_metric
from repro.nn.tensor import no_grad
from repro.obs.metrics import counter_inc
from repro.obs.tracer import span
from repro.optim.lr_schedules import ConstantLR, LRSchedule
from repro.utils.logging import get_logger
from repro.utils.results import MetricPoint, RunRecord
from repro.utils.seeding import check_random_state

__all__ = ["TrainerConfig", "PASGDTrainer", "AsyncPASGDTrainer"]

logger = get_logger("core.trainer")


@dataclass
class TrainerConfig:
    """Stopping criteria and evaluation cadence for a training run.

    Attributes
    ----------
    max_wall_time:
        Simulated wall-clock budget in seconds (inf to disable).
    max_iterations:
        Budget on total local iterations (inf to disable).  At least one of
        the two budgets must be finite.
    eval_every_rounds:
        Evaluate the synchronized model every this many communication rounds.
    eval_fraction:
        Fraction of the evaluation set used per evaluation (subsampling keeps
        NumPy evaluation cheap for large synthetic datasets).
    iterations_per_epoch:
        Used to convert iteration counts to "epochs" for the LR schedule when
        the cluster has no dataset (e.g. quadratic objectives).  When a
        dataset is present the cluster's own epoch counter is used instead.
    record_discrepancy:
        If True, log the pre-averaging model discrepancy at each evaluation
        (the quantity bounded in the convergence proof).
    """

    max_wall_time: float = math.inf
    max_iterations: float = math.inf
    eval_every_rounds: int = 1
    eval_fraction: float = 1.0
    iterations_per_epoch: int = 100
    record_discrepancy: bool = False

    def __post_init__(self) -> None:
        if math.isinf(self.max_wall_time) and math.isinf(self.max_iterations):
            raise ValueError("at least one of max_wall_time / max_iterations must be finite")
        if self.max_wall_time <= 0 or self.max_iterations <= 0:
            raise ValueError("budgets must be positive")
        if self.eval_every_rounds < 1:
            raise ValueError("eval_every_rounds must be >= 1")
        if not 0.0 < self.eval_fraction <= 1.0:
            raise ValueError("eval_fraction must be in (0, 1]")
        if self.iterations_per_epoch < 1:
            raise ValueError("iterations_per_epoch must be >= 1")


class PASGDTrainer:
    """Drives a :class:`SimulatedCluster` under communication and LR schedules.

    Parameters
    ----------
    cluster:
        The simulated cluster (workers, delay model, virtual clock).
    schedule:
        Communication-period schedule (fixed τ, sequence, or AdaComm).
    lr_schedule:
        Learning-rate schedule; defaults to a constant equal to the cluster's
        initial learning rate.
    train_eval_data, test_eval_data:
        Optional ``(X, y)`` pairs used to evaluate the synchronized model's
        training loss and test accuracy.  If ``train_eval_data`` is omitted,
        the mean local batch loss of the last period is logged instead (and
        for data-free objectives, ``loss_fn`` below is used).
    loss_fn:
        Optional override ``model -> float`` computing the training loss of
        the synchronized model (used by the quadratic-objective experiments
        where the loss has a closed form).
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        schedule: CommunicationSchedule,
        lr_schedule: LRSchedule | None = None,
        train_eval_data: tuple[np.ndarray, np.ndarray] | None = None,
        test_eval_data: tuple[np.ndarray, np.ndarray] | None = None,
        loss_fn: Callable[[Module], float] | None = None,
        config: TrainerConfig | None = None,
        name: str | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.cluster = cluster
        self.schedule = schedule
        self.lr_schedule = lr_schedule or ConstantLR(cluster.current_lr)
        self.train_eval_data = train_eval_data
        self.test_eval_data = test_eval_data
        self.loss_fn = loss_fn
        self.config = config or TrainerConfig(max_iterations=1000)
        self.name = name or schedule.label
        self._rng = check_random_state(rng if rng is not None else 0)

    # -- evaluation helpers -------------------------------------------------
    def _subsample(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        frac = self.config.eval_fraction
        if frac >= 1.0 or len(X) <= 1:
            return X, y
        n = max(1, int(round(frac * len(X))))
        idx = self._rng.choice(len(X), size=n, replace=False)
        return X[idx], y[idx]

    def _eval_train_loss(self, fallback_loss: float) -> float:
        if self.loss_fn is not None:
            model = self.cluster.synchronized_model()
            return float(self.loss_fn(model))
        if self.train_eval_data is None:
            return fallback_loss
        X, y = self._subsample(*self.train_eval_data)

        def metric(model: Module, Xe: np.ndarray, ye: np.ndarray) -> float:
            was_training = model.training
            model.eval()
            try:
                # Evaluation never calls backward(); skip graph construction.
                with no_grad():
                    return float(model.loss(Xe, ye).item())
            finally:
                model.train(was_training)

        return self.cluster.evaluate_synchronized(X, y, metric)

    def _eval_test_accuracy(self) -> float:
        if self.test_eval_data is None:
            return float("nan")
        X, y = self._subsample(*self.test_eval_data)

        def metric(model: Module, Xe: np.ndarray, ye: np.ndarray) -> float:
            was_training = model.training
            model.eval()
            try:
                with no_grad():
                    return accuracy_metric(model(Xe), ye)
            finally:
                model.train(was_training)

        return self.cluster.evaluate_synchronized(X, y, metric)

    def _current_epoch(self) -> float:
        epochs = self.cluster.epochs_completed()
        if epochs > 0:
            return epochs
        return self.cluster.total_local_iterations / self.config.iterations_per_epoch

    # -- round execution ------------------------------------------------------
    def _execute_round(self, tau: int, lr: float, round_index: int) -> tuple[float, dict]:
        """One communication round; returns (period loss, extra point fields).

        The synchronous implementation is the paper's PASGD round — τ local
        steps at every worker, then the averaging collective (which the
        cluster routes through gossip mixing on a non-complete topology).
        :class:`AsyncPASGDTrainer` overrides this with the barrier-free
        parameter-server generation.
        """
        # The span's virtual duration is the round's simulated cost.
        with span("round", clock=self.cluster.clock, round=round_index, tau=tau, lr=lr):
            period_loss = self.cluster.run_local_period(tau)

            extra: dict[str, float] = {}
            if self.config.record_discrepancy:
                extra["model_discrepancy"] = self.cluster.model_discrepancy()

            self.cluster.average_models()
        return period_loss, extra

    # -- main loop -----------------------------------------------------------
    def train(self) -> RunRecord:
        """Run until the wall-clock or iteration budget is exhausted."""
        cfg = self.config
        record = RunRecord(
            name=self.name,
            config={
                "schedule": self.schedule.label,
                "n_workers": self.cluster.n_workers,
                "initial_lr": self.lr_schedule.initial_lr,
                "max_wall_time": cfg.max_wall_time,
                "max_iterations": cfg.max_iterations,
            },
        )

        # Initial evaluation at t = 0 so every curve starts from the same point.
        with span("eval", clock=self.cluster.clock, round=0):
            initial_loss = self._eval_train_loss(fallback_loss=float("nan"))
            initial_acc = self._eval_test_accuracy()
        counter_inc("evals_total")
        record.log(
            MetricPoint(
                iteration=0,
                wall_time=0.0,
                train_loss=initial_loss if not math.isnan(initial_loss) else float("inf"),
                test_accuracy=initial_acc,
                tau=self.schedule.peek_tau(),
                lr=self.lr_schedule.initial_lr,
            )
        )
        # Seed adaptive schedules with the starting loss (a non-finite loss
        # would poison AdaComm's reference F_0, so it is simply not reported).
        if math.isfinite(initial_loss):
            self.schedule.observe(0.0, max(initial_loss, 0.0), self.lr_schedule.initial_lr)

        rounds = 0
        while (
            self.cluster.clock.now < cfg.max_wall_time
            and self.cluster.total_local_iterations < cfg.max_iterations
        ):
            tau = self.schedule.next_tau()
            lr = self.lr_schedule.lr_at(self._current_epoch(), tau=tau)
            self.cluster.set_lr(lr)

            period_loss, extra = self._execute_round(tau, lr, rounds + 1)
            rounds += 1
            counter_inc("rounds_total")

            if rounds % cfg.eval_every_rounds == 0:
                # Evaluation is free on the virtual clock, so the span's
                # virtual duration is 0 while its wall duration is not —
                # exactly the divergence the dual-clock trace surfaces.
                with span("eval", clock=self.cluster.clock, round=rounds):
                    train_loss = self._eval_train_loss(fallback_loss=period_loss)
                    test_acc = self._eval_test_accuracy()
                counter_inc("evals_total")
            else:
                train_loss = period_loss
                test_acc = float("nan")

            wall_time = self.cluster.clock.now
            record.log(
                MetricPoint(
                    iteration=self.cluster.total_local_iterations,
                    wall_time=wall_time,
                    train_loss=train_loss,
                    test_accuracy=test_acc,
                    tau=tau,
                    lr=lr,
                    extra=extra,
                )
            )
            self.schedule.observe(wall_time, max(train_loss, 0.0), lr)

        if rounds > 0 and rounds % cfg.eval_every_rounds != 0:
            # The budget expired on a non-eval round, so the last logged point
            # carries the period-loss proxy and test_accuracy=nan — evaluate
            # the final synchronized model once so every run ends on a real
            # measurement (final-accuracy readers and the error-runtime
            # frontier consume the last point).
            with span("eval", clock=self.cluster.clock, round=rounds):
                final_loss = self._eval_train_loss(fallback_loss=period_loss)
                final_acc = self._eval_test_accuracy()
            counter_inc("evals_total")
            record.log(
                MetricPoint(
                    iteration=self.cluster.total_local_iterations,
                    wall_time=self.cluster.clock.now,
                    train_loss=final_loss,
                    test_accuracy=final_acc,
                    tau=tau,
                    lr=lr,
                )
            )

        logger.debug(
            "run %s finished: %d rounds, %d iterations, %.2f simulated seconds",
            self.name,
            rounds,
            self.cluster.total_local_iterations,
            self.cluster.clock.now,
        )
        return record


class AsyncPASGDTrainer(PASGDTrainer):
    """Asynchronous local SGD under a parameter server with staleness.

    Identical to :class:`PASGDTrainer` except for how a round executes:
    instead of the barrier-synchronized PASGD round, each generation runs
    :meth:`SimulatedCluster.run_async_round` — workers push their τ-step
    updates as they finish (per-worker virtual clocks, arrival-ordered
    server folds, per-update staleness tracking) and the optional
    ``staleness_damping`` shrinks the server step for staler updates,
    ``w = 1 / (m · (1 + damping · s))``.  Schedules, evaluation cadence,
    budgets, and the logged trajectory work exactly as in the synchronous
    trainer; the "synchronized" model evaluated is the server's state.
    """

    def __init__(self, *args, staleness_damping: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        if staleness_damping < 0:
            raise ValueError(
                f"staleness_damping must be non-negative, got {staleness_damping}"
            )
        self.staleness_damping = float(staleness_damping)

    def _execute_round(self, tau: int, lr: float, round_index: int) -> tuple[float, dict]:
        with span("round", clock=self.cluster.clock, round=round_index, tau=tau, lr=lr):
            period_loss = self.cluster.run_async_round(
                tau, staleness_damping=self.staleness_damping
            )
            extra: dict[str, float] = {}
            if self.config.record_discrepancy:
                extra["model_discrepancy"] = self.cluster.model_discrepancy()
        return period_loss, extra
