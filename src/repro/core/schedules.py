"""Communication-period schedules.

A ``CommunicationSchedule`` answers one question for the trainer: *how many
local steps should the workers take before the next averaging step?*  Three
implementations cover the paper's experiments:

* :class:`FixedCommunicationSchedule` — the PASGD baselines (τ = 1 is fully
  synchronous SGD, τ = 100 the extreme-throughput baseline, τ = 5/20 the
  manually tuned baselines).
* :class:`SequenceCommunicationSchedule` — an arbitrary pre-specified
  {τ_0, τ_1, ...} sequence, used by the variable-τ convergence analysis
  (Theorem 3) tests and by ablations.
* :class:`AdaCommSchedule` — wraps an :class:`~repro.core.adacomm.AdaCommController`
  so the period is re-estimated every T0 seconds of simulated time.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.api.registries import COMM_SCHEDULES
from repro.core.adacomm import AdaCommConfig, AdaCommController

__all__ = [
    "CommunicationSchedule",
    "FixedCommunicationSchedule",
    "SequenceCommunicationSchedule",
    "AdaCommSchedule",
    "adacomm_schedule",
]


class CommunicationSchedule(abc.ABC):
    """Decides the communication period for each local-update round."""

    @abc.abstractmethod
    def next_tau(self) -> int:
        """Communication period to use for the upcoming local-update period."""

    def peek_tau(self) -> int:
        """Communication period the next call to :meth:`next_tau` would return,
        without consuming it (only matters for stateful sequence schedules)."""
        return self.next_tau()

    def observe(self, wall_time: float, train_loss: float, lr: float) -> None:
        """Report progress after an averaging step (no-op for static schedules)."""

    @property
    def is_adaptive(self) -> bool:
        """Whether the schedule reacts to training progress."""
        return False

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short human-readable name used in results and plots."""


@COMM_SCHEDULES.register("fixed")
class FixedCommunicationSchedule(CommunicationSchedule):
    """Constant communication period τ (τ = 1 is fully synchronous SGD)."""

    def __init__(self, tau: int):
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self.tau = int(tau)

    def next_tau(self) -> int:
        return self.tau

    @property
    def label(self) -> str:
        return "sync-sgd" if self.tau == 1 else f"pasgd-tau{self.tau}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"FixedCommunicationSchedule(tau={self.tau})"


@COMM_SCHEDULES.register("sequence")
class SequenceCommunicationSchedule(CommunicationSchedule):
    """Explicit period sequence {τ_0, τ_1, ...}; the last value repeats forever."""

    def __init__(self, taus: Sequence[int]):
        taus = [int(t) for t in taus]
        if not taus:
            raise ValueError("period sequence must be non-empty")
        if any(t < 1 for t in taus):
            raise ValueError("all periods must be >= 1")
        self.taus = taus
        self._index = 0

    def next_tau(self) -> int:
        tau = self.taus[min(self._index, len(self.taus) - 1)]
        self._index += 1
        return tau

    def peek_tau(self) -> int:
        return self.taus[min(self._index, len(self.taus) - 1)]

    @property
    def rounds_emitted(self) -> int:
        return self._index

    @property
    def label(self) -> str:
        return f"sequence-{len(self.taus)}"

    def reset(self) -> None:
        self._index = 0


class AdaCommSchedule(CommunicationSchedule):
    """ADACOMM: interval-based adaptive communication period (Section 4)."""

    def __init__(self, config: AdaCommConfig | None = None, controller: AdaCommController | None = None):
        if controller is not None and config is not None:
            raise ValueError("pass either a config or a ready controller, not both")
        if controller is None:
            controller = AdaCommController(config or AdaCommConfig())
        self.controller = controller

    def next_tau(self) -> int:
        return self.controller.current_tau()

    def observe(self, wall_time: float, train_loss: float, lr: float) -> None:
        self.controller.observe(wall_time, train_loss, lr)

    @property
    def is_adaptive(self) -> bool:
        return True

    @property
    def label(self) -> str:
        return "adacomm"

    @property
    def tau_history(self) -> list[tuple[float, int]]:
        """(wall_time, τ) pairs at every adaptation event."""
        return list(self.controller.tau_history)


@COMM_SCHEDULES.register("adacomm")
def adacomm_schedule(**kwargs) -> AdaCommSchedule:
    """Build an :class:`AdaCommSchedule` from :class:`AdaCommConfig` kwargs."""
    return AdaCommSchedule(AdaCommConfig(**kwargs))
