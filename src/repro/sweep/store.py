"""The persistent, content-addressed results store behind sweep campaigns.

A :class:`ResultStore` maps cell content addresses (see
:func:`repro.sweep.spec.cell_hash`) to completed run results on disk::

    <root>/
      cells/<address>/cell.json      # declared config + axis overrides + run seed
      cells/<address>/result.json    # RunStore payload (all method trajectories)
      sweeps/<campaign>.json         # manifest: which addresses a campaign spans

Everything is plain JSON with sorted keys and **no timestamps**, so the same
cell executed twice produces byte-identical files — the determinism contract
the resume machinery and the test suite rely on.  ``result.json`` is written
last and atomically (temp file + ``os.replace``), so a killed campaign never
leaves a truncated result that would be mistaken for a completed cell: a
cell is complete if and only if its ``result.json`` exists.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.sweep.spec import format_overrides
from repro.utils.results import RunStore

__all__ = ["ResultStore", "CellResult"]

_CELL_FILE = "cell.json"
_RESULT_FILE = "result.json"


@dataclass(frozen=True)
class CellResult:
    """One completed cell loaded back from the store."""

    address: str
    #: ``cell.json`` payload: ``{"name", "overrides", "run_seed", "config"}``.
    meta: dict[str, Any]
    runs: RunStore

    @property
    def label(self) -> str:
        overrides = self.meta.get("overrides", {})
        if overrides:
            return format_overrides(overrides)
        return self.meta.get("name", self.address)


def _dump_json(path: Path, payload: Any) -> None:
    """Write JSON deterministically (sorted keys) and atomically."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


class ResultStore:
    """On-disk cache of sweep-cell results, keyed by content address."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- layout -----------------------------------------------------------

    def cell_dir(self, address: str) -> Path:
        return self.root / "cells" / address

    def _result_path(self, address: str) -> Path:
        return self.cell_dir(address) / _RESULT_FILE

    def _meta_path(self, address: str) -> Path:
        return self.cell_dir(address) / _CELL_FILE

    # -- queries ----------------------------------------------------------

    def __contains__(self, address: str) -> bool:
        """A cell counts as stored only once its result file exists."""
        return self._result_path(address).is_file()

    def __len__(self) -> int:
        return len(self.addresses())

    def addresses(self) -> list[str]:
        """Sorted content addresses of every *completed* cell."""
        cells = self.root / "cells"
        if not cells.is_dir():
            return []
        return sorted(d.name for d in cells.iterdir() if (d / _RESULT_FILE).is_file())

    def meta(self, address: str) -> dict[str, Any]:
        """The ``cell.json`` payload of a stored cell."""
        try:
            return json.loads(self._meta_path(address).read_text())
        except FileNotFoundError:
            raise KeyError(f"cell {address!r} not in store {self.root}") from None

    def runs(self, address: str) -> RunStore:
        """The :class:`RunStore` (all method trajectories) of a stored cell."""
        try:
            payload = json.loads(self._result_path(address).read_text())
        except FileNotFoundError:
            raise KeyError(f"cell {address!r} not in store {self.root}") from None
        return RunStore.from_payload(payload)

    def cell(self, address: str) -> CellResult:
        return CellResult(address=address, meta=self.meta(address), runs=self.runs(address))

    def cells(self, addresses: "list[str] | None" = None) -> Iterator[CellResult]:
        """Iterate stored cells — all of them, or a specific address list."""
        for address in self.addresses() if addresses is None else addresses:
            yield self.cell(address)

    # -- writes -----------------------------------------------------------

    def put(
        self,
        address: str,
        meta: dict[str, Any],
        result_payload: dict[str, Any],
    ) -> None:
        """Persist one completed cell (metadata first, result last).

        ``result_payload`` is a :meth:`RunStore.to_payload` dict.  Writing is
        idempotent: re-putting an address overwrites with identical bytes.
        """
        cell_dir = self.cell_dir(address)
        cell_dir.mkdir(parents=True, exist_ok=True)
        _dump_json(self._meta_path(address), meta)
        _dump_json(self._result_path(address), result_payload)

    def write_manifest(self, campaign: str, payload: dict[str, Any]) -> Path:
        """Record which addresses a campaign spans (``sweeps/<name>.json``)."""
        manifest_dir = self.root / "sweeps"
        manifest_dir.mkdir(parents=True, exist_ok=True)
        path = manifest_dir / f"{campaign}.json"
        _dump_json(path, payload)
        return path

    def manifest(self, campaign: str) -> dict[str, Any]:
        path = self.root / "sweeps" / f"{campaign}.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            raise KeyError(f"no manifest for campaign {campaign!r} in {self.root}") from None

    def campaigns(self) -> list[str]:
        """Names of campaigns with a manifest in this store."""
        manifest_dir = self.root / "sweeps"
        if not manifest_dir.is_dir():
            return []
        return sorted(p.stem for p in manifest_dir.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r}, cells={len(self)})"
