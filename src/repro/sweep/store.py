"""The persistent, content-addressed results store behind sweep campaigns.

A :class:`ResultStore` maps cell content addresses (see
:func:`repro.sweep.spec.cell_hash`) to completed run results on disk::

    <root>/
      cells/<address>/cell.json      # declared config + axis overrides + run seed
      cells/<address>/result.json    # RunStore payload (all method trajectories)
      sweeps/<campaign>.json         # manifest: which addresses a campaign spans

Everything is plain JSON with sorted keys and **no timestamps**, so the same
cell executed twice produces byte-identical files — the determinism contract
the resume machinery and the test suite rely on.  ``result.json`` is written
last and atomically (temp file + ``os.replace``), so a killed campaign never
leaves a truncated result that would be mistaken for a completed cell: a
cell is complete if and only if its ``result.json`` exists.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.sweep.spec import format_overrides
from repro.utils.results import RunStore, decode_json_floats, encode_json_floats

__all__ = ["ResultStore", "CellResult", "MergeReport", "QueryHit"]

_CELL_FILE = "cell.json"
_RESULT_FILE = "result.json"
_METRICS_FILE = "metrics.json"


@dataclass(frozen=True)
class CellResult:
    """One completed cell loaded back from the store."""

    address: str
    #: ``cell.json`` payload: ``{"name", "overrides", "run_seed", "config"}``.
    meta: dict[str, Any]
    runs: RunStore

    @property
    def label(self) -> str:
        overrides = self.meta.get("overrides", {})
        if overrides:
            return format_overrides(overrides)
        return self.meta.get("name", self.address)


@dataclass(frozen=True)
class QueryHit:
    """One manifest cell matched by :meth:`ResultStore.query`."""

    campaign: str
    address: str
    #: Axis assignments the campaign recorded for this cell.
    overrides: dict[str, Any]
    #: Whether the cell's result is present in the store.
    completed: bool

    @property
    def label(self) -> str:
        return format_overrides(self.overrides) if self.overrides else self.address


@dataclass(frozen=True)
class MergeReport:
    """Outcome of :meth:`ResultStore.merge_from`.

    ``copied`` / ``identical`` / ``conflicts`` partition the source's
    completed cell addresses; ``manifests_copied`` / ``manifest_conflicts``
    do the same for campaign manifests.  Any conflict means a content
    address holds *different bytes* in the two stores — impossible for
    stores produced by the same code (cells are byte-deterministic pure
    functions of their config), so the merge refuses rather than guess.
    """

    copied: list = field(default_factory=list)
    identical: list = field(default_factory=list)
    conflicts: list = field(default_factory=list)
    manifests_copied: list = field(default_factory=list)
    manifest_conflicts: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.conflicts and not self.manifest_conflicts

    def summary(self) -> str:
        return (
            f"[merge] cells: copied={len(self.copied)} identical={len(self.identical)} "
            f"conflicts={len(self.conflicts)}; manifests: copied={len(self.manifests_copied)} "
            f"conflicts={len(self.manifest_conflicts)}"
        )


def _dump_json(path: Path, payload: Any) -> None:
    """Write JSON deterministically (sorted keys) and atomically.

    Strictly RFC 8259: non-finite floats (``max_iterations`` is ``inf`` in
    every run config; unevaluated accuracies are ``nan``) become tagged
    sentinel strings, and ``allow_nan=False`` turns any future regression
    into a loud ``ValueError`` instead of a silently non-portable file.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(encode_json_floats(payload), indent=2, sort_keys=True, allow_nan=False)
        + "\n"
    )
    os.replace(tmp, path)


def _load_json(path: Path) -> Any:
    """Read a store file, mapping sentinel strings back to their floats.

    Pre-sentinel files with bare ``NaN``/``Infinity`` tokens still load:
    Python's permissive parser yields float objects, which pass through
    :func:`decode_json_floats` unchanged.
    """
    return decode_json_floats(json.loads(path.read_text()))


class ResultStore:
    """On-disk cache of sweep-cell results, keyed by content address."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- layout -----------------------------------------------------------

    def cell_dir(self, address: str) -> Path:
        return self.root / "cells" / address

    def _result_path(self, address: str) -> Path:
        return self.cell_dir(address) / _RESULT_FILE

    def _meta_path(self, address: str) -> Path:
        return self.cell_dir(address) / _CELL_FILE

    def _metrics_path(self, address: str) -> Path:
        return self.cell_dir(address) / _METRICS_FILE

    # -- queries ----------------------------------------------------------

    def __contains__(self, address: str) -> bool:
        """A cell counts as stored only once its result file exists."""
        return self._result_path(address).is_file()

    def __len__(self) -> int:
        return len(self.addresses())

    def addresses(self) -> list[str]:
        """Sorted content addresses of every *completed* cell."""
        cells = self.root / "cells"
        if not cells.is_dir():
            return []
        return sorted(d.name for d in cells.iterdir() if (d / _RESULT_FILE).is_file())

    def meta(self, address: str) -> dict[str, Any]:
        """The ``cell.json`` payload of a stored cell."""
        try:
            return _load_json(self._meta_path(address))
        except FileNotFoundError:
            raise KeyError(f"cell {address!r} not in store {self.root}") from None

    def runs(self, address: str) -> RunStore:
        """The :class:`RunStore` (all method trajectories) of a stored cell."""
        try:
            payload = _load_json(self._result_path(address))
        except FileNotFoundError:
            raise KeyError(f"cell {address!r} not in store {self.root}") from None
        return RunStore.from_payload(payload)

    def cell(self, address: str) -> CellResult:
        return CellResult(address=address, meta=self.meta(address), runs=self.runs(address))

    def cells(self, addresses: "list[str] | None" = None) -> Iterator[CellResult]:
        """Iterate stored cells — all of them, or a specific address list."""
        for address in self.addresses() if addresses is None else addresses:
            yield self.cell(address)

    # -- writes -----------------------------------------------------------

    def put(
        self,
        address: str,
        meta: dict[str, Any],
        result_payload: dict[str, Any],
    ) -> None:
        """Persist one completed cell (metadata first, result last).

        ``result_payload`` is a :meth:`RunStore.to_payload` dict.  Writing is
        idempotent: re-putting an address overwrites with identical bytes.
        """
        cell_dir = self.cell_dir(address)
        cell_dir.mkdir(parents=True, exist_ok=True)
        _dump_json(self._meta_path(address), meta)
        _dump_json(self._result_path(address), result_payload)

    def put_metrics(self, address: str, snapshot: dict[str, Any]) -> None:
        """Persist a cell's telemetry snapshot as a sidecar ``metrics.json``.

        Metrics are deliberately *outside* the byte-identity contract:
        snapshots carry wall-time histograms (``shard_rpc_seconds``) that
        differ between executions of the same cell, so they live in their
        own file, never in ``result.json``, and :meth:`merge_from` treats
        them as advisory (copied with a fresh cell, never conflict-checked).
        A cell's completeness is still defined by ``result.json`` alone.
        """
        cell_dir = self.cell_dir(address)
        cell_dir.mkdir(parents=True, exist_ok=True)
        _dump_json(self._metrics_path(address), snapshot)

    def has_metrics(self, address: str) -> bool:
        return self._metrics_path(address).is_file()

    def metrics(self, address: str) -> dict[str, Any]:
        """A stored cell's ``metrics.json`` sidecar payload."""
        try:
            return _load_json(self._metrics_path(address))
        except FileNotFoundError:
            raise KeyError(
                f"cell {address!r} has no metrics sidecar in store {self.root}"
            ) from None

    def write_manifest(self, campaign: str, payload: dict[str, Any]) -> Path:
        """Record which addresses a campaign spans (``sweeps/<name>.json``)."""
        manifest_dir = self.root / "sweeps"
        manifest_dir.mkdir(parents=True, exist_ok=True)
        path = manifest_dir / f"{campaign}.json"
        _dump_json(path, payload)
        return path

    def manifest(self, campaign: str) -> dict[str, Any]:
        path = self.root / "sweeps" / f"{campaign}.json"
        try:
            return _load_json(path)
        except FileNotFoundError:
            raise KeyError(f"no manifest for campaign {campaign!r} in {self.root}") from None

    def campaigns(self) -> list[str]:
        """Names of campaigns with a manifest in this store."""
        manifest_dir = self.root / "sweeps"
        if not manifest_dir.is_dir():
            return []
        return sorted(p.stem for p in manifest_dir.glob("*.json"))

    def query(
        self,
        where: "dict[str, Any] | None" = None,
        campaign: "str | None" = None,
    ) -> list[QueryHit]:
        """Manifest cells whose recorded ``overrides`` match ``where`` exactly.

        Every campaign manifest records, per cell, the axis assignments that
        produced it (``{"tau": 4, "seed": 7}``); ``query`` filters on those.
        A cell matches when it has **every** key in ``where`` with an equal
        value — a cell missing a key does not match (its campaign never set
        that axis), and an empty/absent ``where`` lists everything.  Values
        are compared after a JSON round-trip, because that is how the
        manifest stored them: a tuple-valued axis (``hidden_sizes=(8,)``)
        matches its recorded ``[8]`` form.  Results
        are sorted by (campaign, cell enumeration order); ``completed``
        distinguishes stored results from still-pending addresses, so the
        verb also answers "what is left to run".
        """
        where = json.loads(json.dumps(dict(where or {}), sort_keys=True, allow_nan=False))
        campaigns = [campaign] if campaign is not None else self.campaigns()
        hits: list[QueryHit] = []
        for name in campaigns:
            for cell in self.manifest(name).get("cells", []):
                overrides = dict(cell.get("overrides", {}))
                if any(key not in overrides or overrides[key] != value
                       for key, value in where.items()):
                    continue
                hits.append(
                    QueryHit(
                        campaign=name,
                        address=cell["address"],
                        overrides=overrides,
                        completed=cell["address"] in self,
                    )
                )
        return hits

    # -- maintenance (merge / gc) ------------------------------------------

    def merge_from(self, src: "ResultStore | str | Path", dry_run: bool = False) -> MergeReport:
        """Union another store's completed cells and manifests into this one.

        Safe by construction: cells are content-addressed and
        byte-deterministic, so an address present in both stores must hold
        identical bytes.  The merge is all-or-nothing: the whole source is
        scanned first, and if *any* address (or same-named manifest) holds
        differing bytes the conflicts are reported and **nothing is
        written** — a refused merge leaves the destination untouched.  With
        ``dry_run`` nothing is written even on success.
        """
        src = src if isinstance(src, ResultStore) else ResultStore(src)
        report = MergeReport()
        cells_to_copy: list[tuple[str, str, str]] = []
        for address in src.addresses():
            src_meta = src._meta_path(address).read_text()
            src_result = src._result_path(address).read_text()
            if address in self:
                if (
                    self._meta_path(address).read_text() == src_meta
                    and self._result_path(address).read_text() == src_result
                ):
                    report.identical.append(address)
                else:
                    report.conflicts.append(address)
                continue
            report.copied.append(address)
            cells_to_copy.append((address, src_meta, src_result))
        manifests_to_copy: list[tuple[str, str]] = []
        for campaign in src.campaigns():
            src_manifest = (src.root / "sweeps" / f"{campaign}.json").read_text()
            dst_path = self.root / "sweeps" / f"{campaign}.json"
            if dst_path.is_file():
                if dst_path.read_text() != src_manifest:
                    report.manifest_conflicts.append(campaign)
                continue
            report.manifests_copied.append(campaign)
            manifests_to_copy.append((campaign, src_manifest))
        if dry_run or not report.ok:
            return report
        for address, src_meta, src_result in cells_to_copy:
            # Byte-preserving copy, result last and atomic (same contract as
            # put(): a cell is complete iff its result file exists).
            cell_dir = self.cell_dir(address)
            cell_dir.mkdir(parents=True, exist_ok=True)
            (cell_dir / _CELL_FILE).write_text(src_meta)
            # The metrics sidecar is advisory telemetry (wall-time content,
            # outside the byte-identity contract): it travels with a newly
            # copied cell but is never conflict-checked.
            if src.has_metrics(address):
                (cell_dir / _METRICS_FILE).write_text(
                    src._metrics_path(address).read_text()
                )
            tmp = cell_dir / (_RESULT_FILE + ".tmp")
            tmp.write_text(src_result)
            os.replace(tmp, cell_dir / _RESULT_FILE)
        for campaign, src_manifest in manifests_to_copy:
            dst_path = self.root / "sweeps" / f"{campaign}.json"
            dst_path.parent.mkdir(parents=True, exist_ok=True)
            dst_path.write_text(src_manifest)
        return report

    def referenced_addresses(self) -> set[str]:
        """Addresses referenced by at least one campaign manifest."""
        refs: set[str] = set()
        for campaign in self.campaigns():
            for cell in self.manifest(campaign).get("cells", []):
                refs.add(cell["address"])
        return refs

    def gc(self, dry_run: bool = False) -> list[str]:
        """Prune cell directories no campaign manifest references.

        Orphans appear when a config-schema change shifts content addresses
        or a campaign spec is edited; incomplete cells (no result file) are
        pruned by the same rule.  Interrupted campaigns are safe: the runner
        records the manifest *before* executing any cell, so their completed
        cells stay referenced.  Returns the sorted orphan addresses —
        removed, or merely listed when ``dry_run`` is set.
        """
        cells_dir = self.root / "cells"
        if not cells_dir.is_dir():
            return []
        referenced = self.referenced_addresses()
        orphans = sorted(
            d.name for d in cells_dir.iterdir() if d.is_dir() and d.name not in referenced
        )
        if not dry_run:
            for address in orphans:
                shutil.rmtree(cells_dir / address)
        return orphans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r}, cells={len(self)})"
