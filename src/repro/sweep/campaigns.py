"""Named sweep campaigns — the multi-run experiments behind the paper's figures.

Each entry in the ``SWEEPS`` registry is a zero-argument factory returning a
:class:`~repro.sweep.spec.SweepSpec`, so campaigns resolve by name exactly
like every other component: ``SWEEPS.build("tau_error_runtime")`` from code,
``python -m repro --sweep tau_error_runtime --jobs 4`` from the CLI, and
``--list sweeps`` to enumerate them.

The paper's headline artifacts are all campaign-shaped:

* ``tau_error_runtime`` — the τ-grid behind the error-vs-runtime trade-off
  curves (Figure 2 / Section 5): one fixed-τ run per cell, replicated over
  seeds, all sharing datasets (``seed_mode="shared"``) so curves differ only
  in the communication period.
* ``variable_vs_fixed_tau`` — ADACOMM against the best fixed-τ baselines,
  seed-replicated (the variable-τ vs fixed-τ comparison).
* ``worker_scaling`` — the m × τ grid (scaling sweeps over cluster size).
* ``method_family_frontier`` — the full method family (synchronous, gossip
  over ring/star/MH topologies, async with staleness, elastic dropout, and
  ADACOMM) on one workload, so every execution model lands on the same
  error-runtime frontier figure.
* ``smoke_2x2`` — a 2×2 miniature used by tests and the CI sweep-smoke job.

Budgets are scaled down so every campaign completes in seconds on one core
while preserving the regime (α, τ ranges) each figure probes; pass
``scale``/``seeds`` explicitly to :func:`tau_sweep` and friends for
higher-fidelity versions.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.registries import SWEEPS
from repro.experiments.configs import make_config
from repro.sweep.spec import SweepSpec, grid

__all__ = [
    "tau_sweep",
    "method_sweep",
    "scaling_sweep",
    "method_family_sweep",
    "smoke_sweep",
]


def tau_sweep(
    config: str = "vgg_cifar10_fixed_lr",
    taus: Sequence[int] = (1, 4, 20, 100),
    seeds: Sequence[int] = (7, 8),
    scale: float = 0.25,
) -> SweepSpec:
    """The fixed-τ grid behind the error-runtime trade-off figure."""
    base = make_config(config, scale=scale)
    return SweepSpec(
        name="tau_error_runtime",
        base=base,
        axes=grid(tau=list(taus), seed=list(seeds)),
    )


def method_sweep(
    config: str = "vgg_cifar10_fixed_lr",
    methods: Sequence[str] = ("sync-sgd", "pasgd-tau20", "adacomm"),
    seeds: Sequence[int] = (7, 8, 9),
    scale: float = 0.25,
) -> SweepSpec:
    """Variable-τ (ADACOMM) vs fixed-τ baselines, replicated over seeds."""
    base = make_config(config, scale=scale)
    return SweepSpec(
        name="variable_vs_fixed_tau",
        base=base,
        axes=grid(method=list(methods), seed=list(seeds)),
    )


def scaling_sweep(
    config: str = "vgg_cifar10_fixed_lr",
    cluster_sizes: Sequence[int] = (2, 4, 8),
    taus: Sequence[int] = (1, 20),
    scale: float = 0.25,
) -> SweepSpec:
    """The m × τ grid: how the trade-off shifts with cluster size."""
    base = make_config(config, scale=scale)
    return SweepSpec(
        name="worker_scaling",
        base=base,
        axes=grid(m=list(cluster_sizes), tau=list(taus)),
    )


def method_family_sweep(
    config: str = "smoke",
    methods: Sequence[str] = (
        "sync-sgd",
        "pasgd-tau8",
        "adacomm",
        "gossip-ring-tau8",
        "gossip-star-tau8",
        "gossip-mh-tau8",
        "async-tau8",
        "elastic:p=0.1,tau=8",
    ),
    seeds: Sequence[int] = (7, 8),
    n_workers: int = 6,
    scale: float = 1.0,
) -> SweepSpec:
    """Every execution model of the method family on one shared workload.

    One method spec per cell (replicated over seeds, ``seed_mode="shared"``
    so all methods see the same datasets and initializations) covering the
    synchronous baselines, the three gossip topologies, barrier-free async,
    and elastic dropout — the campaign behind the combined
    error-runtime-frontier figure.  ``n_workers`` defaults to 6 — the
    smallest cluster where the Metropolis-Hastings chordal ring (cycle plus
    the i→i+2 chords) is a genuinely sparse graph rather than complete.
    """
    base = make_config(config, scale=scale, n_workers=n_workers)
    return SweepSpec(
        name="method_family_frontier",
        base=base,
        axes=grid(method=list(methods), seed=list(seeds)),
    )


def smoke_sweep() -> SweepSpec:
    """A 2×2 miniature campaign (τ × seed on the smoke config) for CI/tests."""
    base = make_config("smoke")
    return SweepSpec(name="smoke_2x2", base=base, axes=grid(tau=[1, 8], seed=[7, 8]))


SWEEPS.register("tau_error_runtime", tau_sweep)
SWEEPS.register("variable_vs_fixed_tau", method_sweep)
SWEEPS.register("worker_scaling", scaling_sweep)
SWEEPS.register("method_family_frontier", method_family_sweep)
SWEEPS.register("smoke_2x2", smoke_sweep)
