"""``repro.sweep`` — parallel experiment campaigns over a persistent store.

The paper's artifacts (error-vs-runtime curves, variable-τ vs fixed-τ
comparisons, scaling sweeps over m) are *campaigns* of many seeded runs.
This package makes a campaign a first-class, declarative object:

* :class:`SweepSpec` — a base :class:`~repro.experiments.configs.ExperimentConfig`
  plus :func:`grid` (cross-product) or :func:`paired` (zipped) axes,
  expanding into content-addressed cells; ``spec.random(n, seed)`` keeps a
  seeded random-search subsample of the expansion;
* :class:`ResultStore` — a persistent on-disk store keyed by the hash of
  each cell's canonical config dict, so completed cells are never re-run
  and a killed campaign resumes for free; ``query`` filters manifest cells
  by recorded axis overrides, ``merge_from`` unions stores from different
  machines, and ``gc`` prunes cells no manifest references (all also on the
  CLI: ``python -m repro.sweep {query,merge,gc}``);
* :class:`SweepRunner` / :func:`run_sweep` — serial or process-parallel
  execution with live progress and a :class:`SweepReport`;
* named campaigns in the ``SWEEPS`` registry (``repro.sweep.campaigns``).

Quickstart::

    from repro.sweep import SweepSpec, grid, run_sweep
    from repro import make_config

    spec = SweepSpec("my_tau_sweep", make_config("smoke"), grid(tau=[1, 8], seed=[0, 1]))
    report = run_sweep(spec, store="sweeps", jobs=4)
    for cell in report.results():
        print(cell.label, cell.runs.names())

Re-running the same spec against the same store executes zero cells — every
address is already populated — and the figure/table helpers in
``repro.experiments`` render from the store alone.
"""

from repro.sweep.runner import SweepReport, SweepRunner, run_sweep
from repro.sweep.spec import SweepCell, SweepSpec, cell_hash, derive_cell_seed, grid, paired
from repro.sweep.store import CellResult, MergeReport, QueryHit, ResultStore

__all__ = [
    "SweepSpec",
    "SweepCell",
    "grid",
    "paired",
    "cell_hash",
    "derive_cell_seed",
    "ResultStore",
    "CellResult",
    "MergeReport",
    "QueryHit",
    "SweepRunner",
    "SweepReport",
    "run_sweep",
]
