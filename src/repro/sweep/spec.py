"""Declarative sweep specifications: a base config plus axes of variation.

A :class:`SweepSpec` is the campaign analogue of an
:class:`~repro.experiments.configs.ExperimentConfig`: pure data describing a
*grid* of concrete experiment configs.  Each point of the grid — a
:class:`SweepCell` — is produced by applying one combination of axis values
to the base config through the existing ``with_overrides`` / ``to_dict`` /
``from_dict`` spec machinery, so every cell is itself a validated,
JSON-round-trippable config.

Cells are identified by a **content address**: the SHA-256 hash of the
canonical (sorted-key JSON) form of the cell's config dict, with the
cosmetic ``name`` field and the process-layout fields (``backend_shards``,
``auto_shard_threshold`` — they select how many processes execute the bank,
never what it computes) excluded.  Two sweeps that expand to the same
physics therefore share cells, a renamed campaign keeps its cache, and the
:class:`~repro.sweep.store.ResultStore` can skip any cell whose address is
already populated.

Axis names are config field names, plus three paper-oriented aliases:

* ``m`` — cluster size (``n_workers``);
* ``tau`` — a single fixed-τ method per cell (``sync-sgd`` for τ = 1,
  ``pasgd-tau<N>`` otherwise), the axis behind the error-runtime figures;
* ``method`` — a single method spec string per cell (e.g. ``"adacomm"``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.experiments.configs import ExperimentConfig
from repro.utils.seeding import check_random_state

__all__ = ["SweepSpec", "SweepCell", "grid", "paired", "cell_hash", "derive_cell_seed"]

#: Hex digits kept from the SHA-256 digest (64 bits — ample for any campaign).
HASH_LENGTH = 16

_SEED_MODES = ("shared", "decorrelated")
_EXPANSIONS = ("grid", "paired")


def grid(**axes: Iterable) -> dict[str, list]:
    """Build a sweep-axis mapping: ``grid(m=[4, 8], tau=[1, 20], seed=range(3))``.

    Axis order is preserved (it determines cell enumeration order); every
    axis must have at least one value.  Purely a readable constructor — a
    plain ``dict`` of lists works everywhere a grid does.
    """
    out: dict[str, list] = {}
    for name, values in axes.items():
        values = list(values)
        if not values:
            raise ValueError(f"sweep axis {name!r} has no values")
        out[name] = values
    return out


class _PairedAxes(dict):
    """Marker type returned by :func:`paired`: axes to be zipped, not crossed.

    ``SweepSpec`` recognizes the marker and switches itself to
    ``expansion="paired"``, so the zipping intent travels with the axes and
    cannot silently degrade into a full cross-product.
    """


def _check_equal_lengths(axes: Mapping[str, Sequence]) -> None:
    lengths = {name: len(values) for name, values in axes.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"paired axes must have equal lengths, got {lengths}")


def paired(**axes: Iterable) -> "_PairedAxes":
    """Equal-length axes zipped positionally instead of cross-multiplied.

    Position i of every axis together forms cell i — a *list of points*
    rather than a grid, e.g. ``paired(m=[2, 4, 8], tau=[20, 10, 5])`` walks a
    diagonal of the (m, τ) plane in three cells instead of nine.  The
    returned mapping carries the pairing as a marker, so
    ``SweepSpec(name, base, paired(...))`` needs no extra flag.
    """
    out = _PairedAxes(grid(**axes))
    _check_equal_lengths(out)
    return out


def format_overrides(overrides: Mapping[str, Any]) -> str:
    """Canonical human-readable tag for axis assignments: ``"tau=4, seed=7"``."""
    return ", ".join(f"{k}={v}" for k, v in overrides.items())


def _resolve_axis(name: str, value: Any) -> dict[str, Any]:
    """Map one axis assignment to concrete ``ExperimentConfig`` overrides."""
    if name == "m":
        return {"n_workers": int(value)}
    if name == "tau":
        tau = int(value)
        if tau < 1:
            raise ValueError(f"tau axis values must be >= 1, got {value!r}")
        return {"methods": ("sync-sgd" if tau == 1 else f"pasgd-tau{tau}",)}
    if name == "method":
        return {"methods": (value,) if isinstance(value, str) else tuple(value)}
    return {name: value}


#: Config fields excluded from the content address: ``name`` is display
#: metadata, and the process-layout knobs select how the worker bank is
#: executed (how many shard processes, when auto escalates, which data
#: plane moves shard state) — the backends and transports are
#: byte-identical, so these can never change a stored result.  Excluding
#: them keeps re-runs under a different layout (and stores populated before
#: the fields existed) as pure cache hits.
HASH_EXCLUDED_FIELDS = ("name", "backend_shards", "auto_shard_threshold", "shard_transport")

#: Fields elided from the content address only at their listed default.
#: Unlike :data:`HASH_EXCLUDED_FIELDS` these *can* change the trajectory
#: (``bank_dtype="float32"`` is a genuinely different computation and must
#: address separately), but at the byte-identity-preserving default they are
#: dropped so configs hashed before the field existed keep their addresses —
#: stores populated by older versions stay pure cache hits.
HASH_DEFAULT_ELIDED_FIELDS = {"bank_dtype": "float64"}


def cell_hash(config: ExperimentConfig) -> str:
    """Content address of a cell: hash of its canonical config dict.

    The fields in :data:`HASH_EXCLUDED_FIELDS` are excluded — they affect
    presentation or process layout only, never the trajectory, so cells
    reaching the same physics share an address (and its stored result).
    Fields in :data:`HASH_DEFAULT_ELIDED_FIELDS` are dropped only when they
    hold their trajectory-preserving default, so newly added knobs don't
    invalidate previously stored cells.
    """
    payload = config.to_dict()
    for field_name in HASH_EXCLUDED_FIELDS:
        payload.pop(field_name, None)
    for field_name, default in HASH_DEFAULT_ELIDED_FIELDS.items():
        if payload.get(field_name) == default:
            payload.pop(field_name, None)
    # allow_nan=False: a non-finite value in a config field would serialize
    # as a non-RFC-8259 token whose bytes (and thus the address) depend on
    # the writer — better to refuse loudly than to mint a fragile address.
    canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:HASH_LENGTH]


def derive_cell_seed(address: str, base_seed: int) -> int:
    """Deterministic per-cell seed mixing a cell's config hash into its seed.

    Used by ``seed_mode="decorrelated"`` sweeps: every cell gets an
    independent RNG stream that is still a pure function of the cell's
    declared config, so re-runs and resumed campaigns reproduce
    byte-identical results regardless of execution order or worker count.
    The derived seed is folded back into the cell's config before the final
    content address is computed (the address hashes what actually runs).
    """
    digest = hashlib.sha256(f"{address}:{base_seed}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


@dataclass(frozen=True)
class SweepCell:
    """One concrete point of a sweep grid."""

    index: int
    #: Axis assignments that produced this cell, e.g. ``{"tau": 4, "seed": 7}``.
    overrides: dict[str, Any]
    config: ExperimentConfig
    #: Content address (see :func:`cell_hash`) — always the hash of the
    #: config *as executed*, so stored results never collide across modes.
    address: str
    #: Seed the runner executes with (always == ``config.seed``; kept as an
    #: explicit field so store metadata records it even if defaults change).
    run_seed: int

    @property
    def label(self) -> str:
        """Human-readable cell tag, e.g. ``"tau=4, seed=7"``."""
        return format_overrides(self.overrides)


@dataclass(frozen=True)
class SweepSpec:
    """A campaign: a base config plus axes expanding into a grid of cells.

    Parameters
    ----------
    name:
        Campaign name (used for cell naming and the store manifest).
    base:
        The :class:`ExperimentConfig` every cell starts from.  Must be
        serializable (no ``dataset_fn`` escape hatch) since cells are
        content-addressed through ``to_dict()``.
    axes:
        Ordered mapping of axis name → values (see :func:`grid`).  Axis
        names are config fields or the aliases ``m`` / ``tau`` / ``method``;
        two axes may not resolve to the same config field.
    seed_mode:
        ``"shared"`` (default) — each cell runs with its config's own
        ``seed``, so cells differing only in method/τ share datasets and
        initializations (common random numbers, the paper's paired-
        comparison setting).  ``"decorrelated"`` — each cell's run seed is
        derived from the hash of its declared config
        (:func:`derive_cell_seed`) and folded back into the config, fully
        decorrelating the grid; the cell's address is then the hash of the
        config as executed, so the two modes can never collide in a store.
    expansion:
        ``"grid"`` (default) — the row-major cross-product of the axes.
        ``"paired"`` — equal-length axes zipped positionally: cell i takes
        value i of every axis.  Axes built with :func:`paired` carry the
        mode themselves, so the flag is only needed for plain dict axes.
    sample_n, sample_seed:
        When ``sample_n`` is set, a random-search subsample of that many
        cells is drawn from the expansion with a seeded RNG (see
        :meth:`random`); enumeration order of the kept cells follows the
        underlying expansion, so the same ``(n, seed)`` always yields the
        same campaign.  The store and runner are untouched — a sampled
        campaign is just a shorter cell list.
    """

    name: str
    base: ExperimentConfig
    axes: Mapping[str, Sequence]
    seed_mode: str = "shared"
    expansion: str = "grid"
    sample_n: "int | None" = None
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if self.seed_mode not in _SEED_MODES:
            raise ValueError(
                f"unknown seed_mode {self.seed_mode!r}; choose from {list(_SEED_MODES)}"
            )
        if self.expansion not in _EXPANSIONS:
            raise ValueError(
                f"unknown expansion {self.expansion!r}; choose from {list(_EXPANSIONS)}"
            )
        if isinstance(self.axes, _PairedAxes):
            # paired(...) declares the zipping intent with the axes.
            object.__setattr__(self, "expansion", "paired")
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        object.__setattr__(self, "axes", {k: list(v) for k, v in self.axes.items()})
        if self.expansion == "paired":
            _check_equal_lengths(self.axes)
        if self.sample_n is not None and self.sample_n < 1:
            raise ValueError(f"sample_n must be >= 1, got {self.sample_n}")
        seen_fields: dict[str, str] = {}
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"sweep axis {axis!r} has no values")
            for target in _resolve_axis(axis, values[0]):
                if target in seen_fields:
                    raise ValueError(
                        f"axes {seen_fields[target]!r} and {axis!r} both set "
                        f"config field {target!r}"
                    )
                seen_fields[target] = axis
        self.base.to_dict()  # fails loudly on non-serializable configs

    def random(self, n: int, seed: int = 0) -> "SweepSpec":
        """Random-search variant: keep a seeded sample of ``n`` cells.

        Purely declarative — returns a new spec; the sample is drawn without
        replacement inside :meth:`cells`, so the same ``(n, seed)`` always
        names the same sub-campaign and resumes from the store for free.
        """
        if n < 1:
            raise ValueError(f"random sample size must be >= 1, got {n}")
        return replace(self, sample_n=int(n), sample_seed=int(seed))

    def _combos(self) -> "list[tuple]":
        values = [self.axes[n] for n in self.axes]
        if self.expansion == "paired":
            return list(zip(*values))
        return list(itertools.product(*values))

    @property
    def n_cells(self) -> int:
        if self.expansion == "paired":
            n = len(next(iter(self.axes.values())))
        else:
            n = 1
            for values in self.axes.values():
                n *= len(values)
        if self.sample_n is not None:
            n = min(n, self.sample_n)
        return n

    def cells(self) -> list[SweepCell]:
        """Expand the spec into validated, content-addressed cells.

        Grid enumeration order is the row-major product of the axes in
        insertion order (last axis varies fastest); paired expansion walks
        the axes positionally.  A ``sample_n`` subsample keeps that order,
        so cell indices are stable across runs.
        """
        names = list(self.axes)
        combos = self._combos()
        if self.sample_n is not None and self.sample_n < len(combos):
            rng = check_random_state(self.sample_seed)
            keep = np.sort(rng.choice(len(combos), size=self.sample_n, replace=False))
            combos = [combos[i] for i in keep]
        cells: list[SweepCell] = []
        for index, combo in enumerate(combos):
            overrides = dict(zip(names, combo))
            field_overrides: dict[str, Any] = {}
            for axis, value in overrides.items():
                field_overrides.update(_resolve_axis(axis, value))
            config = self.base.with_overrides(
                name=f"{self.name}[{format_overrides(overrides)}]", **field_overrides
            ).validate()
            if self.seed_mode == "decorrelated":
                # Fold the derived seed back into the config, so the cell's
                # content address is the hash of the config *as executed* —
                # shared- and decorrelated-mode cells can never collide in
                # the store (they only share an address when their executed
                # physics is genuinely identical).
                run_seed = derive_cell_seed(cell_hash(config), config.seed)
                config = config.with_overrides(seed=run_seed)
            else:
                run_seed = config.seed
            address = cell_hash(config)
            cells.append(
                SweepCell(
                    index=index,
                    overrides=overrides,
                    config=config,
                    address=address,
                    run_seed=run_seed,
                )
            )
        return cells

    # -- serialization (provenance / manifests) ---------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form: base config + axes + expansion/sampling modes."""
        out: dict[str, Any] = {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seed_mode": self.seed_mode,
            "expansion": self.expansion,
        }
        if self.sample_n is not None:
            out["sample"] = {"n": self.sample_n, "seed": self.sample_seed}
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output (validating the base)."""
        sample = data.get("sample") or {}
        return cls(
            name=data["name"],
            base=ExperimentConfig.from_dict(data["base"]),
            axes=dict(data["axes"]),
            seed_mode=data.get("seed_mode", "shared"),
            expansion=data.get("expansion", "grid"),
            sample_n=sample.get("n"),
            sample_seed=sample.get("seed", 0),
        )
