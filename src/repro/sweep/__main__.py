"""Result-store maintenance verbs: ``python -m repro.sweep {query,merge,gc}``.

Campaign *execution* lives on the main CLI (``python -m repro --sweep``);
this entry point inspects and maintains the persistent stores those
campaigns populate:

* ``query <store> [--where key=value ...]`` — list manifest cells whose
  recorded axis ``overrides`` match every given pair exactly (values parse
  as Python literals, so ``--where tau=4`` matches the integer axis value).
  Cells missing a queried key never match; each hit shows its campaign,
  content address, overrides, and whether its result is stored (``done``)
  or still pending — so the verb answers both "which cells swept τ = 4"
  and "what is left to run".
* ``merge <src> <dst>`` — union one store's completed cells and campaign
  manifests into another.  Safe because cells are content-addressed and
  byte-deterministic: a cell sharded to another machine comes back as the
  exact bytes a local run would have produced, so merging is file copy plus
  an equality check.  An address whose bytes *differ* between the stores is
  a conflict (corrupt store or incompatible code versions) and the merge
  refuses with exit status 1 — all-or-nothing, the destination is left
  untouched.
* ``gc <store>`` — prune cell directories that no campaign manifest under
  ``sweeps/*.json`` references (orphans left behind by config-schema
  changes or edited campaign specs).  ``--dry-run`` lists what would be
  removed without touching the store.
"""

from __future__ import annotations

import argparse
import sys

from repro.sweep.store import ResultStore
from repro.utils.cli import key_value_parser

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Inspect and maintain sweep result stores "
        "(query cells by axis value, merge across machines, prune orphans).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    query = sub.add_parser(
        "query",
        help="list manifest cells whose recorded axis overrides match every "
        "--where key=value pair exactly",
    )
    query.add_argument("store", help="store directory to query")
    query.add_argument("--where", dest="where", action="append", default=[],
                       type=key_value_parser("--where"), metavar="KEY=VALUE",
                       help="exact-match filter on recorded overrides (repeatable; "
                            "values parse as Python literals, e.g. --where tau=4)")
    query.add_argument("--campaign", default=None, metavar="NAME",
                       help="restrict to one campaign manifest (default: all)")

    merge = sub.add_parser(
        "merge",
        help="union SRC's completed cells and manifests into DST "
        "(refuses if any content address holds differing bytes)",
    )
    merge.add_argument("src", help="source store directory")
    merge.add_argument("dst", help="destination store directory")
    merge.add_argument("--dry-run", action="store_true",
                       help="report what would be copied without writing")

    gc = sub.add_parser(
        "gc",
        help="prune cells not referenced by any campaign manifest under sweeps/*.json",
    )
    gc.add_argument("store", help="store directory to collect")
    gc.add_argument("--dry-run", action="store_true",
                    help="list what would be removed without deleting")
    return parser


def _run_query(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    where = dict(args.where)
    try:
        hits = store.query(where, campaign=args.campaign)
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 1
    for hit in hits:
        status = "done   " if hit.completed else "pending"
        print(f"[query] {status} {hit.campaign}  {hit.address}  {hit.label}")
    tag = ", ".join(f"{k}={v!r}" for k, v in where.items()) or "<all>"
    done = sum(hit.completed for hit in hits)
    print(f"[query] {store.root}: {len(hits)} cell(s) match {tag} "
          f"({done} done, {len(hits) - done} pending)")
    return 0


def _run_merge(args: argparse.Namespace) -> int:
    report = ResultStore(args.dst).merge_from(ResultStore(args.src), dry_run=args.dry_run)
    # A refused merge writes nothing, so pending copies are "would copy".
    prefix = "[merge:dry-run]" if (args.dry_run or not report.ok) else "[merge]"
    for address in report.copied:
        print(f"{prefix} copy      {address}")
    for address in report.identical:
        print(f"{prefix} identical {address}")
    for address in report.conflicts:
        print(f"{prefix} CONFLICT  {address}  (same address, differing bytes)")
    for name in report.manifests_copied:
        print(f"{prefix} manifest  {name}")
    for name in report.manifest_conflicts:
        print(f"{prefix} MANIFEST CONFLICT  {name}  (same campaign, differing bytes)")
    print(report.summary())
    if not report.ok:
        print(
            "error: refusing merge (nothing was written) — a content address maps "
            "to differing bytes; the stores were produced by incompatible code "
            "versions or one is corrupt",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    orphans = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for address in orphans:
        print(f"[gc] {verb} {address}")
    print(f"[gc] {store.root}: {len(orphans)} orphan cell(s) {verb}, "
          f"{len(store.referenced_addresses())} referenced")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verb == "query":
        return _run_query(args)
    if args.verb == "merge":
        return _run_merge(args)
    return _run_gc(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
