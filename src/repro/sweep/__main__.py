"""Result-store maintenance verbs: ``python -m repro.sweep {merge,gc}``.

Campaign *execution* lives on the main CLI (``python -m repro --sweep``);
this entry point maintains the persistent stores those campaigns populate:

* ``merge <src> <dst>`` — union one store's completed cells and campaign
  manifests into another.  Safe because cells are content-addressed and
  byte-deterministic: a cell sharded to another machine comes back as the
  exact bytes a local run would have produced, so merging is file copy plus
  an equality check.  An address whose bytes *differ* between the stores is
  a conflict (corrupt store or incompatible code versions) and the merge
  refuses with exit status 1 — all-or-nothing, the destination is left
  untouched.
* ``gc <store>`` — prune cell directories that no campaign manifest under
  ``sweeps/*.json`` references (orphans left behind by config-schema
  changes or edited campaign specs).  ``--dry-run`` lists what would be
  removed without touching the store.
"""

from __future__ import annotations

import argparse
import sys

from repro.sweep.store import ResultStore

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Maintain sweep result stores (merge across machines, prune orphans).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    merge = sub.add_parser(
        "merge",
        help="union SRC's completed cells and manifests into DST "
        "(refuses if any content address holds differing bytes)",
    )
    merge.add_argument("src", help="source store directory")
    merge.add_argument("dst", help="destination store directory")
    merge.add_argument("--dry-run", action="store_true",
                       help="report what would be copied without writing")

    gc = sub.add_parser(
        "gc",
        help="prune cells not referenced by any campaign manifest under sweeps/*.json",
    )
    gc.add_argument("store", help="store directory to collect")
    gc.add_argument("--dry-run", action="store_true",
                    help="list what would be removed without deleting")
    return parser


def _run_merge(args: argparse.Namespace) -> int:
    report = ResultStore(args.dst).merge_from(ResultStore(args.src), dry_run=args.dry_run)
    # A refused merge writes nothing, so pending copies are "would copy".
    prefix = "[merge:dry-run]" if (args.dry_run or not report.ok) else "[merge]"
    for address in report.copied:
        print(f"{prefix} copy      {address}")
    for address in report.identical:
        print(f"{prefix} identical {address}")
    for address in report.conflicts:
        print(f"{prefix} CONFLICT  {address}  (same address, differing bytes)")
    for name in report.manifests_copied:
        print(f"{prefix} manifest  {name}")
    for name in report.manifest_conflicts:
        print(f"{prefix} MANIFEST CONFLICT  {name}  (same campaign, differing bytes)")
    print(report.summary())
    if not report.ok:
        print(
            "error: refusing merge (nothing was written) — a content address maps "
            "to differing bytes; the stores were produced by incompatible code "
            "versions or one is corrupt",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    orphans = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for address in orphans:
        print(f"[gc] {verb} {address}")
    print(f"[gc] {store.root}: {len(orphans)} orphan cell(s) {verb}, "
          f"{len(store.referenced_addresses())} referenced")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verb == "merge":
        return _run_merge(args)
    return _run_gc(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
