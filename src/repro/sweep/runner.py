"""Executing sweep campaigns: process-parallel, resumable, deterministic.

:class:`SweepRunner` takes a :class:`~repro.sweep.spec.SweepSpec`, expands it
into content-addressed cells, skips every cell already present in the
:class:`~repro.sweep.store.ResultStore`, and executes the rest — either
serially in-process or on a ``multiprocessing`` pool (``jobs > 1``).

Worker processes receive only JSON-compatible payloads (the cell's config
dict and run seed); each worker rebuilds its ``ExperimentConfig`` through
``from_dict``, which re-resolves every component name against the registries
*in that process* — so spawned interpreters (the default start method, and
the only one available on Windows/macOS) work without any pickled model or
registry state.  Results come back to the parent, which is the only writer
to the store; because cells are pure functions of their config (seeded NumPy
end to end), pool scheduling order cannot change any stored byte.

A killed or partially-completed campaign resumes for free: re-running the
same spec executes only the cells whose result files are missing.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.metrics import counter_inc
from repro.obs.tracer import instant
from repro.sweep.spec import SweepCell, SweepSpec
from repro.sweep.store import ResultStore
from repro.utils.logging import get_logger

__all__ = ["SweepRunner", "SweepReport", "run_sweep"]

logger = get_logger("sweep.runner")


@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` invocation.

    ``executed`` / ``cached`` / ``failed`` partition the campaign's cell
    addresses: freshly run this invocation, already present in the store
    (skipped), and raised during execution (error text kept per address).
    """

    sweep: str
    store: ResultStore
    cells: list[SweepCell]
    executed: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        """One stable status line (CI greps ``executed=...`` / ``cached=...``)."""
        return (
            f"[sweep] {self.sweep}: total={self.total} executed={len(self.executed)} "
            f"cached={len(self.cached)} failed={len(self.failed)} store={self.store.root}"
        )

    def results(self):
        """Iterate the campaign's stored :class:`CellResult` objects."""
        done = [c.address for c in self.cells if c.address in self.store]
        return self.store.cells(done)


def _execute_cell(
    payload: dict[str, Any], backend_handle=None
) -> tuple[str, "dict | None", "str | None", "dict | None"]:
    """Run one cell in the current process.

    Returns ``(address, result, error, metrics)``: the result payload, a
    traceback string on failure, and (only when the payload asks for
    ``collect_metrics``) a metrics snapshot from a per-cell registry.
    Metrics are opt-in so the default path stores exactly the bytes it
    always has; the snapshot is the store's *sidecar* content, never part of
    ``result.json``.

    Module-level (picklable) so it works under every multiprocessing start
    method.  Imports are local so a spawned interpreter pays them lazily and
    the registries repopulate inside the worker.  ``backend_handle`` (serial
    path only — handles do not cross process boundaries) lets consecutive
    cells reuse one sharded process pool; the runner owns its lifetime.
    """
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.harness import run_experiment
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import span

    address = payload["address"]
    try:
        # The config dict already carries the cell's run seed (the spec folds
        # derived seeds back in), so the address is the hash of what runs.
        config = ExperimentConfig.from_dict(payload["config"])
        # The span records under the parent's tracer on the serial path;
        # pooled workers have no active tracer, so it costs nothing there.
        with span("sweep_cell", address=address, experiment=config.name):
            if payload.get("collect_metrics"):
                with MetricsRegistry() as registry:
                    runs = run_experiment(config, backend_handle=backend_handle)
                return address, runs.to_payload(), None, registry.snapshot()
            runs = run_experiment(config, backend_handle=backend_handle)
        return address, runs.to_payload(), None, None
    except Exception:  # noqa: BLE001 - one bad cell must not sink the campaign
        return address, None, traceback.format_exc(), None


def _cell_payload(cell: SweepCell, collect_metrics: bool = False) -> dict[str, Any]:
    return {
        "address": cell.address,
        "config": cell.config.to_dict(),
        "run_seed": cell.run_seed,
        "collect_metrics": collect_metrics,
    }


def _cell_meta(cell: SweepCell) -> dict[str, Any]:
    return {
        "name": cell.config.name,
        "overrides": dict(cell.overrides),
        "run_seed": cell.run_seed,
        "config": cell.config.to_dict(),
    }


class SweepRunner:
    """Run campaigns against a persistent store, in parallel when asked.

    Parameters
    ----------
    store:
        A :class:`ResultStore` or a directory path for one.
    jobs:
        Worker processes; ``1`` (default) runs serially in-process, which is
        also the automatic fallback when only one cell is pending.
    mp_context:
        Multiprocessing start method (default ``"spawn"`` — the portable
        choice, and the one that genuinely exercises in-worker registry
        re-resolution; ``"fork"`` is faster on Linux if startup dominates).
    progress:
        Optional callable receiving one line per cell event (the CLI passes
        ``print``); campaign progress also goes to the module logger.
    collect_metrics:
        Run each cell under a fresh metrics registry and persist its
        snapshot as the cell's ``metrics.json`` sidecar (see
        :meth:`ResultStore.put_metrics`).  Off by default so the stored
        result bytes — and the parallel==serial byte-equality guarantee on
        them — are untouched by telemetry.
    """

    def __init__(
        self,
        store: "ResultStore | str | Path",
        jobs: int = 1,
        mp_context: str = "spawn",
        progress: "Callable[[str], None] | None" = None,
        collect_metrics: bool = False,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.jobs = int(jobs)
        self.mp_context = mp_context
        self._progress = progress
        self.collect_metrics = bool(collect_metrics)

    def _emit(self, message: str) -> None:
        logger.info("%s", message)
        if self._progress is not None:
            self._progress(message)

    def run(self, spec: SweepSpec) -> SweepReport:
        """Execute every missing cell of ``spec``; returns the report.

        Duplicate addresses (axes that collapse to the same config) are
        executed once.  Failed cells are reported, not raised — inspect
        ``report.failed`` or check ``report.ok``.
        """
        cells = spec.cells()
        unique: dict[str, SweepCell] = {}
        for cell in cells:
            unique.setdefault(cell.address, cell)
        if len(unique) < len(cells):
            self._emit(
                f"[sweep] {spec.name}: {len(cells) - len(unique)} duplicate "
                f"cell(s) collapsed by content address"
            )

        report = SweepReport(sweep=spec.name, store=self.store, cells=cells)
        # The manifest is a pure function of the spec, so record it *before*
        # executing anything: an interrupted campaign's completed cells stay
        # referenced (store.gc never collects them) and the resume picks up
        # exactly the missing addresses.
        self.store.write_manifest(
            spec.name,
            {
                "name": spec.name,
                "seed_mode": spec.seed_mode,
                "axes": {k: list(v) for k, v in spec.axes.items()},
                "cells": [
                    {"address": c.address, "overrides": dict(c.overrides)}
                    for c in cells
                ],
            },
        )
        pending: list[SweepCell] = []
        for cell in unique.values():
            if cell.address in self.store:
                report.cached.append(cell.address)
                counter_inc("sweep_cells_cached_total")
                instant("sweep_cell", address=cell.address, status="cached")
                self._emit(f"[sweep] cached   {cell.address}  {cell.label}")
            else:
                pending.append(cell)

        if pending:
            self._emit(
                f"[sweep] {spec.name}: running {len(pending)}/{len(unique)} cell(s) "
                f"with jobs={min(self.jobs, len(pending))}"
            )
        by_address = {cell.address: cell for cell in pending}
        for address, result_payload, error, metrics in self._execute(pending):
            cell = by_address[address]
            if error is not None:
                report.failed[address] = error
                counter_inc("sweep_cells_failed_total")
                instant("sweep_cell", address=address, status="failed")
                self._emit(f"[sweep] FAILED   {address}  {cell.label}")
                logger.error("cell %s failed:\n%s", address, error)
                continue
            self.store.put(address, _cell_meta(cell), result_payload)
            if metrics is not None:
                self.store.put_metrics(address, metrics)
            report.executed.append(address)
            counter_inc("sweep_cells_executed_total")
            instant("sweep_cell", address=address, status="executed")
            self._emit(f"[sweep] executed {address}  {cell.label}")

        self._emit(report.summary())
        return report

    def _execute(self, pending: list[SweepCell]):
        """Yield ``(address, payload, error, metrics)`` for each pending cell."""
        payloads = [_cell_payload(cell, self.collect_metrics) for cell in pending]
        if not payloads:
            return
        jobs = min(self.jobs, len(payloads))
        if jobs == 1:
            # Serial path: when every pending cell selects its backend the
            # same way, one BackendHandle spans the whole campaign, so a
            # sharded pool spawned by the first cell is rebuilt in place by
            # each subsequent one (byte-identical results either way; see
            # repro.distributed.reuse).  Mixed-backend campaigns fall back
            # to the per-lineup handle run_experiment creates itself.
            from repro.distributed.reuse import BackendHandle

            base = pending[0].config
            layout = (base.backend, base.backend_shards, base.auto_shard_threshold)
            shared = all(
                (c.config.backend, c.config.backend_shards, c.config.auto_shard_threshold)
                == layout
                for c in pending
            )
            handle = (
                BackendHandle(
                    base.backend,
                    n_shards=base.backend_shards,
                    auto_shard_threshold=base.auto_shard_threshold,
                )
                if shared
                else None
            )
            try:
                for payload in payloads:
                    yield _execute_cell(payload, backend_handle=handle)
            finally:
                if handle is not None:
                    handle.close()
            return
        ctx = multiprocessing.get_context(self.mp_context)
        with ctx.Pool(processes=jobs) as pool:
            yield from pool.imap_unordered(_execute_cell, payloads)


def run_sweep(
    spec: SweepSpec,
    store: "ResultStore | str | Path",
    jobs: int = 1,
    progress: "Callable[[str], None] | None" = None,
    collect_metrics: bool = False,
) -> SweepReport:
    """One-call convenience wrapper: ``run_sweep(spec, "sweeps", jobs=4)``."""
    return SweepRunner(
        store, jobs=jobs, progress=progress, collect_metrics=collect_metrics
    ).run(spec)
