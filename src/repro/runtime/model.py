"""Expected-runtime model of Section 3 (equations 7–12).

The two quantities of interest are the expected runtime per *local*
iteration:

* fully synchronous SGD (eq. 8): ``E[T_sync]  = E[Y_{m:m}] + E[D]``
* periodic-averaging SGD (eq. 11): ``E[T_PAvg] = E[Ȳ_{m:m}] + E[D]/τ``

and the speed-up of PASGD over synchronous SGD (eq. 12 for the constant-delay
case): ``(1 + α) / (1 + α/τ)`` with α = D/Y.

:class:`RuntimeModel` bundles a compute-time distribution, a network model,
and the worker count into one object that both the analytic benches
(Figures 4 and 5) and the training-loop simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.distributions import DelayDistribution
from repro.runtime.network import NetworkModel
from repro.runtime.order_stats import expected_max_averaged, expected_max_iid

__all__ = [
    "expected_runtime_sync",
    "expected_runtime_pasgd",
    "speedup_constant_delays",
    "speedup_over_sync",
    "RuntimeModel",
]


def expected_runtime_sync(
    compute: DelayDistribution,
    network: NetworkModel,
    m: int,
    n_samples: int = 20000,
    rng=None,
) -> float:
    """Expected runtime per iteration of fully synchronous SGD (eq. 8)."""
    return expected_max_iid(compute, m, n_samples=n_samples, rng=rng) + network.mean_delay(m)


def expected_runtime_pasgd(
    compute: DelayDistribution,
    network: NetworkModel,
    m: int,
    tau: int,
    n_samples: int = 20000,
    rng=None,
) -> float:
    """Expected runtime per local iteration of PASGD with period τ (eq. 11)."""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    comp = expected_max_averaged(compute, m, tau, n_samples=n_samples, rng=rng)
    return comp + network.mean_delay(m) / tau


def speedup_constant_delays(alpha: float, tau: int | np.ndarray) -> float | np.ndarray:
    """Speed-up of PASGD over synchronous SGD when Y and D are constants (eq. 12).

    ``speedup = (1 + α) / (1 + α/τ)`` where ``α = D / Y`` is the
    communication/computation ratio.  The speed-up is 1 at τ=1 and increases
    monotonically towards ``1 + α`` as τ grows.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    tau_arr = np.asarray(tau, dtype=float)
    if np.any(tau_arr < 1):
        raise ValueError("tau must be >= 1")
    result = (1.0 + alpha) / (1.0 + alpha / tau_arr)
    if np.isscalar(tau) or (isinstance(tau, np.ndarray) and tau.ndim == 0):
        return float(result)
    return result


def speedup_over_sync(
    compute: DelayDistribution,
    network: NetworkModel,
    m: int,
    tau: int,
    n_samples: int = 20000,
    rng=None,
) -> float:
    """General speed-up E[T_sync] / E[T_PAvg] for arbitrary delay distributions."""
    t_sync = expected_runtime_sync(compute, network, m, n_samples=n_samples, rng=rng)
    t_pasgd = expected_runtime_pasgd(compute, network, m, tau, n_samples=n_samples, rng=rng)
    return t_sync / t_pasgd


@dataclass
class RuntimeModel:
    """A complete cluster timing model: compute times, network, worker count.

    Parameters
    ----------
    compute:
        Distribution of the per-mini-batch compute time ``Y`` of one worker.
    network:
        Communication delay model ``D = D0 s(m)``.
    n_workers:
        Cluster size ``m``.
    """

    compute: DelayDistribution
    network: NetworkModel
    n_workers: int

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")

    # -- analytic quantities ----------------------------------------------
    @property
    def alpha(self) -> float:
        """Communication/computation ratio α = E[D]/E[Y]."""
        return self.network.communication_computation_ratio(self.n_workers, self.compute)

    @property
    def mean_communication_delay(self) -> float:
        """E[D] for the configured cluster size."""
        return self.network.mean_delay(self.n_workers)

    @property
    def mean_compute_time(self) -> float:
        """E[Y] for one local step of one worker."""
        return self.compute.mean

    def expected_runtime_per_iteration(self, tau: int, n_samples: int = 20000, rng=None) -> float:
        """E[T] per local iteration at communication period τ (eq. 8 / eq. 11)."""
        if tau == 1:
            return expected_runtime_sync(self.compute, self.network, self.n_workers, n_samples, rng)
        return expected_runtime_pasgd(self.compute, self.network, self.n_workers, tau, n_samples, rng)

    def expected_runtime(self, n_iterations: int, tau: int, n_samples: int = 20000, rng=None) -> float:
        """Expected total wall-clock time of ``n_iterations`` local iterations."""
        if n_iterations < 0:
            raise ValueError(f"n_iterations must be non-negative, got {n_iterations}")
        return n_iterations * self.expected_runtime_per_iteration(tau, n_samples, rng)

    def speedup(self, tau: int, n_samples: int = 20000, rng=None) -> float:
        """Speed-up of PASGD(τ) over fully synchronous SGD on this cluster."""
        return speedup_over_sync(self.compute, self.network, self.n_workers, tau, n_samples, rng)

    def iterations_per_second(self, tau: int, n_samples: int = 20000, rng=None) -> float:
        """Throughput in local iterations per second at period τ."""
        return 1.0 / self.expected_runtime_per_iteration(tau, n_samples, rng)
