"""Delay distributions for local computation times and communication delays.

The runtime analysis of the paper (Section 3.1) treats the per-mini-batch
compute time ``Y`` as an i.i.d. random variable and the broadcast delay ``D``
as another random variable.  The experiments in Section 3.2 use two special
cases — constants and exponentials — but the simulator accepts any
distribution implementing :class:`DelayDistribution`, which lets the
benchmarks explore heavier-tailed straggling (Pareto) as well.

All distributions are vectorized: ``sample(size, rng)`` returns a NumPy array
of i.i.d. draws.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.api.registries import DELAYS
from repro.utils.seeding import check_random_state

__all__ = [
    "DelayDistribution",
    "ConstantDelay",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "UniformDelay",
    "ParetoDelay",
    "make_distribution",
]


class DelayDistribution(abc.ABC):
    """A non-negative random delay with known mean and variance."""

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "DelayDistribution":
        """Build the distribution whose first two moments match ``mean``/``std``.

        This is the hook the experiment harness uses to resolve a bare delay
        name from the two config knobs ``compute_time`` and
        ``compute_time_std_fraction``.  Third-party distributions registered
        with ``@DELAYS.register(...)`` opt into bare-name configs by
        overriding this classmethod; without it, only explicit
        ``{"kind": ..., **params}`` specs are accepted.
        """
        raise NotImplementedError(
            f"{cls.__name__} defines no moment-matching rule; override "
            f"from_moments(mean, std) or use an explicit parameter spec"
        )

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value of the delay in seconds."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the delay in seconds squared."""

    @abc.abstractmethod
    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw i.i.d. samples with the given shape."""

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def sample_one(self, rng: np.random.Generator | int | None = None) -> float:
        """Draw a single scalar sample."""
        return float(self.sample(1, rng)[0])

    def averaged(self, tau: int) -> "AveragedDelay":
        """Distribution of the mean of ``tau`` i.i.d. copies (the paper's ``Ȳ``)."""
        return AveragedDelay(self, tau)


@DELAYS.register("constant")
@dataclass(frozen=True)
class ConstantDelay(DelayDistribution):
    """Deterministic delay — the "simplest case" of Section 3.2."""

    value: float

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "ConstantDelay":
        """Match the mean; the std is necessarily ignored (variance is zero)."""
        return cls(value=mean)

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"delay must be non-negative, got {self.value}")

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def sample(self, size, rng=None) -> np.ndarray:
        return np.full(size, self.value, dtype=float)


@DELAYS.register("exponential")
@dataclass(frozen=True)
class ExponentialDelay(DelayDistribution):
    """Exponential delay with mean ``scale`` — the straggler model of Section 3.2."""

    scale: float

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "ExponentialDelay":
        """Match the mean; an exponential's std is pinned to its mean."""
        return cls(scale=mean)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def mean(self) -> float:
        return self.scale

    @property
    def variance(self) -> float:
        return self.scale**2

    def sample(self, size, rng=None) -> np.ndarray:
        gen = check_random_state(rng)
        return gen.exponential(self.scale, size=size)


@DELAYS.register("shifted_exponential")
@dataclass(frozen=True)
class ShiftedExponentialDelay(DelayDistribution):
    """``shift + Exp(scale)``: a minimum compute time plus exponential straggling.

    This is the standard model for machine slowdown in the straggler
    literature (e.g. coded-computing papers): the shift captures the
    deterministic FLOP cost, the exponential tail captures contention.
    """

    shift: float
    scale: float

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "ShiftedExponentialDelay":
        """Set the exponential part's scale to the std (capped so shift >= 0)."""
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        scale = min(std, mean)
        return cls(shift=mean - scale, scale=scale)

    def __post_init__(self) -> None:
        if self.shift < 0:
            raise ValueError(f"shift must be non-negative, got {self.shift}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def mean(self) -> float:
        return self.shift + self.scale

    @property
    def variance(self) -> float:
        return self.scale**2

    def sample(self, size, rng=None) -> np.ndarray:
        gen = check_random_state(rng)
        return self.shift + gen.exponential(self.scale, size=size)


@DELAYS.register("uniform")
@dataclass(frozen=True)
class UniformDelay(DelayDistribution):
    """Uniform delay on ``[low, high]``."""

    low: float
    high: float

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "UniformDelay":
        """Center at the mean with half-width √3·std (capped so low >= 0)."""
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        half_width = min(math.sqrt(3.0) * std, mean)
        return cls(low=mean - half_width, high=mean + half_width)

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"require 0 <= low <= high, got [{self.low}, {self.high}]")

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def sample(self, size, rng=None) -> np.ndarray:
        gen = check_random_state(rng)
        return gen.uniform(self.low, self.high, size=size)


@DELAYS.register("pareto")
@dataclass(frozen=True)
class ParetoDelay(DelayDistribution):
    """Pareto (heavy-tailed) delay with minimum ``scale`` and shape ``alpha > 2``.

    Requires ``alpha > 2`` so the variance is finite; heavy-tailed compute
    times model severe stragglers where periodic averaging's variance
    reduction (the Erlang effect) matters most.
    """

    scale: float
    alpha: float

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "ParetoDelay":
        """Solve E = αs/(α−1), Var = std² for the shape: α(α−2) = (mean/std)²."""
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        f = std / mean
        shape = 1.0 + math.sqrt(1.0 + 1.0 / f**2)
        return cls(scale=mean * (shape - 1.0) / shape, alpha=shape)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.alpha <= 2:
            raise ValueError(f"alpha must exceed 2 for finite variance, got {self.alpha}")

    @property
    def mean(self) -> float:
        return self.alpha * self.scale / (self.alpha - 1)

    @property
    def variance(self) -> float:
        a = self.alpha
        return self.scale**2 * a / ((a - 1) ** 2 * (a - 2))

    def sample(self, size, rng=None) -> np.ndarray:
        gen = check_random_state(rng)
        # numpy's pareto is the Lomax form; add 1 and rescale to classical Pareto.
        return self.scale * (1.0 + gen.pareto(self.alpha, size=size))


class AveragedDelay(DelayDistribution):
    """Distribution of the sample mean of ``tau`` i.i.d. draws of a base delay.

    This is the paper's ``Ȳ_i = (Y_{i,1} + ... + Y_{i,τ}) / τ`` (eq. 9).  For
    exponential bases the mean is Erlang-distributed; in general we only need
    sampling plus the first two moments, which follow from i.i.d. averaging.
    """

    def __init__(self, base: DelayDistribution, tau: int):
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self.base = base
        self.tau = int(tau)

    @property
    def mean(self) -> float:
        return self.base.mean

    @property
    def variance(self) -> float:
        return self.base.variance / self.tau

    def sample(self, size, rng=None) -> np.ndarray:
        gen = check_random_state(rng)
        if isinstance(size, tuple):
            shape = size + (self.tau,)
        else:
            shape = (int(size), self.tau)
        draws = self.base.sample(shape, gen)
        return draws.mean(axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AveragedDelay(base={self.base!r}, tau={self.tau})"


def make_distribution(name: str, **kwargs) -> DelayDistribution:
    """Factory for delay distributions by name (the shared ``DELAYS`` registry).

    Examples
    --------
    >>> make_distribution("exponential", scale=1.0).mean
    1.0
    """
    return DELAYS.build(name, **kwargs)
