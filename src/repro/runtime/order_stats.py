"""Order statistics of worker compute times.

Fully synchronous SGD waits for the *slowest* of ``m`` workers each
iteration, so its per-iteration cost is the maximum order statistic
``Y_{m:m}``.  PASGD waits for the slowest *average over τ local steps*
``Ȳ_{m:m}``, whose variance is τ× smaller, which is the paper's
straggler-mitigation argument (Section 3.2, Figure 5).

This module provides the closed form for exponential compute times
(``E[Y_{m:m}] = y * H_m``), generic Monte-Carlo estimators for arbitrary
distributions, and the empirical per-iteration runtime distributions used to
regenerate Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.distributions import DelayDistribution, ExponentialDelay
from repro.utils.seeding import check_random_state

__all__ = [
    "harmonic_number",
    "expected_max_exponential",
    "expected_max_iid",
    "expected_max_averaged",
    "empirical_max_distribution",
]


def harmonic_number(m: int) -> float:
    """The m-th harmonic number ``H_m = sum_{i=1}^m 1/i``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return float(np.sum(1.0 / np.arange(1, m + 1)))


def expected_max_exponential(mean: float, m: int) -> float:
    """Exact ``E[Y_{m:m}]`` for i.i.d. Exp(mean) compute times.

    The paper notes ``E[Y_{m:m}] = y * sum_{i=1}^m 1/i ≈ y log m``, so the
    per-iteration cost of fully synchronous SGD grows logarithmically with
    the number of workers.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    return mean * harmonic_number(m)


def expected_max_iid(
    dist: DelayDistribution,
    m: int,
    n_samples: int = 20000,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo estimate of ``E[max(Y_1, ..., Y_m)]`` for i.i.d. ``Y ~ dist``.

    Uses the exact closed form when ``dist`` is exponential or has zero
    variance (constant), otherwise simulates.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if dist.variance == 0.0:
        return dist.mean
    if isinstance(dist, ExponentialDelay):
        return expected_max_exponential(dist.mean, m)
    gen = check_random_state(rng)
    draws = dist.sample((n_samples, m), gen)
    return float(draws.max(axis=1).mean())


def expected_max_averaged(
    dist: DelayDistribution,
    m: int,
    tau: int,
    n_samples: int = 20000,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo estimate of ``E[Ȳ_{m:m}]`` where ``Ȳ`` averages τ draws.

    This is the first term of the PASGD per-iteration runtime (eq. 11).  For
    τ = 1 it coincides with :func:`expected_max_iid`.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    if tau == 1:
        return expected_max_iid(dist, m, n_samples=n_samples, rng=rng)
    if dist.variance == 0.0:
        return dist.mean
    gen = check_random_state(rng)
    avg = dist.averaged(tau)
    draws = avg.sample((n_samples, m), gen)
    return float(draws.max(axis=1).mean())


def empirical_max_distribution(
    dist: DelayDistribution,
    m: int,
    tau: int,
    comm_delay: float,
    n_samples: int = 20000,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Samples of the per-iteration runtime ``max_i Ȳ_i + D/τ``.

    Used to regenerate Figure 5: the histogram of per-iteration runtime for
    fully synchronous SGD (τ=1) versus PASGD (τ=10) with exponential compute
    times.  ``comm_delay`` is the (deterministic) communication delay ``D``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    if comm_delay < 0:
        raise ValueError(f"comm_delay must be non-negative, got {comm_delay}")
    gen = check_random_state(rng)
    source = dist if tau == 1 else dist.averaged(tau)
    draws = source.sample((n_samples, m), gen)
    return draws.max(axis=1) + comm_delay / tau
