"""Communication-delay scaling with the number of workers.

The paper models the all-node broadcast delay as ``D = D0 * s(m)`` (eq. 5),
where ``D0`` is the cost of a single inter-node transfer and ``s(m)`` captures
how the collective scales with ``m`` workers.  The choice of ``s`` depends on
the implementation: a naive parameter server is linear in ``m``, a reduction
tree scales as ``2 log2(m)`` (the example given in the paper, citing
FireCaffe), and a bandwidth-optimal ring all-reduce is ``2 (m-1)/m`` — nearly
constant.

``NetworkModel`` bundles ``D0``, the scaling function, and an optional jitter
distribution into a single object the simulator can sample from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.api.registries import NETWORK_SCALINGS
from repro.runtime.distributions import ConstantDelay, DelayDistribution
from repro.utils.seeding import check_random_state

__all__ = [
    "constant_scaling",
    "parameter_server_scaling",
    "reduction_tree_scaling",
    "ring_allreduce_scaling",
    "make_scaling",
    "NetworkModel",
]


@NETWORK_SCALINGS.register("constant")
def constant_scaling(m: int) -> float:
    """``s(m) = 1``: broadcast cost independent of cluster size."""
    _validate_m(m)
    return 1.0


@NETWORK_SCALINGS.register("parameter_server")
def parameter_server_scaling(m: int) -> float:
    """``s(m) = m``: every worker pushes/pulls through one central server link."""
    _validate_m(m)
    return float(m)


@NETWORK_SCALINGS.register("reduction_tree")
def reduction_tree_scaling(m: int) -> float:
    """``s(m) = 2 log2(m)`` (with s(1)=1): the FireCaffe-style reduction tree
    the paper cites as the parameter-server example."""
    _validate_m(m)
    if m == 1:
        return 1.0
    return 2.0 * math.log2(m)


@NETWORK_SCALINGS.register("ring_allreduce")
def ring_allreduce_scaling(m: int) -> float:
    """``s(m) = 2 (m-1)/m``: bandwidth-optimal ring all-reduce."""
    _validate_m(m)
    if m == 1:
        return 1.0
    return 2.0 * (m - 1) / m


def _validate_m(m: int) -> None:
    if not isinstance(m, (int, np.integer)) or m < 1:
        raise ValueError(f"number of workers m must be a positive integer, got {m!r}")


def make_scaling(name: str) -> Callable[[int], float]:
    """Look up a scaling function ``s(m)`` by name (the ``NETWORK_SCALINGS`` registry)."""
    return NETWORK_SCALINGS.get(name)


@dataclass
class NetworkModel:
    """Communication-delay model ``D = D0 * s(m) + jitter``.

    Parameters
    ----------
    base_delay:
        ``D0``, the per-transfer delay in seconds.  Proportional to model
        size / bandwidth in a real deployment.
    scaling:
        Either the name of a registered scaling or a callable ``m -> s(m)``.
    jitter:
        Optional additive random jitter on every communication round.
    """

    base_delay: float
    scaling: str | Callable[[int], float] = "reduction_tree"
    jitter: DelayDistribution = field(default_factory=lambda: ConstantDelay(0.0))

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be non-negative, got {self.base_delay}")
        if isinstance(self.scaling, str):
            self._scaling_fn = make_scaling(self.scaling)
            self._scaling_name = self.scaling
        elif callable(self.scaling):
            self._scaling_fn = self.scaling
            self._scaling_name = getattr(self.scaling, "__name__", "custom")
        else:
            raise TypeError("scaling must be a name or a callable m -> s(m)")

    def mean_delay(self, m: int) -> float:
        """Expected all-node broadcast delay ``E[D]`` for ``m`` workers."""
        return self.base_delay * self._scaling_fn(m) + self.jitter.mean

    def sample_delay(
        self, m: int, rng: np.random.Generator | int | None = None, size: int | None = None
    ) -> float | np.ndarray:
        """Sample the broadcast delay for one (or ``size``) communication rounds."""
        gen = check_random_state(rng)
        deterministic = self.base_delay * self._scaling_fn(m)
        if size is None:
            return deterministic + self.jitter.sample_one(gen)
        return deterministic + self.jitter.sample(size, gen)

    def communication_computation_ratio(self, m: int, compute: DelayDistribution) -> float:
        """The paper's α = E[D] / E[Y] for a given compute-time distribution."""
        if compute.mean <= 0:
            raise ValueError("compute-time mean must be positive to form the ratio")
        return self.mean_delay(m) / compute.mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkModel(base_delay={self.base_delay}, scaling={self._scaling_name!r}, "
            f"jitter={self.jitter!r})"
        )
