"""Sampling per-iteration timings to drive the virtual wall clock.

The simulated cluster (``repro.distributed.cluster``) asks the
:class:`RuntimeSimulator` two questions:

* "all m workers just did one local step each — how long did that take?"
  Answer: ``max_i Y_i`` over freshly sampled compute times (workers proceed
  in parallel; within a local-update period they are not synchronized, but
  the *period* as a whole finishes when the slowest worker finishes its τ
  steps, so we accumulate per-worker sums and take the max at averaging
  time — see :meth:`sample_local_period`).
* "the workers just averaged their models — how long did the broadcast take?"
  Answer: a sample of ``D = D0 s(m) + jitter``.

Keeping the timing logic here (rather than inside the trainer) lets the same
trainer run under any delay regime and makes the timing model unit-testable
in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.distributions import DelayDistribution
from repro.runtime.network import NetworkModel
from repro.utils.seeding import check_random_state

__all__ = ["IterationTiming", "AsyncRoundTiming", "RuntimeSimulator"]


@dataclass(frozen=True)
class IterationTiming:
    """Timing breakdown of one local-update period (τ local steps + 1 averaging).

    Attributes
    ----------
    compute_time:
        Wall-clock time of the compute phase: ``max_i sum_{k=1}^{τ} Y_{i,k}``.
    communication_time:
        Wall-clock time of the averaging step (0 if no averaging happened).
    per_worker_compute:
        The per-worker total compute times, useful for straggler diagnostics.
    """

    compute_time: float
    communication_time: float
    per_worker_compute: np.ndarray

    @property
    def total(self) -> float:
        return self.compute_time + self.communication_time


@dataclass(frozen=True)
class AsyncRoundTiming:
    """Per-worker timings of one asynchronous generation (no barrier).

    Attributes
    ----------
    arrival_times:
        Absolute per-worker virtual times at which each worker's update
        reaches the parameter server (its clock + τ steps + one push delay).
    per_worker_compute:
        Per-worker total compute time of the τ local steps.
    per_worker_push:
        Per-worker point-to-point push delay to the server.
    """

    arrival_times: np.ndarray
    per_worker_compute: np.ndarray
    per_worker_push: np.ndarray


class RuntimeSimulator:
    """Samples compute and communication delays for a simulated cluster."""

    def __init__(
        self,
        compute: DelayDistribution,
        network: NetworkModel,
        n_workers: int,
        rng: np.random.Generator | int | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.compute = compute
        self.network = network
        self.n_workers = int(n_workers)
        self._rng = check_random_state(rng)
        # Per-worker virtual clocks for the async (barrier-free) execution
        # mode; synchronous paths never read or advance them.
        self.worker_clocks = np.zeros(self.n_workers)
        # Cumulative accounting, handy for Figure-8 style comm-vs-comp breakdowns.
        self.total_compute_time = 0.0
        self.total_communication_time = 0.0
        self.n_local_steps = 0
        self.n_communication_rounds = 0

    def sample_local_step(self) -> float:
        """Duration of one parallel local step: the slowest of m fresh draws.

        Used when the trainer advances the clock step by step (e.g. when the
        averaging boundary is decided adaptively mid-period).  Note that
        advancing step-by-step with a max per step is slightly pessimistic
        compared to :meth:`sample_local_period`, which lets workers run their
        τ steps asynchronously and only waits at the averaging barrier; both
        are offered and the trainer uses the period-level variant.
        """
        draws = self.compute.sample(self.n_workers, self._rng)
        dt = float(draws.max())
        self.total_compute_time += dt
        self.n_local_steps += 1
        return dt

    def sample_local_period(self, tau: int) -> IterationTiming:
        """Duration of τ local steps at every worker followed by no averaging.

        Workers run their τ steps independently; the period ends when the
        slowest worker finishes, i.e. ``max_i sum_k Y_{i,k}``.  This is the
        straggler-mitigation effect: the sum averages out per-step noise.
        """
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        draws = self.compute.sample((self.n_workers, tau), self._rng)
        per_worker = draws.sum(axis=1)
        compute_time = float(per_worker.max())
        self.total_compute_time += compute_time
        self.n_local_steps += tau
        return IterationTiming(
            compute_time=compute_time,
            communication_time=0.0,
            per_worker_compute=per_worker,
        )

    def sample_async_period(self, tau: int) -> AsyncRoundTiming:
        """Per-worker timings of τ async local steps plus a server push.

        Unlike :meth:`sample_local_period` there is no barrier: each worker
        advances its *own* virtual clock by its τ-step compute time plus one
        point-to-point push delay (the network scaling evaluated at size 1 —
        a single worker↔server transfer, not an all-node collective), and the
        absolute arrival times determine the order in which the parameter
        server folds the updates in.
        """
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        draws = self.compute.sample((self.n_workers, tau), self._rng)
        per_worker = draws.sum(axis=1)
        push = np.atleast_1d(
            self.network.sample_delay(1, self._rng, size=self.n_workers)
        ).astype(float)
        arrivals = self.worker_clocks + per_worker + push
        self.worker_clocks = arrivals.copy()
        # Accounting under async is per-worker (there is no straggler-bound
        # barrier to attribute the round to): mean compute and push times.
        self.total_compute_time += float(per_worker.mean())
        self.total_communication_time += float(push.mean())
        self.n_local_steps += tau
        self.n_communication_rounds += 1
        return AsyncRoundTiming(
            arrival_times=arrivals,
            per_worker_compute=per_worker,
            per_worker_push=push,
        )

    def sample_communication(self) -> float:
        """Duration of one all-node model-averaging round."""
        dt = float(self.network.sample_delay(self.n_workers, self._rng))
        self.total_communication_time += dt
        self.n_communication_rounds += 1
        return dt

    def breakdown(self) -> dict[str, float]:
        """Cumulative compute/communication totals (Figure-8 style)."""
        return {
            "compute_time": self.total_compute_time,
            "communication_time": self.total_communication_time,
            "n_local_steps": float(self.n_local_steps),
            "n_communication_rounds": float(self.n_communication_rounds),
        }

    def reset_accounting(self) -> None:
        """Zero the cumulative counters (the RNG stream is left untouched)."""
        self.total_compute_time = 0.0
        self.total_communication_time = 0.0
        self.n_local_steps = 0
        self.n_communication_rounds = 0
