"""Runtime substrate: delay distributions, order statistics, and the
runtime-per-iteration model of Section 3 of the paper.

The paper models the local computation time of worker ``i`` at local step
``k`` as an i.i.d. random variable ``Y_{i,k} ~ F_Y`` and the communication
delay of an all-node broadcast as ``D = D0 * s(m)``.  This package provides:

* ``distributions`` — a family of delay distributions (constant,
  exponential, shifted exponential, uniform, Pareto) with analytic moments.
* ``order_stats`` — expected maxima ``E[Y_{m:m}]`` of i.i.d. samples and of
  τ-averaged (Erlang) samples, both analytic (where closed forms exist) and
  Monte-Carlo.
* ``network`` — communication scaling functions ``s(m)`` for different
  topologies (constant, parameter server, reduction tree, ring all-reduce).
* ``model`` — the expected-runtime expressions (eq. 7–12): ``E[T_sync]``,
  ``E[T_PAvg]`` and the speed-up of PASGD over fully synchronous SGD.
* ``simulator`` — samples per-iteration runtimes to drive the virtual wall
  clock of the simulated cluster.
"""

from repro.runtime.distributions import (
    DelayDistribution,
    ConstantDelay,
    ExponentialDelay,
    ShiftedExponentialDelay,
    UniformDelay,
    ParetoDelay,
    make_distribution,
)
from repro.runtime.network import (
    NetworkModel,
    constant_scaling,
    parameter_server_scaling,
    reduction_tree_scaling,
    ring_allreduce_scaling,
    make_scaling,
)
from repro.runtime.order_stats import (
    expected_max_iid,
    expected_max_exponential,
    expected_max_averaged,
    empirical_max_distribution,
)
from repro.runtime.model import (
    RuntimeModel,
    expected_runtime_sync,
    expected_runtime_pasgd,
    speedup_constant_delays,
    speedup_over_sync,
)
from repro.runtime.simulator import RuntimeSimulator, IterationTiming

__all__ = [
    "DelayDistribution",
    "ConstantDelay",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "UniformDelay",
    "ParetoDelay",
    "make_distribution",
    "NetworkModel",
    "constant_scaling",
    "parameter_server_scaling",
    "reduction_tree_scaling",
    "ring_allreduce_scaling",
    "make_scaling",
    "expected_max_iid",
    "expected_max_exponential",
    "expected_max_averaged",
    "empirical_max_distribution",
    "RuntimeModel",
    "expected_runtime_sync",
    "expected_runtime_pasgd",
    "speedup_constant_delays",
    "speedup_over_sync",
    "RuntimeSimulator",
    "IterationTiming",
]
