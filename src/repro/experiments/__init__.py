"""Experiment harness: configs, runners, and paper-style tables/figures.

``configs`` defines the named experiment settings (vgg-lite / resnet-lite,
4 / 8 workers, fixed / variable learning rate) whose delay parameters are
calibrated to the paper's Figure 8 communication/computation ratios.
``harness`` runs a set of methods (fully synchronous SGD, fixed-τ PASGD,
ADACOMM) under one config and collects their :class:`RunRecord` trajectories.
``tables`` and ``figures`` turn stores of run records into the text tables
and data series that the benchmark targets print.
"""

from repro.experiments.configs import (
    ExperimentConfig,
    available_configs,
    config_spec,
    make_config,
)
from repro.experiments.harness import (
    MethodSpec,
    default_methods,
    parse_method_spec,
    run_experiment,
    run_method,
)
from repro.experiments.tables import (
    format_table,
    accuracy_table,
    speedup_table,
    sweep_summary_table,
    time_to_loss_table,
)
from repro.experiments.figures import (
    loss_vs_time_series,
    tau_vs_time_series,
    comm_comp_breakdown,
    sweep_error_runtime_frontier,
    sweep_loss_curves,
)

__all__ = [
    "ExperimentConfig",
    "make_config",
    "available_configs",
    "config_spec",
    "MethodSpec",
    "parse_method_spec",
    "run_experiment",
    "run_method",
    "default_methods",
    "format_table",
    "accuracy_table",
    "speedup_table",
    "time_to_loss_table",
    "loss_vs_time_series",
    "tau_vs_time_series",
    "comm_comp_breakdown",
    "sweep_summary_table",
    "sweep_loss_curves",
    "sweep_error_runtime_frontier",
]
