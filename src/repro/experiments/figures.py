"""Extracting figure data series from run stores.

There is no plotting dependency in this environment, so "figures" are
produced as data series (lists of (x, y) pairs) plus compact text summaries;
the benchmark targets print a downsampled view of each series so the shape of
every paper figure can be inspected directly from the bench output, and the
full series can be saved to JSON for external plotting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.results import RunRecord, RunStore

__all__ = ["loss_vs_time_series", "tau_vs_time_series", "comm_comp_breakdown", "summarize_series"]


def loss_vs_time_series(record: RunRecord) -> list[tuple[float, float]]:
    """The (wall_time, train_loss) series behind Figures 9–13."""
    return [(p.wall_time, p.train_loss) for p in record.points if not math.isinf(p.train_loss)]


def tau_vs_time_series(record: RunRecord) -> list[tuple[float, int]]:
    """The (wall_time, τ) staircase shown in the top panel of each AdaComm figure."""
    return [(p.wall_time, p.tau) for p in record.points]


def comm_comp_breakdown(record: RunRecord) -> dict[str, float]:
    """Compute vs communication time of a run (the Figure-8 bar chart data)."""
    breakdown = record.config.get("event_breakdown")
    if breakdown is None:
        raise KeyError(f"run {record.name!r} has no event breakdown in its config")
    return dict(breakdown)


def summarize_series(
    series: list[tuple[float, float]], n_points: int = 10
) -> list[tuple[float, float]]:
    """Downsample a series to ~``n_points`` evenly spaced samples for printing."""
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    if len(series) <= n_points:
        return list(series)
    idx = np.linspace(0, len(series) - 1, n_points).round().astype(int)
    return [series[i] for i in idx]
