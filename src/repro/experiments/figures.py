"""Extracting figure data series from run stores and sweep result stores.

There is no plotting dependency in this environment, so "figures" are
produced as data series (lists of (x, y) pairs) plus compact text summaries;
the benchmark targets print a downsampled view of each series so the shape of
every paper figure can be inspected directly from the bench output, and the
full series can be saved to JSON for external plotting.

The ``sweep_*`` functions render campaign figures from a persistent
:class:`~repro.sweep.store.ResultStore` *alone* — no in-memory run objects —
so the error-runtime trade-off curves and scaling figures can be regenerated
at any time from a populated store directory.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.results import RunRecord

__all__ = [
    "loss_vs_time_series",
    "tau_vs_time_series",
    "comm_comp_breakdown",
    "summarize_series",
    "iter_sweep_cells",
    "sweep_loss_curves",
    "sweep_error_runtime_frontier",
]


def loss_vs_time_series(record: RunRecord) -> list[tuple[float, float]]:
    """The (wall_time, train_loss) series behind Figures 9–13."""
    return [(p.wall_time, p.train_loss) for p in record.points if not math.isinf(p.train_loss)]


def tau_vs_time_series(record: RunRecord) -> list[tuple[float, int]]:
    """The (wall_time, τ) staircase shown in the top panel of each AdaComm figure."""
    return [(p.wall_time, p.tau) for p in record.points]


def comm_comp_breakdown(record: RunRecord) -> dict[str, float]:
    """Compute vs communication time of a run (the Figure-8 bar chart data)."""
    breakdown = record.config.get("event_breakdown")
    if breakdown is None:
        raise KeyError(f"run {record.name!r} has no event breakdown in its config")
    return dict(breakdown)


def summarize_series(
    series: list[tuple[float, float]], n_points: int = 10
) -> list[tuple[float, float]]:
    """Downsample a series to ~``n_points`` evenly spaced samples for printing."""
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    if len(series) <= n_points:
        return list(series)
    idx = np.linspace(0, len(series) - 1, n_points).round().astype(int)
    return [series[i] for i in idx]


# -- campaign figures, rendered from a persistent ResultStore ---------------


def iter_sweep_cells(source, addresses: "list[str] | None" = None):
    """Normalize a cell source: a ``ResultStore`` or pre-loaded ``CellResult``s.

    Accepting an already-loaded cell list lets callers that render several
    views (summary table + curves + frontier) read and parse each cell's
    JSON exactly once.
    """
    cells = getattr(source, "cells", None)
    return cells(addresses) if callable(cells) else source


def sweep_loss_curves(
    store, addresses: "list[str] | None" = None
) -> dict[str, list[tuple[float, float]]]:
    """One loss-vs-wall-clock series per (cell, method) in a sweep store.

    ``store`` is a :class:`~repro.sweep.store.ResultStore` (or an iterable
    of loaded :class:`~repro.sweep.store.CellResult`); ``addresses``
    restricts the rendering to one campaign's cells (e.g. the manifest's
    address list), defaulting to every completed cell.  Keys are
    ``"<cell label> :: <method>"`` — the curve family behind the paper's
    error-runtime trade-off figures.
    """
    curves: dict[str, list[tuple[float, float]]] = {}
    for cell in iter_sweep_cells(store, addresses):
        for record in cell.runs:
            curves[f"{cell.label} :: {record.name}"] = loss_vs_time_series(record)
    return curves


def sweep_error_runtime_frontier(
    store, target_loss: float, addresses: "list[str] | None" = None
) -> list[tuple[str, float, float]]:
    """The error-runtime frontier of a campaign, from the store alone.

    One ``(label, time_to_target, best_loss)`` point per (cell, method):
    how long each configuration needs to reach ``target_loss`` and how low
    it ultimately gets — the scatter the paper's trade-off discussion (and
    the optimal-τ argument) is built on.  ``time_to_target`` is ``inf`` for
    configurations that never reach the target.
    """
    frontier: list[tuple[str, float, float]] = []
    for cell in iter_sweep_cells(store, addresses):
        for record in cell.runs:
            frontier.append(
                (
                    f"{cell.label} :: {record.name}",
                    record.time_to_loss(target_loss),
                    record.best_loss(),
                )
            )
    return frontier
