"""Command-line entry point: ``python -m repro --config <name>``.

Runs one named experiment (all methods) and prints the paper-style summary:
loss-vs-wall-clock checkpoints, time-to-target-loss speed-ups, and the best
test accuracies; optionally saves the full run store to JSON for plotting.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.configs import available_configs, make_config
from repro.experiments.figures import loss_vs_time_series, summarize_series
from repro.experiments.harness import run_experiment
from repro.experiments.tables import accuracy_table, format_table, time_to_loss_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one ADACOMM experiment on the simulated cluster.",
    )
    parser.add_argument(
        "--config",
        default="vgg_cifar10_fixed_lr",
        choices=available_configs(),
        help="named experiment configuration (see repro.experiments.configs)",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply the wall-clock budget (e.g. 0.25 for a quick run)")
    parser.add_argument("--seed", type=int, default=None, help="override the config seed")
    parser.add_argument("--target-loss", type=float, default=None,
                        help="training-loss target used for the speed-up table")
    parser.add_argument("--save", type=str, default=None,
                        help="path to save the full run store as JSON")
    parser.add_argument("--points", type=int, default=8,
                        help="number of loss-curve checkpoints to print per method")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    overrides = {} if args.seed is None else {"seed": args.seed}
    config = make_config(args.config, scale=args.scale, **overrides)
    print(f"running experiment {config.name!r}: {config.n_workers} workers, "
          f"alpha={config.alpha}, budget={config.wall_time_budget:.0f}s, lr={config.lr}")

    store = run_experiment(config)

    for record in store:
        print(f"\n=== {record.name} ===")
        for t, loss in summarize_series(loss_vs_time_series(record), n_points=args.points):
            print(f"  t = {t:8.1f} s   train loss = {loss:.4f}")

    # Pick a default target between the initial loss and the best final loss.
    if args.target_loss is not None:
        target = args.target_loss
    else:
        start = max(r.points[0].train_loss for r in store if r.points)
        best = min(r.best_loss() for r in store)
        target = best + 0.25 * (start - best)

    print()
    print(format_table(
        ["method", f"time to loss <= {target:.3g} (s)", "best loss"],
        time_to_loss_table(store, target_loss=target),
        title="Time to target training loss",
    ))
    print()
    print(format_table(
        ["method", "best test accuracy (%)"],
        accuracy_table(store),
        title="Best test accuracy within the budget",
    ))
    if "adacomm" in store and "sync-sgd" in store:
        speedup = store.speedup("adacomm", "sync-sgd", target_loss=target)
        print(f"\nADACOMM speed-up over fully synchronous SGD at loss {target:.3g}: {speedup:.2f}x")

    if args.save:
        store.save(args.save)
        print(f"\nsaved run store to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
