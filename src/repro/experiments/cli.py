"""Command-line entry point: ``python -m repro --config <name>``.

Runs one experiment (all methods) and prints the paper-style summary:
loss-vs-wall-clock checkpoints, time-to-target-loss speed-ups, and the best
test accuracies; optionally saves the full run store to JSON for plotting.

The experiment is composed declaratively from the ``repro.api`` registries:

* ``--config`` takes a named config *or* a path to a JSON file produced by
  ``ExperimentConfig.to_dict()`` / ``Experiment.save()``;
* ``--model`` swaps the model by registry name;
* ``--backend`` selects the worker-execution engine (``auto``, ``loop``, or
  ``vectorized`` — see ``--list backends``);
* ``--set key=value`` (repeatable) overrides any config field, with values
  parsed as Python literals (``--set n_workers=4 --set delay=pareto``);
* ``--list {configs,models,datasets,delays,schedules,scalings,lr_schedules,backends}``
  prints the registered names and exits.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys

from repro.api.registries import all_registries
from repro.experiments.configs import (
    ExperimentConfig,
    _apply_scale,
    available_configs,
    make_config,
)
from repro.experiments.figures import loss_vs_time_series, summarize_series
from repro.experiments.harness import run_experiment
from repro.experiments.tables import accuracy_table, format_table, time_to_loss_table

__all__ = ["build_parser", "main"]


def _config_arg(value: str) -> str:
    """Accept a named config or a path to a JSON config file."""
    if value in available_configs() or value.endswith(".json") or os.path.exists(value):
        return value
    raise argparse.ArgumentTypeError(
        f"unknown config {value!r}; pass one of {available_configs()} or a JSON file path"
    )


def _parse_override(pair: str) -> tuple[str, object]:
    """Parse one ``--set key=value`` pair; values are Python literals or strings."""
    key, sep, raw = pair.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--set expects key=value, got {pair!r}"
        )
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one ADACOMM experiment on the simulated cluster.",
    )
    parser.add_argument(
        "--config",
        default="vgg_cifar10_fixed_lr",
        type=_config_arg,
        metavar="NAME|PATH.json",
        help="named experiment configuration (see --list configs) or a JSON config file",
    )
    parser.add_argument("--model", default=None, metavar="NAME",
                        help="override the model by registry name (see --list models)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="worker-execution backend: auto, loop, or vectorized "
                             "(see --list backends; auto picks vectorized when supported)")
    parser.add_argument("--set", dest="overrides", action="append", default=[],
                        type=_parse_override, metavar="KEY=VALUE",
                        help="override any config field (repeatable), e.g. --set n_workers=4")
    parser.add_argument("--list", dest="list_what", default=None,
                        choices=["configs", *sorted(all_registries())],
                        help="print the registered names of one component kind and exit")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply the wall-clock budget (e.g. 0.25 for a quick run)")
    parser.add_argument("--seed", type=int, default=None, help="override the config seed")
    parser.add_argument("--target-loss", type=float, default=None,
                        help="training-loss target used for the speed-up table")
    parser.add_argument("--save", type=str, default=None,
                        help="path to save the full run store as JSON")
    parser.add_argument("--points", type=int, default=8,
                        help="number of loss-curve checkpoints to print per method")
    return parser


def _load_config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the experiment config from --config/--scale/--seed/--model/--set."""
    if args.config.endswith(".json") or os.path.isfile(args.config):
        try:
            with open(args.config, "r", encoding="utf-8") as fh:
                config = ExperimentConfig.from_dict(json.load(fh))
        except (OSError, TypeError, ValueError) as err:
            # unreadable file, missing/mistyped fields, bad JSON, bad names
            raise SystemExit(f"error: cannot load config {args.config!r}: {err}") from err
        config = _apply_scale(config, args.scale)
    else:
        config = make_config(args.config, scale=args.scale)

    overrides = dict(args.overrides)
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.model is not None:
        overrides["model"] = args.model
    if args.backend is not None:
        overrides["backend"] = args.backend
    if overrides:
        try:
            config = config.with_overrides(**overrides)
        except TypeError as err:
            raise SystemExit(f"error: invalid --set override: {err}") from err
    try:
        return config.validate()
    except ValueError as err:
        raise SystemExit(f"error: {err}") from err


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_what is not None:
        names = (
            available_configs()
            if args.list_what == "configs"
            else all_registries()[args.list_what].names()
        )
        print("\n".join(names))
        return 0

    config = _load_config(args)
    print(f"running experiment {config.name!r}: model={config.model}, "
          f"{config.n_workers} workers, alpha={config.alpha}, "
          f"budget={config.wall_time_budget:.0f}s, lr={config.lr}, "
          f"backend={config.backend}")

    store = run_experiment(config)

    for record in store:
        print(f"\n=== {record.name} ===")
        for t, loss in summarize_series(loss_vs_time_series(record), n_points=args.points):
            print(f"  t = {t:8.1f} s   train loss = {loss:.4f}")

    # Pick a default target between the initial loss and the best final loss.
    if args.target_loss is not None:
        target = args.target_loss
    else:
        start = max(r.points[0].train_loss for r in store if r.points)
        best = min(r.best_loss() for r in store)
        target = best + 0.25 * (start - best)

    print()
    print(format_table(
        ["method", f"time to loss <= {target:.3g} (s)", "best loss"],
        time_to_loss_table(store, target_loss=target),
        title="Time to target training loss",
    ))
    print()
    print(format_table(
        ["method", "best test accuracy (%)"],
        accuracy_table(store),
        title="Best test accuracy within the budget",
    ))
    if "adacomm" in store and "sync-sgd" in store:
        speedup = store.speedup("adacomm", "sync-sgd", target_loss=target)
        print(f"\nADACOMM speed-up over fully synchronous SGD at loss {target:.3g}: {speedup:.2f}x")

    if args.save:
        store.save(args.save)
        print(f"\nsaved run store to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
