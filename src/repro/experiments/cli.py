"""Command-line entry point: ``python -m repro --config <name>``.

Runs one experiment (all methods) and prints the paper-style summary:
loss-vs-wall-clock checkpoints, time-to-target-loss speed-ups, and the best
test accuracies; optionally saves the full run store to JSON for plotting.

The experiment is composed declaratively from the ``repro.api`` registries:

* ``--config`` takes a named config *or* a path to a JSON file produced by
  ``ExperimentConfig.to_dict()`` / ``Experiment.save()``;
* ``--model`` swaps the model by registry name;
* ``--backend`` selects the worker-execution engine (``auto``, ``loop``,
  ``vectorized``, or ``sharded`` — see ``--list backends``; the sharded pool
  size comes from ``--set backend_shards=N``);
* ``--bank-dtype`` selects the bank storage precision (``float64`` is the
  byte-identical default; ``float32`` trades byte-equality for memory
  bandwidth);
* ``--profile`` runs the experiment under the per-op profiler and prints the
  sorted timing table (plus machine-readable JSON) after the summary;
* ``--trace PATH`` records a structured event trace to ``PATH`` (inspect,
  export, or diff it with ``python -m repro.obs``); combined with
  ``--profile`` the per-op rows are bridged into the trace;
* ``--metrics`` collects a run-metrics snapshot (counters, gauges, latency
  histograms) and prints it; with ``--save`` it is embedded in the saved
  store, and with ``--sweep`` each executed cell gets a ``metrics.json``
  sidecar next to its result;
* ``--set key=value`` (repeatable) overrides any config field, with values
  parsed as Python literals (``--set n_workers=4 --set delay=pareto``);
* ``--list {configs,models,datasets,delays,schedules,scalings,lr_schedules,backends,sweeps}``
  prints the registered names and exits.

Campaigns (``python -m repro --sweep <name>``) run a whole grid of
experiments against a persistent, content-addressed result store:

* ``--sweep`` names a registered campaign (see ``--list sweeps``);
* ``--jobs N`` executes cells on N worker processes;
* ``--store DIR`` selects the store directory (default ``sweeps``); cells
  already in the store are skipped, so re-running a campaign only renders —
  every table and curve is produced from the store, never from memory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.api.registries import SWEEPS, all_registries
from repro.experiments.configs import (
    ExperimentConfig,
    _apply_scale,
    available_configs,
    make_config,
)
from repro.experiments.figures import (
    loss_vs_time_series,
    summarize_series,
    sweep_loss_curves,
)
from repro.experiments.harness import run_experiment
from repro.experiments.tables import (
    accuracy_table,
    format_table,
    sweep_summary_table,
    time_to_loss_table,
)
from repro.utils.cli import key_value_parser

__all__ = ["build_parser", "main"]


def _config_arg(value: str) -> str:
    """Accept a named config or a path to a JSON config file."""
    if value in available_configs() or value.endswith(".json") or os.path.exists(value):
        return value
    raise argparse.ArgumentTypeError(
        f"unknown config {value!r}; pass one of {available_configs()} or a JSON file path"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one ADACOMM experiment on the simulated cluster.",
    )
    parser.add_argument(
        "--config",
        default="vgg_cifar10_fixed_lr",
        type=_config_arg,
        metavar="NAME|PATH.json",
        help="named experiment configuration (see --list configs) or a JSON config file",
    )
    parser.add_argument("--model", default=None, metavar="NAME",
                        help="override the model by registry name (see --list models)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="worker-execution backend: auto, loop, vectorized, or sharded "
                             "(see --list backends; auto picks vectorized when supported and "
                             "escalates to sharded at large n_workers)")
    parser.add_argument("--bank-dtype", default=None, choices=["float64", "float32"],
                        help="bank storage dtype: float64 (byte-identical default) or "
                             "float32 (reduced precision, parity within tolerance)")
    parser.add_argument("--shard-transport", default=None, choices=["auto", "shm", "pipe"],
                        help="sharded-pool data plane: auto (shared-memory state plane "
                             "where available, the default), shm, or pipe — a process-"
                             "layout knob, never changes the trajectory")
    parser.add_argument("--topology", default=None,
                        choices=["complete", "ring", "star", "mh"],
                        help="communication graph for the averaging step: complete "
                             "(exact all-node average, the default) or a decentralized "
                             "gossip topology (ring, star, mh = Metropolis-Hastings); "
                             "gossip rounds per step via --set gossip_rounds=N")
    parser.add_argument("--staleness", type=float, default=None, metavar="DAMPING",
                        help="staleness damping for async method specs (fold-in weight "
                             "1/(m*(1+damping*staleness))); only read by methods like "
                             "'async-tau8'")
    parser.add_argument("--profile", action="store_true",
                        help="profile per-op time (im2col, GEMM, optimizer, averaging, "
                             "shard RPC, ...) and print the table after the run")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a structured event trace of the run to PATH "
                             "(trace.jsonl; inspect with python -m repro.obs); with "
                             "--profile the per-op rows are bridged into the trace")
    parser.add_argument("--metrics", action="store_true",
                        help="collect run metrics (rounds, bytes averaged, RPC latency "
                             "histograms, ...) and print the snapshot; with --save the "
                             "snapshot is embedded in the saved store, and with --sweep "
                             "each cell gets a metrics.json sidecar in the store")
    parser.add_argument("--set", dest="overrides", action="append", default=[],
                        type=key_value_parser("--set"), metavar="KEY=VALUE",
                        help="override any config field (repeatable), e.g. --set n_workers=4")
    parser.add_argument("--sweep", default=None, metavar="NAME",
                        help="run a registered experiment campaign instead of a single "
                             "config (see --list sweeps); results land in --store")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --sweep cell execution (default 1)")
    parser.add_argument("--store", default="sweeps", metavar="DIR",
                        help="result-store directory for --sweep (default ./sweeps); "
                             "completed cells found here are never re-executed")
    parser.add_argument("--list", dest="list_what", default=None,
                        choices=["configs", *sorted(all_registries())],
                        help="print the registered names of one component kind and exit")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply the wall-clock budget (e.g. 0.25 for a quick run)")
    parser.add_argument("--seed", type=int, default=None, help="override the config seed")
    parser.add_argument("--target-loss", type=float, default=None,
                        help="training-loss target used for the speed-up table")
    parser.add_argument("--save", type=str, default=None,
                        help="path to save the full run store as JSON")
    parser.add_argument("--points", type=int, default=8,
                        help="number of loss-curve checkpoints to print per method")
    return parser


def _load_config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the experiment config from --config/--scale/--seed/--model/--set."""
    if args.config.endswith(".json") or os.path.isfile(args.config):
        try:
            with open(args.config, "r", encoding="utf-8") as fh:
                config = ExperimentConfig.from_dict(json.load(fh))
        except (OSError, TypeError, ValueError) as err:
            # unreadable file, missing/mistyped fields, bad JSON, bad names
            raise SystemExit(f"error: cannot load config {args.config!r}: {err}") from err
        config = _apply_scale(config, args.scale)
    else:
        config = make_config(args.config, scale=args.scale)

    overrides = dict(args.overrides)
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.model is not None:
        overrides["model"] = args.model
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.bank_dtype is not None:
        overrides["bank_dtype"] = args.bank_dtype
    if args.shard_transport is not None:
        overrides["shard_transport"] = args.shard_transport
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.staleness is not None:
        overrides["staleness_damping"] = args.staleness
    if overrides:
        try:
            config = config.with_overrides(**overrides)
        except TypeError as err:
            raise SystemExit(f"error: invalid --set override: {err}") from err
    try:
        return config.validate()
    except ValueError as err:
        raise SystemExit(f"error: {err}") from err


def _run_sweep(args: argparse.Namespace, parser_defaults: argparse.Namespace) -> int:
    """Execute (or resume) a named campaign, then render from the store alone."""
    from repro.sweep import ResultStore, SweepRunner

    # A campaign's cells are fixed by its registered spec; accepting the
    # single-run composition flags here would silently do nothing (and the
    # content-addressed store would then serve the unintended results as
    # cache hits forever), so reject them loudly instead.
    ignored = [
        flag
        for flag, attr in [
            ("--config", "config"), ("--model", "model"), ("--backend", "backend"),
            ("--bank-dtype", "bank_dtype"), ("--shard-transport", "shard_transport"),
            ("--topology", "topology"), ("--staleness", "staleness"),
            ("--profile", "profile"),
            ("--set", "overrides"), ("--scale", "scale"), ("--seed", "seed"),
            ("--save", "save"),
        ]
        if getattr(args, attr) != getattr(parser_defaults, attr)
    ]
    if ignored:
        raise SystemExit(
            f"error: {', '.join(ignored)} cannot be combined with --sweep; campaign "
            f"cells are defined by the registered spec (see repro.sweep.campaigns)"
        )

    try:
        spec = SWEEPS.build(args.sweep)
    except ValueError as err:
        raise SystemExit(f"error: {err}") from err

    store = ResultStore(args.store)
    print(f"running sweep {spec.name!r}: {spec.n_cells} cells over "
          f"axes {dict(spec.axes)}, jobs={args.jobs}, store={store.root}")
    runner = SweepRunner(
        store, jobs=args.jobs, progress=print, collect_metrics=args.metrics
    )
    if args.trace is not None:
        # The parent-side campaign trace: per-cell spans on the serial path,
        # outcome instants either way.  Telemetry is runtime state — stored
        # cell bytes (and their content addresses) are unaffected.
        from repro.obs.tracer import Tracer

        with Tracer() as tracer:
            report = runner.run(spec)
        print(f"wrote trace ({len(tracer.events)} events) to {tracer.flush(args.trace)}")
    else:
        report = runner.run(spec)
    for address, error in report.failed.items():
        print(f"\ncell {address} FAILED:\n{error}")

    # Everything below renders from the persistent store, never from memory;
    # cells are read and parsed exactly once and shared by every view.
    addresses = sorted({c.address for c in report.cells} & set(store.addresses()))
    if not addresses:
        return 1 if report.failed else 0

    cells = list(store.cells(addresses))
    records = [rec for cell in cells for rec in cell.runs]
    if args.target_loss is not None:
        target = args.target_loss
    else:
        start = max(r.points[0].train_loss for r in records if r.points)
        best = min(r.best_loss() for r in records)
        target = best + 0.25 * (start - best)

    print()
    print(format_table(
        ["cell", "method", "best loss", "best acc (%)", f"t(loss<={target:.3g}) (s)"],
        sweep_summary_table(cells, target_loss=target),
        title=f"Campaign {spec.name!r} — rendered from {store.root}",
    ))
    print()
    for label, series in sweep_loss_curves(cells).items():
        checkpoints = ", ".join(
            f"{loss:.3f}@{t:.0f}s" for t, loss in summarize_series(series, max(2, args.points // 2))
        )
        print(f"  {label}: {checkpoints}")
    return 1 if report.failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_what is not None:
        names = (
            available_configs()
            if args.list_what == "configs"
            else all_registries()[args.list_what].names()
        )
        print("\n".join(names))
        return 0

    if args.sweep is not None:
        return _run_sweep(args, parser.parse_args([]))

    config = _load_config(args)
    print(f"running experiment {config.name!r}: model={config.model}, "
          f"{config.n_workers} workers, alpha={config.alpha}, "
          f"budget={config.wall_time_budget:.0f}s, lr={config.lr}, "
          f"backend={config.backend}")

    # Telemetry composition: --trace owns the profiler when both are given
    # (its rows are bridged into the trace); --metrics runs a registry whose
    # snapshot is printed and, with --save, embedded in the saved store.
    from contextlib import ExitStack

    tracer = registry = profiler = None
    with ExitStack() as stack:
        if args.trace is not None:
            from repro.obs.tracer import Tracer

            tracer = stack.enter_context(Tracer(profile=args.profile))
            profiler = tracer.profiler
        elif args.profile:
            from repro.utils.timer import Profiler

            profiler = stack.enter_context(Profiler())
        if args.metrics:
            from repro.obs.metrics import MetricsRegistry

            registry = stack.enter_context(MetricsRegistry())
        store = run_experiment(config)

    for record in store:
        print(f"\n=== {record.name} ===")
        for t, loss in summarize_series(loss_vs_time_series(record), n_points=args.points):
            print(f"  t = {t:8.1f} s   train loss = {loss:.4f}")

    # Pick a default target between the initial loss and the best final loss.
    if args.target_loss is not None:
        target = args.target_loss
    else:
        start = max(r.points[0].train_loss for r in store if r.points)
        best = min(r.best_loss() for r in store)
        target = best + 0.25 * (start - best)

    print()
    print(format_table(
        ["method", f"time to loss <= {target:.3g} (s)", "best loss"],
        time_to_loss_table(store, target_loss=target),
        title="Time to target training loss",
    ))
    print()
    print(format_table(
        ["method", "best test accuracy (%)"],
        accuracy_table(store),
        title="Best test accuracy within the budget",
    ))
    if "adacomm" in store and "sync-sgd" in store:
        speedup = store.speedup("adacomm", "sync-sgd", target_loss=target)
        print(f"\nADACOMM speed-up over fully synchronous SGD at loss {target:.3g}: {speedup:.2f}x")

    if profiler is not None:
        print()
        print(profiler.table())
        print()
        print(profiler.to_json())

    if tracer is not None:
        print(f"\nwrote trace ({len(tracer.finish())} events) to {tracer.flush(args.trace)}")
    if registry is not None:
        snapshot = registry.snapshot()
        store.metrics = snapshot
        print("\nmetrics snapshot:")
        print(json.dumps(snapshot, indent=2, sort_keys=True))

    if args.save:
        store.save(args.save)
        print(f"\nsaved run store to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
