"""Named experiment configurations — declarative and JSON-round-trippable.

Each configuration mirrors one experimental setting of the paper (model ×
dataset × delay model × learning-rate schedule × cluster size).  Every
component is referenced *by name* and resolved through the registries in
:mod:`repro.api.registries`, so a config is pure data: ``to_dict()`` /
``from_dict()`` round-trip through JSON, and the named configs themselves are
plain dict specs (``_CONFIG_SPECS``) rather than code.

Two knobs matter most for reproducing the paper's behaviour:

* ``alpha`` — the communication/computation ratio D/Y.  Figure 8 of the paper
  shows VGG-16's communication time is roughly 4× its computation time, while
  ResNet-50's communication is well under its computation; the ``vgg_*``
  configs therefore use α = 4.0 and the ``resnet_*`` configs α = 0.5.
* ``compute_time`` — the mean per-mini-batch compute time Y; all simulated
  wall-clock numbers are expressed in units of Y (set to 1 second).

All sizes here are deliberately small so a full experiment (4 methods ×
hundreds of simulated iterations) runs in seconds with the NumPy backend;
``scale`` multiplies the wall-clock budget and dataset size for
higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable

from repro.api.registries import (
    BACKENDS,
    DATASETS,
    DELAYS,
    LR_SCHEDULES,
    MODELS,
    NETWORK_SCALINGS,
)
from repro.api.registry import filter_kwargs
from repro.data.synthetic import Dataset
from repro.distributed.topology import TOPOLOGIES

__all__ = ["ExperimentConfig", "make_config", "available_configs", "config_spec"]

# Fields stored as tuples but serialized as JSON lists.
_TUPLE_FIELDS = ("hidden_sizes", "lr_decay_milestones", "fixed_taus", "methods")

# Fields serialized only when they differ from their default.  These were
# added after stores and golden fixtures existed; at the default they are
# trajectory-preserving no-ops, so eliding them keeps previously rendered
# config dicts byte-identical — golden fixtures stay green and sweep-cell
# content addresses (which hash ``to_dict()``) remain pure cache hits.
_SPARSE_FIELDS: dict[str, Any] = {
    "topology": "complete",
    "gossip_rounds": 1,
    "staleness_damping": 0.0,
    "elastic_dropout_prob": 0.0,
    "elastic_deadline": None,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one paper experiment end to end.

    All component fields (``model``, ``dataset``, ``delay``,
    ``network_scaling``, ``lr_schedule``, ``methods``) are registry names —
    see ``repro.api`` — so a config can be serialized with :meth:`to_dict`
    and rebuilt with :meth:`from_dict`.
    """

    name: str
    # Workload
    dataset: str = "synth_cifar10"
    model: str = "mlp"
    model_kwargs: dict = field(default_factory=dict)
    dataset_fn: Callable[..., Dataset] | None = None  # escape hatch; not serializable
    n_train: int = 2400
    n_test: int = 600
    n_features: int = 64
    class_sep: float = 0.8
    label_noise: float = 0.15
    hidden_sizes: tuple[int, ...] = ()
    n_classes: int = 10
    # Cluster.  ``backend`` selects the worker-execution engine: "loop" steps
    # one Worker object per replica (the reference implementation),
    # "vectorized" runs all replicas as stacked NumPy ops, "sharded" splits
    # the stacked bank over ``backend_shards`` worker processes, and "auto"
    # (default) picks sharded at or above ``auto_shard_threshold`` workers,
    # else vectorized whenever the model supports it — which every
    # registered model does.  All backends are byte-identical, so these
    # knobs change the process layout, never the trajectory.
    n_workers: int = 4
    batch_size: int = 8
    backend: str = "auto"
    backend_shards: int = 2
    auto_shard_threshold: "int | None" = 64
    # Sharded-pool data plane: "auto" (the zero-copy shared-memory state
    # plane where the platform supports it, else pipes), "shm", or "pipe".
    # Like the other process-layout knobs this never changes a trajectory.
    shard_transport: str = "auto"
    # Bank storage dtype: "float64" (byte-identical default) or "float32"
    # (opt-in reduced precision — half the memory traffic, parity within
    # tolerance; the loop backend stays the float64 reference regardless).
    bank_dtype: str = "float64"
    # Averaging-collective weighting: "uniform" (paper, eq. 3) or
    # "shard_size" (FedAvg-style, for unbalanced partitions).
    weighting: str = "uniform"
    # Communication graph for the averaging step: "complete" (default — the
    # paper's exact all-node average) or a decentralized gossip topology
    # ("ring", "star", "mh" = Metropolis-Hastings over a chordal ring), with
    # ``gossip_rounds`` mixing rounds per communication step.
    topology: str = "complete"
    gossip_rounds: int = 1
    # Async parameter-server mode: staleness-damped fold-in weight
    # 1/(m·(1+damping·staleness)).  Only read by async method specs.
    staleness_damping: float = 0.0
    # Elastic stragglers: per-round worker dropout by probability and/or a
    # compute-time deadline; dropped workers skip that round's average and
    # rejoin at the broadcast.
    elastic_dropout_prob: float = 0.0
    elastic_deadline: "float | None" = None
    # Delay model (all times in units of the mean compute time).  ``delay`` is
    # either a registered distribution name, whose parameters are derived from
    # ``compute_time`` / ``compute_time_std_fraction`` (moment matching), or a
    # ``{"kind": name, **params}`` dict giving the parameters explicitly.
    delay: str | dict = "shifted_exponential"
    compute_time: float = 1.0
    compute_time_std_fraction: float = 0.25
    alpha: float = 4.0
    network_scaling: str = "constant"
    # Optimization
    lr: float = 0.4
    weight_decay: float = 1e-4
    momentum: float = 0.0
    block_momentum_beta: float = 0.0
    variable_lr: bool = False
    lr_schedule: str | None = None  # overrides ``variable_lr`` when set
    lr_decay_milestones: tuple[float, ...] = (3.0, 6.0, 9.0)
    lr_decay_gamma: float = 0.1
    # Budgets / schedules
    wall_time_budget: float = 1800.0
    adacomm_interval: float = 120.0
    adacomm_initial_tau: int = 20
    fixed_taus: tuple[int, ...] = (1, 20, 100)
    # Method lineup: ``None`` means the paper default (one entry per
    # ``fixed_taus`` value plus ADACOMM); otherwise a tuple of method specs
    # such as ("sync-sgd", "pasgd-tau20", "adacomm").
    methods: tuple[str, ...] | None = None
    eval_every_rounds: int = 1
    seed: int = 7

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def communication_delay(self) -> float:
        """Mean all-node broadcast delay D = α · Y."""
        return self.alpha * self.compute_time

    def build_dataset(self, rng=None) -> Dataset:
        """Instantiate the train+test dataset for this config.

        Uses ``dataset_fn`` when set, otherwise resolves ``dataset`` through
        the ``DATASETS`` registry; kwargs the generator does not accept are
        dropped, so e.g. ``spirals`` (no ``n_features``) works unchanged.
        """
        fn = self.dataset_fn if self.dataset_fn is not None else DATASETS.get(self.dataset)
        kwargs = dict(
            n_samples=self.n_train + self.n_test,
            n_features=self.n_features,
            n_classes=self.n_classes,
            class_sep=self.class_sep,
            label_noise=self.label_noise,
            rng=rng if rng is not None else self.seed,
        )
        return fn(**filter_kwargs(fn, kwargs))

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict of every declarative field.

        Raises ``ValueError`` if a non-serializable ``dataset_fn`` override
        is set; tuples become lists (and are converted back by
        :meth:`from_dict`).
        """
        if self.dataset_fn is not None:
            raise ValueError(
                "config carries a custom dataset_fn callable and cannot be serialized; "
                "register the generator in repro.api.DATASETS and use its name instead"
            )
        out: dict[str, Any] = {}
        for f in fields(self):
            if f.name == "dataset_fn":
                continue
            value = getattr(self, f.name)
            if f.name in _SPARSE_FIELDS and value == _SPARSE_FIELDS[f.name]:
                continue
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output, validating names.

        Unknown keys and component names that are not registered raise
        ``ValueError`` so a typo in a JSON config fails before any training.
        """
        known = {f.name for f in fields(cls) if f.name != "dataset_fn"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown config fields {unknown}; known fields: {sorted(known)}"
            )
        payload = dict(data)
        for key in _TUPLE_FIELDS:
            if payload.get(key) is not None:
                payload[key] = tuple(payload[key])
        config = cls(**payload)
        config.validate()
        return config

    def validate(self) -> "ExperimentConfig":
        """Check every component name against its registry; returns self."""
        if self.dataset_fn is None:
            DATASETS.get(self.dataset)
        MODELS.get(self.model)
        delay_kind = self.delay["kind"] if isinstance(self.delay, dict) else self.delay
        DELAYS.get(delay_kind)
        NETWORK_SCALINGS.get(self.network_scaling)
        if self.lr_schedule is not None:
            LR_SCHEDULES.get(self.lr_schedule)
        if self.backend != "auto":
            BACKENDS.get(self.backend)
        if self.backend_shards < 1:
            raise ValueError(f"backend_shards must be >= 1, got {self.backend_shards}")
        if self.auto_shard_threshold is not None and self.auto_shard_threshold < 1:
            raise ValueError(
                f"auto_shard_threshold must be >= 1 or None, got {self.auto_shard_threshold}"
            )
        if self.bank_dtype not in ("float64", "float32"):
            raise ValueError(
                f"unknown bank_dtype {self.bank_dtype!r}; choose 'float64' or 'float32'"
            )
        if self.shard_transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                f"unknown shard_transport {self.shard_transport!r}; "
                f"choose 'auto', 'shm', or 'pipe'"
            )
        if self.weighting not in ("uniform", "shard_size"):
            raise ValueError(
                f"unknown weighting {self.weighting!r}; choose 'uniform' or 'shard_size'"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {list(TOPOLOGIES)}"
            )
        if self.gossip_rounds < 1:
            raise ValueError(f"gossip_rounds must be >= 1, got {self.gossip_rounds}")
        if self.staleness_damping < 0:
            raise ValueError(
                f"staleness_damping must be non-negative, got {self.staleness_damping}"
            )
        if not 0.0 <= self.elastic_dropout_prob < 1.0:
            raise ValueError(
                f"elastic_dropout_prob must be in [0, 1), got {self.elastic_dropout_prob}"
            )
        if self.elastic_deadline is not None and self.elastic_deadline <= 0:
            raise ValueError(
                f"elastic_deadline must be positive or None, got {self.elastic_deadline}"
            )
        return self


# -- named configs (declarative specs) ------------------------------------

_VGG_BASE: dict[str, Any] = dict(
    dataset="synth_cifar10",
    alpha=4.0,
    lr=0.4,
    adacomm_initial_tau=20,
    fixed_taus=(1, 20, 100),
)

_RESNET_BASE: dict[str, Any] = dict(
    dataset="synth_cifar10",
    alpha=0.5,
    lr=0.4,
    adacomm_initial_tau=5,
    fixed_taus=(1, 5, 100),
    wall_time_budget=1200.0,
    adacomm_interval=90.0,
)

_CIFAR100: dict[str, Any] = dict(dataset="synth_cifar100", n_classes=100, class_sep=1.2)
_BLOCK_MOMENTUM: dict[str, Any] = dict(momentum=0.9, block_momentum_beta=0.3, lr=0.05)

_CONFIG_SPECS: dict[str, dict[str, Any]] = {
    # Figure 9: VGG-16 (communication-heavy), CIFAR-10/100, fixed & variable LR.
    "vgg_cifar10_fixed_lr": {**_VGG_BASE},
    "vgg_cifar10_variable_lr": {**_VGG_BASE, "variable_lr": True},
    "vgg_cifar100_fixed_lr": {**_VGG_BASE, **_CIFAR100},
    # Figure 10: ResNet-50 (compute-heavy).
    "resnet_cifar10_fixed_lr": {**_RESNET_BASE},
    "resnet_cifar10_variable_lr": {**_RESNET_BASE, "variable_lr": True},
    "resnet_cifar100_fixed_lr": {**_RESNET_BASE, **_CIFAR100},
    # Figure 11: block momentum variants.
    "vgg_cifar10_block_momentum": {**_VGG_BASE, **_BLOCK_MOMENTUM},
    "resnet_cifar10_block_momentum": {**_RESNET_BASE, **_BLOCK_MOMENTUM},
    "resnet_cifar100_block_momentum": {**_RESNET_BASE, **_CIFAR100, **_BLOCK_MOMENTUM},
    # Figures 12–13 (appendix): 8-worker runs with per-worker batch 64.
    "vgg_cifar10_8workers": {
        **_VGG_BASE, "n_workers": 8, "batch_size": 8, "lr": 0.2, "variable_lr": True,
    },
    "resnet_cifar10_8workers": {
        **_RESNET_BASE, "n_workers": 8, "batch_size": 8, "lr": 0.2, "variable_lr": True,
        "adacomm_initial_tau": 10, "fixed_taus": (1, 10, 100),
    },
    # Small smoke-test config for unit/integration tests.
    "smoke": dict(
        dataset="synth_cifar10",
        n_train=240,
        n_test=80,
        n_features=16,
        class_sep=1.5,
        label_noise=0.0,
        hidden_sizes=(16,),
        n_workers=2,
        batch_size=16,
        alpha=1.0,
        wall_time_budget=60.0,
        adacomm_interval=15.0,
        adacomm_initial_tau=8,
        fixed_taus=(1, 8),
        lr=0.2,
    ),
}


def available_configs() -> list[str]:
    """Names accepted by :func:`make_config`."""
    return sorted(_CONFIG_SPECS)


def config_spec(name: str) -> dict[str, Any]:
    """A copy of the declarative spec behind a named config."""
    try:
        return dict(_CONFIG_SPECS[name])
    except KeyError as err:
        raise ValueError(f"unknown config {name!r}; available: {available_configs()}") from err


def _apply_scale(cfg: ExperimentConfig, scale: float) -> ExperimentConfig:
    """Scale the wall-clock budget, AdaComm interval, and training-set size."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale == 1.0:
        return cfg
    return cfg.with_overrides(
        wall_time_budget=cfg.wall_time_budget * scale,
        adacomm_interval=cfg.adacomm_interval * scale,
        n_train=max(cfg.n_workers * cfg.batch_size, int(cfg.n_train * scale + 0.5)),
    )


def make_config(name: str, scale: float = 1.0, **overrides) -> ExperimentConfig:
    """Build a named config, optionally scaling its budget/dataset size.

    ``scale`` multiplies the wall-clock budget and the training-set size (in
    both directions: ``scale < 1`` shrinks them for quick runs, ``scale > 1``
    grows them for higher-fidelity reproduction runs).
    """
    cfg = ExperimentConfig(name=name, **config_spec(name))
    cfg = _apply_scale(cfg, scale)
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg
