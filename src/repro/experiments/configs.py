"""Named experiment configurations.

Each configuration mirrors one experimental setting of the paper (model ×
dataset × learning-rate schedule × cluster size).  Two knobs matter most for
reproducing the paper's behaviour:

* ``alpha`` — the communication/computation ratio D/Y.  Figure 8 of the paper
  shows VGG-16's communication time is roughly 4× its computation time, while
  ResNet-50's communication is well under its computation; the ``vgg_*``
  configs therefore use α = 4.0 and the ``resnet_*`` configs α = 0.5.
* ``compute_time`` — the mean per-mini-batch compute time Y; all simulated
  wall-clock numbers are expressed in units of Y (set to 1 second).

All sizes here are deliberately small so a full experiment (4 methods ×
hundreds of simulated iterations) runs in seconds with the NumPy backend;
``scale`` multiplies the wall-clock budget and dataset size for
higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.data.synthetic import Dataset, make_synth_cifar10, make_synth_cifar100

__all__ = ["ExperimentConfig", "make_config", "available_configs"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one paper experiment end to end."""

    name: str
    # Workload
    dataset_fn: Callable[..., Dataset]
    n_train: int = 2400
    n_test: int = 600
    n_features: int = 64
    class_sep: float = 0.8
    label_noise: float = 0.15
    hidden_sizes: tuple[int, ...] = ()
    n_classes: int = 10
    # Cluster
    n_workers: int = 4
    batch_size: int = 8
    # Delay model (all times in units of the mean compute time)
    compute_time: float = 1.0
    compute_time_std_fraction: float = 0.25
    alpha: float = 4.0
    network_scaling: str = "constant"
    # Optimization
    lr: float = 0.4
    weight_decay: float = 1e-4
    momentum: float = 0.0
    block_momentum_beta: float = 0.0
    variable_lr: bool = False
    lr_decay_milestones: tuple[float, ...] = (3.0, 6.0, 9.0)
    lr_decay_gamma: float = 0.1
    # Budgets / schedules
    wall_time_budget: float = 1800.0
    adacomm_interval: float = 120.0
    adacomm_initial_tau: int = 20
    fixed_taus: tuple[int, ...] = (1, 20, 100)
    eval_every_rounds: int = 1
    seed: int = 7

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def communication_delay(self) -> float:
        """Mean all-node broadcast delay D = α · Y."""
        return self.alpha * self.compute_time

    def build_dataset(self, rng=None) -> Dataset:
        """Instantiate the train+test dataset for this config."""
        return self.dataset_fn(
            n_samples=self.n_train + self.n_test,
            n_features=self.n_features,
            class_sep=self.class_sep,
            label_noise=self.label_noise,
            rng=rng if rng is not None else self.seed,
        )


def _base_vgg(name: str, **overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(
        name=name,
        dataset_fn=make_synth_cifar10,
        alpha=4.0,
        lr=0.4,
        adacomm_initial_tau=20,
        fixed_taus=(1, 20, 100),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def _base_resnet(name: str, **overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(
        name=name,
        dataset_fn=make_synth_cifar10,
        alpha=0.5,
        lr=0.4,
        adacomm_initial_tau=5,
        fixed_taus=(1, 5, 100),
        wall_time_budget=1200.0,
        adacomm_interval=90.0,
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


_CONFIG_BUILDERS: dict[str, Callable[[], ExperimentConfig]] = {
    # Figure 9: VGG-16 (communication-heavy), CIFAR-10/100, fixed & variable LR.
    "vgg_cifar10_fixed_lr": lambda: _base_vgg("vgg_cifar10_fixed_lr"),
    "vgg_cifar10_variable_lr": lambda: _base_vgg("vgg_cifar10_variable_lr", variable_lr=True),
    "vgg_cifar100_fixed_lr": lambda: _base_vgg(
        "vgg_cifar100_fixed_lr", dataset_fn=make_synth_cifar100, n_classes=100, class_sep=1.2
    ),
    # Figure 10: ResNet-50 (compute-heavy).
    "resnet_cifar10_fixed_lr": lambda: _base_resnet("resnet_cifar10_fixed_lr"),
    "resnet_cifar10_variable_lr": lambda: _base_resnet("resnet_cifar10_variable_lr", variable_lr=True),
    "resnet_cifar100_fixed_lr": lambda: _base_resnet(
        "resnet_cifar100_fixed_lr", dataset_fn=make_synth_cifar100, n_classes=100, class_sep=1.2
    ),
    # Figure 11: block momentum variants.
    "vgg_cifar10_block_momentum": lambda: _base_vgg(
        "vgg_cifar10_block_momentum", momentum=0.9, block_momentum_beta=0.3, lr=0.05
    ),
    "resnet_cifar10_block_momentum": lambda: _base_resnet(
        "resnet_cifar10_block_momentum", momentum=0.9, block_momentum_beta=0.3, lr=0.05
    ),
    "resnet_cifar100_block_momentum": lambda: _base_resnet(
        "resnet_cifar100_block_momentum",
        dataset_fn=make_synth_cifar100,
        n_classes=100,
        class_sep=1.2,
        momentum=0.9,
        block_momentum_beta=0.3,
        lr=0.05,
    ),
    # Figures 12–13 (appendix): 8-worker runs with per-worker batch 64.
    "vgg_cifar10_8workers": lambda: _base_vgg(
        "vgg_cifar10_8workers", n_workers=8, batch_size=8, lr=0.2, variable_lr=True
    ),
    "resnet_cifar10_8workers": lambda: _base_resnet(
        "resnet_cifar10_8workers", n_workers=8, batch_size=8, lr=0.2, variable_lr=True,
        adacomm_initial_tau=10, fixed_taus=(1, 10, 100),
    ),
    # Small smoke-test config for unit/integration tests.
    "smoke": lambda: ExperimentConfig(
        name="smoke",
        dataset_fn=make_synth_cifar10,
        n_train=240,
        n_test=80,
        n_features=16,
        class_sep=1.5,
        label_noise=0.0,
        hidden_sizes=(16,),
        n_workers=2,
        batch_size=16,
        alpha=1.0,
        wall_time_budget=60.0,
        adacomm_interval=15.0,
        adacomm_initial_tau=8,
        fixed_taus=(1, 8),
        lr=0.2,
    ),
}


def available_configs() -> list[str]:
    """Names accepted by :func:`make_config`."""
    return sorted(_CONFIG_BUILDERS)


def make_config(name: str, scale: float = 1.0, **overrides) -> ExperimentConfig:
    """Build a named config, optionally scaling its budget/dataset size.

    ``scale`` multiplies the wall-clock budget and the training-set size; the
    benchmarks use ``scale < 1`` for quick runs and ``scale >= 1`` for
    higher-fidelity reproduction runs.
    """
    try:
        cfg = _CONFIG_BUILDERS[name]()
    except KeyError as err:
        raise ValueError(f"unknown config {name!r}; available: {available_configs()}") from err
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale != 1.0:
        cfg = cfg.with_overrides(
            wall_time_budget=cfg.wall_time_budget * scale,
            adacomm_interval=cfg.adacomm_interval * scale,
            n_train=max(cfg.n_workers * cfg.batch_size, int(cfg.n_train * min(scale, 1.0) + 0.5)),
        )
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg
