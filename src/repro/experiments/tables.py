"""Formatting run stores into the paper's tables.

``accuracy_table`` reproduces Table 1 (best test accuracy within the time
budget, per method), ``time_to_loss_table`` and ``speedup_table`` produce the
"X minutes vs Y minutes → Z× speedup" comparisons quoted throughout
Section 5.  ``sweep_summary_table`` renders an entire campaign from a
persistent :class:`~repro.sweep.store.ResultStore` (one row per cell ×
method).  ``format_table`` renders any of them as aligned plain text, which
is what the benchmark targets and the CLI print.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.utils.results import RunStore

__all__ = [
    "format_table",
    "accuracy_table",
    "time_to_loss_table",
    "speedup_table",
    "sweep_summary_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "n/a"
        if math.isinf(cell):
            return "inf"
        return f"{cell:.4g}"
    return str(cell)


def accuracy_table(store: RunStore, time_budget: float | None = None) -> list[list[object]]:
    """Rows of (method, best test accuracy %) — the Table 1 quantity."""
    rows: list[list[object]] = []
    for record in store:
        acc = record.best_accuracy(time_budget=time_budget)
        rows.append([record.name, 100.0 * acc if not math.isnan(acc) else float("nan")])
    return rows


def time_to_loss_table(store: RunStore, target_loss: float) -> list[list[object]]:
    """Rows of (method, simulated seconds to reach the target training loss)."""
    rows: list[list[object]] = []
    for record in store:
        rows.append([record.name, record.time_to_loss(target_loss), record.best_loss()])
    return rows


def speedup_table(store: RunStore, baseline: str, target_loss: float) -> list[list[object]]:
    """Rows of (method, speedup over the baseline method at the target loss)."""
    if baseline not in store:
        raise KeyError(f"baseline run {baseline!r} not in store")
    rows: list[list[object]] = []
    for record in store:
        rows.append([record.name, store.speedup(record.name, baseline, target_loss)])
    return rows


def sweep_summary_table(
    result_store,
    addresses: "list[str] | None" = None,
    target_loss: float | None = None,
) -> list[list[object]]:
    """One row per (cell, method) of a sweep campaign, from the store alone.

    ``result_store`` is a :class:`~repro.sweep.store.ResultStore` (or an
    iterable of loaded :class:`~repro.sweep.store.CellResult`); rows are
    ``[cell, method, best loss, best test accuracy %, time to target]`` (the
    last column only when ``target_loss`` is given).  Pair with
    :func:`format_table` and headers like ``["cell", "method", "best loss",
    "best acc (%)", "t(loss<=X)"]``.
    """
    from repro.experiments.figures import iter_sweep_cells

    rows: list[list[object]] = []
    for cell in iter_sweep_cells(result_store, addresses):
        for record in cell.runs:
            acc = record.best_accuracy()
            row: list[object] = [
                cell.label,
                record.name,
                record.best_loss(),
                100.0 * acc if not math.isnan(acc) else float("nan"),
            ]
            if target_loss is not None:
                row.append(record.time_to_loss(target_loss))
            rows.append(row)
    return rows
