"""Running a full paper-style experiment: several methods on one workload.

``run_experiment(config)`` executes fully synchronous SGD (τ=1), the fixed-τ
PASGD baselines, and ADACOMM on the same dataset / delay model / learning-rate
schedule and collects all trajectories into a :class:`RunStore`, from which
the table/figure formatters extract the numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.adacomm import AdaCommConfig
from repro.core.schedules import (
    AdaCommSchedule,
    CommunicationSchedule,
    FixedCommunicationSchedule,
)
from repro.core.trainer import PASGDTrainer, TrainerConfig
from repro.data.synthetic import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.experiments.configs import ExperimentConfig
from repro.models.mlp import MLP
from repro.optim.block_momentum import BlockMomentum
from repro.optim.lr_schedules import ConstantLR, LRSchedule, TauGatedStepLR
from repro.runtime.distributions import ShiftedExponentialDelay, ConstantDelay, DelayDistribution
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.logging import get_logger
from repro.utils.results import RunRecord, RunStore
from repro.utils.seeding import SeedSequence

__all__ = ["MethodSpec", "default_methods", "run_method", "run_experiment"]

logger = get_logger("experiments.harness")


@dataclass(frozen=True)
class MethodSpec:
    """One method to run: a label plus a factory for its communication schedule."""

    label: str
    schedule_fn: Callable[[], CommunicationSchedule]


def default_methods(config: ExperimentConfig) -> list[MethodSpec]:
    """The paper's method lineup: τ=1 baseline, fixed-τ baselines, ADACOMM."""
    methods = [
        MethodSpec(
            label="sync-sgd" if tau == 1 else f"pasgd-tau{tau}",
            schedule_fn=(lambda t=tau: FixedCommunicationSchedule(t)),
        )
        for tau in config.fixed_taus
    ]
    methods.append(
        MethodSpec(
            label="adacomm",
            schedule_fn=lambda: AdaCommSchedule(
                AdaCommConfig(
                    initial_tau=config.adacomm_initial_tau,
                    interval_length=config.adacomm_interval,
                    couple_lr=True,
                )
            ),
        )
    )
    return methods


def _build_compute_distribution(config: ExperimentConfig) -> DelayDistribution:
    """Compute-time distribution: shifted exponential with the configured mean."""
    if config.compute_time_std_fraction <= 0:
        return ConstantDelay(config.compute_time)
    scale = config.compute_time * config.compute_time_std_fraction
    shift = config.compute_time - scale
    if shift < 0:
        scale = config.compute_time
        shift = 0.0
    return ShiftedExponentialDelay(shift=shift, scale=scale)


def _build_lr_schedule(config: ExperimentConfig) -> LRSchedule:
    if config.variable_lr:
        return TauGatedStepLR(
            lr=config.lr, milestones=config.lr_decay_milestones, gamma=config.lr_decay_gamma
        )
    return ConstantLR(config.lr)


def _split_dataset(config: ExperimentConfig, rng: np.random.Generator) -> tuple[Dataset, Dataset]:
    dataset = config.build_dataset(rng=rng)
    test_fraction = config.n_test / (config.n_train + config.n_test)
    return dataset.split(test_fraction=test_fraction, rng=rng)


def run_method(
    config: ExperimentConfig,
    method: MethodSpec,
    train_set: Dataset | None = None,
    test_set: Dataset | None = None,
    record_discrepancy: bool = False,
) -> RunRecord:
    """Run one method under ``config`` and return its trajectory."""
    seeds = SeedSequence(config.seed)
    if train_set is None or test_set is None:
        train_set, test_set = _split_dataset(config, seeds.generator())

    compute = _build_compute_distribution(config)
    network = NetworkModel(
        base_delay=config.communication_delay, scaling=config.network_scaling
    )
    runtime = RuntimeSimulator(compute, network, config.n_workers, rng=seeds.generator())

    model_seed = seeds.spawn()

    def model_fn() -> MLP:
        return MLP(
            n_features=config.n_features,
            n_classes=config.n_classes,
            hidden_sizes=config.hidden_sizes,
            rng=model_seed,
        )

    block = BlockMomentum(config.block_momentum_beta) if config.block_momentum_beta > 0 else None
    cluster = SimulatedCluster(
        model_fn=model_fn,
        dataset=train_set,
        runtime=runtime,
        n_workers=config.n_workers,
        batch_size=config.batch_size,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        block_momentum=block,
        seed=seeds.spawn(),
    )

    iters_per_epoch = max(1, len(train_set) // (config.batch_size * config.n_workers))
    trainer = PASGDTrainer(
        cluster=cluster,
        schedule=method.schedule_fn(),
        lr_schedule=_build_lr_schedule(config),
        train_eval_data=(train_set.X, train_set.y),
        test_eval_data=(test_set.X, test_set.y),
        config=TrainerConfig(
            max_wall_time=config.wall_time_budget,
            eval_every_rounds=config.eval_every_rounds,
            iterations_per_epoch=iters_per_epoch,
            record_discrepancy=record_discrepancy,
        ),
        name=method.label,
        rng=seeds.generator(),
    )
    record = trainer.train()
    record.config.update(
        {
            "experiment": config.name,
            "alpha": config.alpha,
            "n_workers": config.n_workers,
            "block_momentum": config.block_momentum_beta,
            "variable_lr": config.variable_lr,
        }
    )
    record.config["event_breakdown"] = cluster.events.breakdown()
    return record


def run_experiment(
    config: ExperimentConfig,
    methods: Sequence[MethodSpec] | None = None,
    record_discrepancy: bool = False,
) -> RunStore:
    """Run all methods on a shared dataset split and collect their records."""
    seeds = SeedSequence(config.seed)
    train_set, test_set = _split_dataset(config, seeds.generator())
    store = RunStore()
    for method in methods or default_methods(config):
        logger.info("running %s on %s", method.label, config.name)
        record = run_method(
            config,
            method,
            train_set=train_set,
            test_set=test_set,
            record_discrepancy=record_discrepancy,
        )
        store.add(record)
    return store
