"""Running a full paper-style experiment: several methods on one workload.

``run_experiment(config)`` executes the configured method lineup — by default
fully synchronous SGD (τ=1), the fixed-τ PASGD baselines, and ADACOMM — on
the same dataset / delay model / learning-rate schedule and collects all
trajectories into a :class:`RunStore`, from which the table/figure formatters
extract the numbers the paper reports.

Every component is resolved *by name* through the ``repro.api`` registries:
the model from ``MODELS``, the compute-time distribution from ``DELAYS``
(with parameters derived from the config's mean/std knobs by moment
matching), the learning-rate schedule from ``LR_SCHEDULES``, and each method
spec string ("sync-sgd", "pasgd-tau20", "adacomm", or
"<schedule>:key=value,...") from ``COMM_SCHEDULES``.  The worker-execution
backend comes from ``BACKENDS``: the default ``backend="auto"`` runs the
vectorized worker bank for every registered model (CNNs, batch-norm nets,
dropout, and data-free objectives included), escalating to the sharded
multi-process bank at large cluster sizes (``auto_shard_threshold``); the
per-worker loop remains as the reference implementation for third-party
models without a bank path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.api.registries import COMM_SCHEDULES, DELAYS, LR_SCHEDULES, MODELS
from repro.api.registry import filter_kwargs
from repro.core.schedules import CommunicationSchedule
from repro.core.trainer import AsyncPASGDTrainer, PASGDTrainer, TrainerConfig
from repro.data.synthetic import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.reuse import BackendHandle
from repro.experiments.configs import ExperimentConfig
from repro.obs.tracer import span
from repro.optim.block_momentum import BlockMomentum
from repro.optim.lr_schedules import LRSchedule
from repro.runtime.distributions import DelayDistribution
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.logging import get_logger
from repro.utils.results import RunRecord, RunStore
from repro.utils.seeding import SeedSequence

__all__ = [
    "MethodSpec",
    "parse_method_spec",
    "default_methods",
    "run_method",
    "run_experiment",
]

logger = get_logger("experiments.harness")


@dataclass(frozen=True)
class MethodSpec:
    """One method to run: a label plus a factory for its communication schedule.

    ``overrides`` are :class:`ExperimentConfig` fields the method imposes on
    top of the experiment's config (e.g. a gossip spec sets ``topology``);
    :func:`run_method` applies them before building the cluster, so one
    lineup can mix synchronous, gossip, async, and elastic methods on the
    same workload.  ``mode`` selects the execution loop: ``"sync"`` (the
    paper's barriered periodic averaging) or ``"async"`` (arrival-ordered
    parameter-server folds via :class:`AsyncPASGDTrainer`).
    """

    label: str
    schedule_fn: Callable[[], CommunicationSchedule]
    overrides: dict = field(default_factory=dict)
    mode: str = "sync"


def _split_top_level(argstr: str) -> list[str]:
    """Split on commas that are not nested inside (), [] or {}."""
    parts, depth, current = [], 0, []
    for char in argstr:
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _parse_spec_kwargs(argstr: str) -> dict:
    """Parse ``key=value,key=value`` with Python-literal values (str fallback).

    Commas inside brackets belong to the value, so list-valued arguments like
    ``sequence:taus=[8,4,1]`` parse as one kwarg.
    """
    kwargs: dict = {}
    for part in filter(None, _split_top_level(argstr)):
        key, sep, raw = part.partition("=")
        if not sep:
            raise ValueError(f"method spec argument {part!r} is not of the form key=value")
        try:
            kwargs[key.strip()] = ast.literal_eval(raw.strip())
        except (ValueError, SyntaxError):
            kwargs[key.strip()] = raw.strip()
    return kwargs


def parse_method_spec(spec: "str | MethodSpec", config: ExperimentConfig) -> MethodSpec:
    """Resolve a method spec string into a :class:`MethodSpec`.

    Accepted forms:

    * ``"sync-sgd"`` — fixed τ = 1;
    * ``"pasgd-tau<N>"`` — fixed τ = N;
    * ``"adacomm"`` — ADACOMM with the config's interval / initial τ;
    * ``"gossip-<topology>-tau<N>"`` or ``"gossip:topology=ring,tau=4,rounds=2"``
      — decentralized gossip averaging over a fixed-τ schedule;
    * ``"async-tau<N>"`` or ``"async:tau=8,damping=0.3"`` — barrier-free
      parameter-server execution with optional staleness damping;
    * ``"elastic:p=0.1,tau=4"`` (and/or ``deadline=<t>``) — fixed-τ averaging
      with seeded per-round worker dropout;
    * ``"<name>"`` or ``"<name>:key=value,..."`` — any schedule registered in
      ``COMM_SCHEDULES`` (e.g. ``"fixed:tau=4"``, ``"adacomm:initial_tau=50"``).
    """
    if isinstance(spec, MethodSpec):
        return spec
    name, _, argstr = spec.partition(":")
    kwargs = _parse_spec_kwargs(argstr)
    overrides: dict = {}
    mode = "sync"
    label: "str | None" = None
    if name == "sync-sgd":
        kwargs.setdefault("tau", 1)
        name = "fixed"
    elif name.startswith("pasgd-tau"):
        try:
            kwargs.setdefault("tau", int(name[len("pasgd-tau"):]))
        except ValueError:
            raise ValueError(
                f"method spec {spec!r} has a malformed tau; e.g. 'pasgd-tau8'"
            ) from None
        name = "fixed"
    elif name == "pasgd":
        name = "fixed"
    elif name == "adacomm":
        kwargs.setdefault("initial_tau", config.adacomm_initial_tau)
        kwargs.setdefault("interval_length", config.adacomm_interval)
        kwargs.setdefault("couple_lr", True)
    elif name == "gossip" or name.startswith("gossip-"):
        topology = kwargs.pop("topology", None)
        rounds = int(kwargs.pop("rounds", kwargs.pop("gossip_rounds", config.gossip_rounds)))
        if name != "gossip":
            body, sep, tau_part = name[len("gossip-"):].rpartition("-tau")
            if not sep or not body:
                raise ValueError(
                    f"method spec {spec!r} is malformed; e.g. 'gossip-ring-tau4'"
                )
            topology = body
            try:
                kwargs.setdefault("tau", int(tau_part))
            except ValueError:
                raise ValueError(
                    f"method spec {spec!r} has a malformed tau; e.g. 'gossip-ring-tau4'"
                ) from None
        if topology is None:
            raise ValueError(
                f"method spec {spec!r} needs a topology; e.g. 'gossip-ring-tau4' "
                f"or 'gossip:topology=ring,tau=4'"
            )
        kwargs.setdefault("tau", 1)
        overrides = {"topology": str(topology), "gossip_rounds": rounds}
        label = f"gossip-{topology}-tau{kwargs['tau']}"
        if rounds != 1:
            label += f"-r{rounds}"
        name = "fixed"
    elif name == "async" or name.startswith("async-tau"):
        damping = float(
            kwargs.pop("damping", kwargs.pop("staleness_damping", config.staleness_damping))
        )
        if name != "async":
            try:
                kwargs.setdefault("tau", int(name[len("async-tau"):]))
            except ValueError:
                raise ValueError(
                    f"method spec {spec!r} has a malformed tau; e.g. 'async-tau8'"
                ) from None
        kwargs.setdefault("tau", 1)
        mode = "async"
        if damping > 0.0:
            overrides = {"staleness_damping": damping}
        label = f"async-tau{kwargs['tau']}"
        if damping > 0.0:
            label += f"-d{damping:g}"
        name = "fixed"
    elif name == "elastic":
        prob = float(
            kwargs.pop("p", kwargs.pop("dropout_prob", config.elastic_dropout_prob))
        )
        deadline = kwargs.pop("deadline", config.elastic_deadline)
        deadline = float(deadline) if deadline is not None else None
        if prob == 0.0 and deadline is None:
            raise ValueError(
                f"method spec {spec!r} needs a dropout probability or deadline; "
                f"e.g. 'elastic:p=0.1,tau=4'"
            )
        kwargs.setdefault("tau", 1)
        overrides = {"elastic_dropout_prob": prob, "elastic_deadline": deadline}
        label = f"elastic-tau{kwargs['tau']}"
        if prob > 0.0:
            label += f"-p{prob:g}"
        if deadline is not None:
            label += f"-d{deadline:g}"
        name = "fixed"
    factory = COMM_SCHEDULES.get(name)  # raises with available names if unknown

    kwargs_snapshot = dict(kwargs)

    def schedule_fn(factory=factory, kwargs=kwargs_snapshot) -> CommunicationSchedule:
        return factory(**kwargs)

    # One throwaway instance gives the canonical label ("sync-sgd",
    # "pasgd-tau20", "adacomm", ...); schedules are cheap to construct.  It
    # also validates the arguments up front, where the spec string is known.
    try:
        schedule_label = schedule_fn().label
    except TypeError as err:
        raise ValueError(
            f"method spec {spec!r} has missing or invalid arguments ({err}); "
            f"e.g. 'pasgd-tau8' or 'fixed:tau=8'"
        ) from err
    return MethodSpec(
        label=label if label is not None else schedule_label,
        schedule_fn=schedule_fn,
        overrides=overrides,
        mode=mode,
    )


def default_methods(config: ExperimentConfig) -> list[MethodSpec]:
    """The configured method lineup.

    ``config.methods`` names the methods explicitly; when it is ``None`` the
    paper's default lineup is used: one fixed-τ baseline per ``fixed_taus``
    entry (τ=1 is fully synchronous SGD) plus ADACOMM.
    """
    if config.methods is not None:
        specs: Sequence[str] = config.methods
    else:
        specs = [
            "sync-sgd" if tau == 1 else f"pasgd-tau{tau}" for tau in config.fixed_taus
        ] + ["adacomm"]
    return [parse_method_spec(spec, config) for spec in specs]


def _build_compute_distribution(config: ExperimentConfig) -> DelayDistribution:
    """Resolve the compute-time distribution from the config's ``delay`` spec.

    A dict spec ``{"kind": name, **params}`` is built verbatim from the
    ``DELAYS`` registry.  A bare name delegates to the distribution's own
    ``from_moments(mean, std)`` classmethod with ``compute_time`` (mean Y)
    and ``compute_time_std_fraction · compute_time`` (std), so every named
    delay — builtin or third-party ``@DELAYS.register(...)`` — plugs into
    the same two config knobs by defining that one hook.
    """
    spec = config.delay
    if isinstance(spec, dict):
        params = dict(spec)
        try:
            kind = params.pop("kind")
        except KeyError:
            raise ValueError(f"delay spec dict must have a 'kind' key, got {spec!r}") from None
        return DELAYS.build(kind, **params)

    mean = config.compute_time
    std = config.compute_time_std_fraction * mean
    factory = DELAYS.get(spec)  # raise the standard unknown-name error first
    if std <= 0:
        # Zero spread degenerates to a deterministic delay for every family.
        return DELAYS.build("constant", value=mean)
    from_moments = getattr(factory, "from_moments", None)
    if from_moments is None:
        raise ValueError(
            f"delay distribution {spec!r} has no from_moments(mean, std) hook; pass "
            f"an explicit spec dict like {{'kind': {spec!r}, ...params}} instead"
        )
    try:
        return from_moments(mean, std)
    except NotImplementedError as err:
        raise ValueError(
            f"delay distribution {spec!r} has no moment-matching rule ({err}); pass "
            f"an explicit spec dict like {{'kind': {spec!r}, ...params}} instead"
        ) from None


def _build_lr_schedule(config: ExperimentConfig) -> LRSchedule:
    """Resolve the LR schedule: ``lr_schedule`` name, else the ``variable_lr`` flag."""
    if config.lr_schedule is not None:
        milestones = tuple(config.lr_decay_milestones)
        return LR_SCHEDULES.build_filtered(
            config.lr_schedule,
            lr=config.lr,
            milestones=milestones,
            gamma=config.lr_decay_gamma,
            step_epochs=milestones[0] if milestones else 1.0,
        )
    if config.variable_lr:
        return LR_SCHEDULES.build(
            "tau_gated",
            lr=config.lr,
            milestones=config.lr_decay_milestones,
            gamma=config.lr_decay_gamma,
        )
    return LR_SCHEDULES.build("constant", lr=config.lr)


def _build_model_fn(
    config: ExperimentConfig, model_seed: int, n_features: int | None = None
) -> Callable:
    """Model factory resolved from the ``MODELS`` registry.

    Builders have heterogeneous signatures (CNNs take no ``hidden_sizes``,
    linear models no ``hidden_sizes`` either), so the standard kwargs are
    filtered per builder; ``config.model_kwargs`` entries are passed last and
    unconditionally, so an unknown name there fails loudly.

    ``n_features`` is the feature count of the *built* dataset, which wins
    over ``config.n_features``: generators with an intrinsic dimensionality
    (e.g. ``spirals``) ignore the config knob, and the model must match the
    data it will actually see.
    """
    builder = MODELS.get(config.model)
    kwargs = filter_kwargs(
        builder,
        dict(
            n_features=config.n_features if n_features is None else n_features,
            n_classes=config.n_classes,
            hidden_sizes=config.hidden_sizes,
            rng=model_seed,
        ),
    )
    kwargs.update(config.model_kwargs)

    def model_fn():
        return builder(**kwargs)

    return model_fn


def _split_dataset(config: ExperimentConfig, rng: np.random.Generator) -> tuple[Dataset, Dataset]:
    dataset = config.build_dataset(rng=rng)
    test_fraction = config.n_test / (config.n_train + config.n_test)
    return dataset.split(test_fraction=test_fraction, rng=rng)


def run_method(
    config: ExperimentConfig,
    method: "MethodSpec | str",
    train_set: Dataset | None = None,
    test_set: Dataset | None = None,
    record_discrepancy: bool = False,
    backend_handle: "BackendHandle | None" = None,
) -> RunRecord:
    """Run one method under ``config`` and return its trajectory.

    ``method`` may be a :class:`MethodSpec` or a method spec string such as
    ``"pasgd-tau20"`` (see :func:`parse_method_spec`).  ``backend_handle``
    opts into backend reuse across calls: the cluster resolves its backend
    through the handle (so a sharded pool spawned by one method is rebuilt
    in place for the next) and the *caller* owns the pool's lifetime —
    the per-run ``cluster.close()`` here leaves it alive.
    """
    method = parse_method_spec(method, config)
    if method.overrides:
        # Method-imposed config fields (topology, dropout, damping).  Applied
        # *after* the dataset split below uses the original seed stream, so a
        # gossip/async/elastic method shares the exact split of its
        # synchronous siblings in the same lineup.
        config = config.with_overrides(**method.overrides).validate()
    if method.mode == "async" and config.topology != "complete":
        raise ValueError(
            "async execution uses a central parameter server; it cannot be "
            f"combined with topology={config.topology!r}"
        )
    seeds = SeedSequence(config.seed)
    if train_set is None or test_set is None:
        train_set, test_set = _split_dataset(config, seeds.generator())

    compute = _build_compute_distribution(config)
    network = NetworkModel(
        base_delay=config.communication_delay, scaling=config.network_scaling
    )
    runtime = RuntimeSimulator(compute, network, config.n_workers, rng=seeds.generator())

    model_fn = _build_model_fn(
        config, model_seed=seeds.spawn(), n_features=train_set.n_features
    )

    block = BlockMomentum(config.block_momentum_beta) if config.block_momentum_beta > 0 else None
    cluster = SimulatedCluster(
        model_fn=model_fn,
        dataset=train_set,
        runtime=runtime,
        n_workers=config.n_workers,
        batch_size=config.batch_size,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        block_momentum=block,
        seed=seeds.spawn(),
        backend=config.backend if backend_handle is None else backend_handle,
        weighting=config.weighting,
        n_shards=config.backend_shards,
        auto_shard_threshold=config.auto_shard_threshold,
        bank_dtype=config.bank_dtype,
        shard_transport=config.shard_transport,
        topology=config.topology,
        gossip_rounds=config.gossip_rounds,
        dropout_prob=config.elastic_dropout_prob,
        dropout_deadline=config.elastic_deadline,
    )

    try:
        iters_per_epoch = max(1, len(train_set) // (config.batch_size * config.n_workers))
        trainer_kwargs = dict(
            cluster=cluster,
            schedule=method.schedule_fn(),
            lr_schedule=_build_lr_schedule(config),
            train_eval_data=(train_set.X, train_set.y),
            test_eval_data=(test_set.X, test_set.y),
            config=TrainerConfig(
                max_wall_time=config.wall_time_budget,
                eval_every_rounds=config.eval_every_rounds,
                iterations_per_epoch=iters_per_epoch,
                record_discrepancy=record_discrepancy,
            ),
            name=method.label,
            rng=seeds.generator(),
        )
        if method.mode == "async":
            trainer = AsyncPASGDTrainer(
                staleness_damping=config.staleness_damping, **trainer_kwargs
            )
        else:
            trainer = PASGDTrainer(**trainer_kwargs)
        with span(
            "method",
            clock=cluster.clock,
            method=method.label,
            experiment=config.name,
            backend=cluster.backend_name,
        ):
            record = trainer.train()
        record.config.update(
            {
                "experiment": config.name,
                "model": config.model,
                "dataset": config.dataset,
                "alpha": config.alpha,
                "n_workers": config.n_workers,
                "block_momentum": config.block_momentum_beta,
                "variable_lr": config.variable_lr,
                "backend": cluster.backend_name,
            }
        )
        # Method-family fields ride along only when non-default, so records
        # from classic sync methods keep their exact golden-fixture bytes.
        if config.topology != "complete":
            record.config["topology"] = config.topology
            record.config["gossip_rounds"] = config.gossip_rounds
        if method.mode != "sync":
            record.config["mode"] = method.mode
            record.config["staleness_damping"] = config.staleness_damping
        if config.elastic_dropout_prob > 0.0 or config.elastic_deadline is not None:
            record.config["elastic_dropout_prob"] = config.elastic_dropout_prob
            record.config["elastic_deadline"] = config.elastic_deadline
        record.config["event_breakdown"] = cluster.events.breakdown()
        return record
    finally:
        # Shut the sharded backend's process pool down (no-op elsewhere).
        cluster.close()


def run_experiment(
    config: ExperimentConfig,
    methods: Sequence["MethodSpec | str"] | None = None,
    record_discrepancy: bool = False,
    backend_handle: "BackendHandle | None" = None,
) -> RunStore:
    """Run all methods on a shared dataset split and collect their records.

    The whole lineup shares one :class:`BackendHandle`, so when the config
    resolves to the sharded backend its process pool is spawned once and
    rebuilt in place between methods instead of respawned per method
    (byte-identical trajectories either way; see
    ``repro.distributed.reuse``).  Passing ``backend_handle`` extends the
    reuse across *calls* — e.g. the serial sweep path hands every cell one
    handle — in which case the caller owns (and must close) the handle.
    """
    seeds = SeedSequence(config.seed)
    train_set, test_set = _split_dataset(config, seeds.generator())
    store = RunStore()
    resolved = (
        [parse_method_spec(m, config) for m in methods]
        if methods is not None
        else default_methods(config)
    )

    def _run_lineup(handle: BackendHandle) -> None:
        for method in resolved:
            logger.info("running %s on %s", method.label, config.name)
            record = run_method(
                config,
                method,
                train_set=train_set,
                test_set=test_set,
                record_discrepancy=record_discrepancy,
                backend_handle=handle,
            )
            store.add(record)

    with span("experiment", experiment=config.name, n_methods=len(resolved)):
        if backend_handle is not None:
            _run_lineup(backend_handle)
        else:
            with BackendHandle(
                config.backend,
                n_shards=config.backend_shards,
                auto_shard_threshold=config.auto_shard_threshold,
                shard_transport=config.shard_transport,
            ) as handle:
                _run_lineup(handle)
    return store
