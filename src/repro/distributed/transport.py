"""Zero-copy data plane for the sharded backend: the shared-memory state plane.

The Pipe transport that shipped with ``backend="sharded"`` pickles the full
``(m, P)`` float bank through ``Connection.send``/``recv`` twice per training
round (gather + broadcast), so transport — not arithmetic — dominated the
sharded column of BENCH_backend.json.  This module provides the replacement:
one :class:`multiprocessing.shared_memory.SharedMemory` segment holds the
stacked worker states, a second holds the broadcast vector, and an optional
third holds per-worker buffer rows (BatchNorm running statistics).  Shard
children write their ``[lo, hi)`` state rows in place and read broadcasts
from the same mapping, so the Pipes carry only tiny ``(op, args)`` control
tuples and the per-round pickled payload drops from O(m·P) to O(1).

Ownership is asymmetric by design: the parent *creates* the segments and is
the only side that ever ``unlink``\\ s them (exactly once, from ``close()``
or its ``weakref.finalize`` safety net); children *attach* via the picklable
:meth:`ShmStatePlane.spec` recipe carried inside the spawn payload and only
``close()`` their mapping.  POSIX keeps an unlinked segment alive until the
last mapping closes, so teardown order can never corrupt a reader.

Sizing caveat: the states segment is ``m × P`` elements of the bank dtype in
``/dev/shm`` (a tmpfs, typically capped at half of RAM).  Allocation failure
— or an interpreter built without ``multiprocessing.shared_memory`` — falls
back to the Pipe transport rather than failing the run; ``"shm"`` is a
preference, not an assertion.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - minimal builds without _posixshmem
    _shared_memory = None

__all__ = [
    "ShmStatePlane",
    "TRANSPORTS",
    "buffer_spec",
    "resolve_transport",
    "shm_available",
]

#: Valid ``shard_transport`` spellings, in config/CLI order.
TRANSPORTS = ("auto", "shm", "pipe")


def shm_available() -> bool:
    """Whether this interpreter can allocate POSIX shared memory at all."""
    return _shared_memory is not None


def resolve_transport(requested: str) -> str:
    """Map a requested transport to the one the platform can deliver.

    ``"auto"`` and ``"shm"`` both resolve to the shared-memory plane when
    the interpreter ships ``multiprocessing.shared_memory``, falling back
    to ``"pipe"`` otherwise (segment-allocation failures downgrade later,
    at creation time).  Requesting ``"shm"`` is a preference, not an
    assertion, so configs stay portable across platforms.
    """
    if requested not in TRANSPORTS:
        raise ValueError(
            f"unknown shard transport {requested!r}; choose one of {TRANSPORTS}"
        )
    if requested == "pipe":
        return "pipe"
    return "shm" if shm_available() else "pipe"


def buffer_spec(template) -> tuple:
    """``(name, shape, size)`` per template buffer, in bank storage order.

    The plane packs every worker's buffers into one flat row; this spec is
    the shared pack/unpack recipe, derived once in the parent and shipped
    to the children inside :meth:`ShmStatePlane.spec` (it is pure data, so
    the payload stays spawn-picklable).
    """
    return tuple(
        (name, tuple(int(dim) for dim in np.shape(value)), int(np.size(value)))
        for name, value in template.named_buffers()
    )


class ShmStatePlane:
    """One sharded run's shared-memory segments: states, broadcast, buffers.

    ``states`` is the ``(m, P)`` stacked worker bank in the bank dtype —
    each shard child owns rows ``[lo, hi)`` and writes them in place on a
    ``sync_states`` command, so the parent's gather is a read of its own
    mapping.  ``bcast`` is the ``(P,)`` float64 averaged model the parent
    writes before the (fire-and-forget) ``broadcast_shm`` command.
    ``buffers`` (present only when the template has buffers) holds one
    packed row of running statistics per worker.

    NumPy views over the mappings are created lazily and dropped in
    :meth:`close` before the segments unmap — ``mmap`` refuses to close
    while exported buffers are live.
    """

    def __init__(
        self,
        *,
        n_workers: int,
        n_params: int,
        state_dtype,
        buffer_spec: tuple = (),
        segments: "dict[str, str] | None" = None,
    ):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.n_workers = int(n_workers)
        self.n_params = int(n_params)
        self.state_dtype = np.dtype(state_dtype)
        self.buffer_spec = tuple(tuple(entry) for entry in buffer_spec)
        self._buffer_size = sum(size for _, _, size in self.buffer_spec)
        #: Creator side: the only side allowed to :meth:`unlink`.
        self.owner = segments is None
        self._views: dict = {}
        self._segments: dict = {}
        try:
            for key, (shape, dtype) in self._shapes().items():
                if self.owner:
                    nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
                    segment = _shared_memory.SharedMemory(create=True, size=nbytes)
                else:
                    segment = _shared_memory.SharedMemory(name=segments[key])
                self._segments[key] = segment
        except BaseException:
            # Partial construction must not leak segments: close what was
            # mapped, and (owner only) remove it from the system.
            self.destroy()
            raise

    def _shapes(self) -> dict:
        shapes = {
            "states": ((self.n_workers, self.n_params), self.state_dtype),
            # Broadcasts arrive as float64 regardless of the bank dtype
            # (ShardedBank.broadcast_state casts, exactly like the Pipe
            # transport); children downcast on apply, so bytes match.
            "bcast": ((self.n_params,), np.dtype(np.float64)),
        }
        if self._buffer_size:
            shapes["buffers"] = ((self.n_workers, self._buffer_size), self.state_dtype)
        return shapes

    @classmethod
    def create(cls, *, n_workers, n_params, state_dtype, buffer_spec=()) -> "ShmStatePlane":
        """Allocate fresh segments (parent side; the owner)."""
        return cls(
            n_workers=n_workers,
            n_params=n_params,
            state_dtype=state_dtype,
            buffer_spec=buffer_spec,
        )

    @classmethod
    def attach(cls, spec: dict) -> "ShmStatePlane":
        """Map the segments named by a :meth:`spec` recipe (child side)."""
        return cls(
            n_workers=spec["n_workers"],
            n_params=spec["n_params"],
            state_dtype=spec["state_dtype"],
            buffer_spec=spec["buffer_spec"],
            segments=spec["segments"],
        )

    def spec(self) -> dict:
        """Picklable attach recipe shipped inside the shard spawn payloads."""
        return {
            "segments": {key: segment.name for key, segment in self._segments.items()},
            "n_workers": self.n_workers,
            "n_params": self.n_params,
            "state_dtype": self.state_dtype.str,
            "buffer_spec": self.buffer_spec,
        }

    # -- mapped views --------------------------------------------------------
    def _view(self, key: str) -> np.ndarray:
        view = self._views.get(key)
        if view is None:
            shape, dtype = self._shapes()[key]
            view = np.ndarray(shape, dtype=dtype, buffer=self._segments[key].buf)
            self._views[key] = view
        return view

    @property
    def states(self) -> np.ndarray:
        """The ``(m, P)`` stacked worker states, in the bank dtype."""
        return self._view("states")

    @property
    def bcast(self) -> np.ndarray:
        """The ``(P,)`` float64 broadcast vector."""
        return self._view("bcast")

    @property
    def buffers(self) -> "np.ndarray | None":
        """The ``(m, total_buffer_size)`` packed buffer rows, or ``None``."""
        return self._view("buffers") if self._buffer_size else None

    def write_worker_buffers(self, worker_id: int, buffers: dict) -> None:
        """Pack one worker's buffer dict into its plane row (child side)."""
        row, offset = self.buffers[worker_id], 0
        for name, _, size in self.buffer_spec:
            row[offset:offset + size] = np.asarray(
                buffers[name], dtype=self.state_dtype
            ).ravel()
            offset += size

    def read_worker_buffers(self, worker_id: int) -> dict:
        """Unpack one worker's plane row back into a buffer dict (parent side)."""
        row, offset, out = self.buffers[worker_id], 0, {}
        for name, shape, size in self.buffer_spec:
            out[name] = row[offset:offset + size].reshape(shape).copy()
            offset += size
        return out

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Drop the NumPy views and unmap the segments (both sides; idempotent)."""
        self._views.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - teardown races
                pass

    def unlink(self) -> None:
        """Remove the segments from the system (owner only; idempotent)."""
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass

    def destroy(self) -> None:
        """Full teardown: close the mapping, and unlink if this side owns it."""
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmStatePlane(m={self.n_workers}, P={self.n_params}, "
            f"dtype={self.state_dtype.name}, buffers={self._buffer_size}, "
            f"owner={self.owner})"
        )
