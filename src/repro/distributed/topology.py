"""Decentralized averaging topologies (extension, Section 6 of the paper).

The paper notes that adapting the communication frequency "can be easily
extended to other SGD frameworks including ... decentralized SGD (e.g.,
adapting network sparsity)".  This module provides the substrate for that
extension: doubly-stochastic mixing matrices for standard worker topologies
(complete graph, ring, star, arbitrary NetworkX graphs via Metropolis-Hastings
weights), their spectral gap (which governs how fast repeated gossip rounds
reach consensus), and the gossip-averaging primitive itself.

``SimulatedCluster.average_models`` performs exact averaging (complete-graph
mixing); ``mix_states`` generalizes it: one gossip round per communication
step moves every worker towards the network average without requiring an
all-to-all collective.
"""

from __future__ import annotations

import numpy as np

try:  # networkx is an optional convenience for arbitrary graphs
    import networkx as nx
except ImportError:  # pragma: no cover - networkx is installed in this environment
    nx = None

__all__ = [
    "TOPOLOGIES",
    "complete_mixing_matrix",
    "ring_mixing_matrix",
    "star_mixing_matrix",
    "chordal_ring_graph",
    "metropolis_hastings_weights",
    "mixing_matrix_for",
    "spectral_gap",
    "mix_states",
    "consensus_distance",
    "rounds_to_consensus",
]

#: Topology names accepted by :func:`mixing_matrix_for` (and hence by
#: ``SimulatedCluster(topology=...)`` and ``ExperimentConfig.topology``).
TOPOLOGIES = ("complete", "ring", "star", "mh")


def _validate_m(m: int) -> None:
    if not isinstance(m, (int, np.integer)) or m < 1:
        raise ValueError(f"number of workers must be a positive integer, got {m!r}")


def complete_mixing_matrix(m: int) -> np.ndarray:
    """W = 11ᵀ/m: one gossip round equals exact averaging (PASGD's collective)."""
    _validate_m(m)
    return np.full((m, m), 1.0 / m)


def ring_mixing_matrix(m: int, self_weight: float | None = None) -> np.ndarray:
    """Symmetric ring: each worker mixes with its two neighbours.

    Defaults to equal weights 1/3 on itself and each neighbour (for m ≥ 3).
    """
    _validate_m(m)
    if m == 1:
        return np.array([[1.0]])
    if m == 2:
        return np.full((2, 2), 0.5)
    w_self = 1.0 / 3.0 if self_weight is None else float(self_weight)
    if not 0.0 < w_self < 1.0:
        raise ValueError("self_weight must be in (0, 1)")
    w_neigh = (1.0 - w_self) / 2.0
    W = np.zeros((m, m))
    for i in range(m):
        W[i, i] = w_self
        W[i, (i - 1) % m] = w_neigh
        W[i, (i + 1) % m] = w_neigh
    return W


def star_mixing_matrix(m: int) -> np.ndarray:
    """Star topology: worker 0 is the hub (a parameter-server-like gossip)."""
    _validate_m(m)
    if m == 1:
        return np.array([[1.0]])
    W = np.zeros((m, m))
    leaf_weight = 1.0 / m
    # Hub mixes uniformly with everyone; leaves mix with the hub and themselves.
    W[0, :] = 1.0 / m
    for i in range(1, m):
        W[i, 0] = leaf_weight
        W[i, i] = 1.0 - leaf_weight
    return W


def metropolis_hastings_weights(graph) -> np.ndarray:
    """Doubly-stochastic mixing matrix for an arbitrary connected NetworkX graph.

    Uses the Metropolis-Hastings rule ``W_ij = 1 / (1 + max(d_i, d_j))`` for
    edges, with the remaining mass on the diagonal.
    """
    if nx is None:  # pragma: no cover
        raise ImportError("networkx is required for metropolis_hastings_weights")
    if graph.number_of_nodes() == 0:
        raise ValueError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise ValueError("graph must be connected for gossip averaging to reach consensus")
    nodes = sorted(graph.nodes())
    index = {n: i for i, n in enumerate(nodes)}
    m = len(nodes)
    W = np.zeros((m, m))
    degrees = dict(graph.degree())
    for u, v in graph.edges():
        w = 1.0 / (1.0 + max(degrees[u], degrees[v]))
        W[index[u], index[v]] = w
        W[index[v], index[u]] = w
    for i in range(m):
        W[i, i] = 1.0 - W[i].sum()
    return W


def chordal_ring_graph(m: int):
    """The deterministic graph behind the ``"mh"`` topology: a cycle plus chords.

    For m ≥ 5 each node i also links to i+2 (mod m), giving every node degree
    4 — dense enough that the Metropolis-Hastings weights differ from the
    plain ring, sparse enough to stay decentralized.  Small clusters (m ≤ 4)
    fall back to the complete graph, where MH weighting is still well defined.
    """
    if nx is None:  # pragma: no cover
        raise ImportError("networkx is required for the 'mh' topology")
    _validate_m(m)
    if m <= 4:
        return nx.complete_graph(m)
    graph = nx.cycle_graph(m)
    graph.add_edges_from((i, (i + 2) % m) for i in range(m))
    return graph


def mixing_matrix_for(topology: str, m: int) -> np.ndarray:
    """Resolve a topology name to its doubly-stochastic mixing matrix.

    ``"complete"`` is PASGD's exact collective (one gossip round averages
    exactly); ``"ring"`` and ``"star"`` use the closed-form matrices above;
    ``"mh"`` builds Metropolis-Hastings weights over the deterministic
    chordal-ring graph.
    """
    if topology == "complete":
        return complete_mixing_matrix(m)
    if topology == "ring":
        return ring_mixing_matrix(m)
    if topology == "star":
        return star_mixing_matrix(m)
    if topology == "mh":
        return metropolis_hastings_weights(chordal_ring_graph(m))
    raise ValueError(f"unknown topology {topology!r}; choose one of {TOPOLOGIES}")


def _validate_mixing_matrix(W: np.ndarray) -> np.ndarray:
    W = np.asarray(W, dtype=float)
    if W.ndim != 2 or W.shape[0] != W.shape[1]:
        raise ValueError("mixing matrix must be square")
    if np.any(W < -1e-12):
        raise ValueError("mixing matrix must be non-negative")
    if not np.allclose(W.sum(axis=1), 1.0, atol=1e-8) or not np.allclose(W.sum(axis=0), 1.0, atol=1e-8):
        raise ValueError("mixing matrix must be doubly stochastic")
    return W


def spectral_gap(W: np.ndarray) -> float:
    """1 − |λ₂(W)|: larger gap ⇒ faster consensus per gossip round.

    The complete graph has gap 1 (exact averaging in one round); a large ring
    has a gap approaching 0.
    """
    W = _validate_mixing_matrix(W)
    eigenvalues = np.sort(np.abs(np.linalg.eigvals(W)))[::-1]
    if len(eigenvalues) == 1:
        return 1.0
    return float(1.0 - eigenvalues[1])


def mix_states(states: list[np.ndarray], W: np.ndarray, rounds: int = 1) -> list[np.ndarray]:
    """Apply ``rounds`` gossip rounds: ``x_i ← Σ_j W_ij x_j``.

    With the complete-graph matrix and one round this reproduces PASGD's exact
    model averaging; with sparse topologies it is the decentralized variant.
    """
    W = _validate_mixing_matrix(W)
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    if len(states) != W.shape[0]:
        raise ValueError(f"{len(states)} states but mixing matrix is {W.shape[0]}x{W.shape[0]}")
    X = np.stack(states, axis=0)
    for _ in range(rounds):
        X = W @ X
    return [X[i].copy() for i in range(X.shape[0])]


def consensus_distance(states: list[np.ndarray]) -> float:
    """Mean L2 distance of the states from their average (0 at consensus)."""
    X = np.stack(states, axis=0)
    mean = X.mean(axis=0, keepdims=True)
    return float(np.mean(np.linalg.norm(X - mean, axis=1)))


def rounds_to_consensus(W: np.ndarray, tolerance: float = 1e-3) -> int:
    """Number of gossip rounds needed to shrink disagreement by ``1/tolerance``.

    Uses the standard bound: disagreement contracts by |λ₂| per round, so
    ``ceil(log(tolerance) / log(|λ₂|))`` rounds suffice; 1 round if the gap is
    already 1 (exact averaging).
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must be in (0, 1)")
    gap = spectral_gap(W)
    if gap >= 1.0 - 1e-12:
        return 1
    lam = 1.0 - gap
    return int(np.ceil(np.log(tolerance) / np.log(lam)))
