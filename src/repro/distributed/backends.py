"""Worker-execution backends: the worker-collection protocol + loop backend.

:class:`~repro.distributed.cluster.SimulatedCluster` delegates everything
that touches *all m replicas* — local SGD periods, state gather/broadcast,
learning-rate and momentum control, model materialization for evaluation —
to a backend implementing :class:`WorkerBackend`.  Three backends exist:

* :class:`LoopWorkers` (this module) — one :class:`Worker` object per
  replica, stepped in a Python loop.  This is the seed behaviour, kept as
  the *reference implementation*: the equivalence suite checks the banks
  against it byte for byte, and third-party models without a ``bank_loss``
  still run here.
* :class:`~repro.distributed.worker_bank.WorkerBank` — all replicas stacked
  along a leading worker axis and stepped with single NumPy ops (the
  vectorized path; see ``repro.nn.bank``).  Covers every built-in model:
  dense nets, CNNs, batch-norm nets, live dropout, and data-free objectives.
* :class:`~repro.distributed.sharded_bank.ShardedBank` — the stacked bank
  partitioned into contiguous worker shards, one vectorized bank per shard
  on a persistent pool of worker processes (larger-than-memory banks,
  multi-core throughput).

Backends register by name in :data:`repro.api.registries.BACKENDS` and share
one constructor signature, so ``SimulatedCluster(..., backend="vectorized")``
and the CLI's ``--backend`` flag switch them declaratively; ``"auto"`` picks
the vectorized bank whenever the model supports it — which every model in
the ``MODELS`` registry does — and escalates to the sharded pool at large
cluster sizes.  All backends consume the per-worker RNG streams identically
(data sampling, dropout masks, gradient noise), so a seeded run's trajectory
is byte-identical on any backend.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.api.registries import BACKENDS
from repro.data.synthetic import Dataset
from repro.distributed.worker import Worker
from repro.nn.layers import Module

__all__ = [
    "BackendUnsupported",
    "WorkerBackend",
    "LoopWorkers",
    "generator_state",
    "module_stream_states",
]


class BackendUnsupported(RuntimeError):
    """Raised when a backend cannot execute the requested model/data setup."""


class WorkerBackend:
    """Protocol shared by worker-execution backends.

    A backend owns the m model replicas, their data streams, and their local
    optimizers; the cluster keeps the policy (when to average, the virtual
    clock, the event log).  All flat parameter vectors use the
    ``Module.get_flat_parameters`` layout.
    """

    name: str = "abstract"
    #: Per-worker handles (``Worker`` objects or bank views) for introspection.
    workers: Sequence

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def batch_size(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def shard_sizes(self) -> "list[int] | None":
        """Per-worker training-shard sizes, or ``None`` for data-free runs.

        These are the FedAvg-style averaging weights: under unbalanced
        partitions the cluster can weight each worker's state by its shard
        size (``weighting="shard_size"``) instead of averaging uniformly.
        """
        return None

    def initial_state(self) -> np.ndarray:
        """Flat copy of the common initial parameter vector."""
        raise NotImplementedError

    def local_period(self, tau: int) -> np.ndarray:
        """Run τ local SGD steps on every worker; per-worker mean losses ``(m,)``."""
        raise NotImplementedError

    def get_stacked_states(self) -> np.ndarray:
        """All worker states as one ``(m, P)`` array (row i = worker i)."""
        raise NotImplementedError

    def broadcast_state(self, flat: np.ndarray) -> None:
        """Overwrite every worker's parameters with one flat vector."""
        raise NotImplementedError

    def set_stacked_states(self, states: np.ndarray) -> None:
        """Scatter per-worker parameters: row i of ``(m, P)`` goes to worker i.

        The inverse of :meth:`get_stacked_states`, used by the decentralized
        paths (gossip mixing, async server pulls) where workers end a round
        with *different* states instead of one broadcast vector.  The default
        loops over the per-worker handles — every backend's views expose
        ``set_parameters`` — so only backends with a faster bulk write need
        to override.
        """
        if states.shape[0] != self.n_workers:
            raise ValueError(
                f"expected {self.n_workers} state rows, got {states.shape[0]}"
            )
        for worker, flat in zip(self.workers, states):
            worker.set_parameters(flat)

    def mean_state(self) -> "tuple[np.ndarray, int]":
        """Uniform mean of all worker states and the gathered byte count.

        Returns ``(mean, nbytes)`` where ``mean`` equals
        ``get_stacked_states().mean(axis=0)`` *bitwise* and ``nbytes`` is
        the size of the gathered ``(m, P)`` stack (what
        ``bytes_averaged_total`` counts).  The cluster's uniform averaging
        collective calls this instead of gathering itself so backends can
        overlap the reduction with the gather — the sharded backend folds
        each shard's rows into the running sum as that shard's reply
        arrives.  Overriding backends must keep the reduction row-
        sequential in worker order; any other association changes bytes.
        """
        states = self.get_stacked_states()
        return states.mean(axis=0), states.nbytes

    def set_lr(self, lr: float) -> None:
        raise NotImplementedError

    def reset_momentum(self) -> None:
        raise NotImplementedError

    def materialize(self, flat: np.ndarray) -> Module:
        """A module loaded with ``flat`` (treat as read-only scratch)."""
        raise NotImplementedError

    def evaluate_with_state(self, flat: np.ndarray, fn: Callable[[Module], float]):
        """Run ``fn`` on a module holding ``flat``, leaving workers unchanged."""
        raise NotImplementedError

    def rng_fingerprint(self) -> dict:
        """Positions of every per-worker RNG stream, in one comparable dict.

        ``{"loaders": [state_or_None per worker], "streams": [[state per
        stream module] per worker]}`` where each state is the generator's
        ``bit_generator.state`` dict.  Equal fingerprints mean the backends
        have consumed every stream identically — the equivalence matrix
        (``tests/conftest.py``) compares these with ``==`` across backends.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker processes, pools).  Idempotent.

        In-process backends have nothing to release; the sharded backend
        overrides this to shut its process pool down cleanly.
        """


def generator_state(gen) -> dict:
    """Comparable position of one NumPy generator (``bit_generator.state``)."""
    return gen.bit_generator.state


def module_stream_states(model: Module) -> list:
    """Positions of every stream module's private generator, in tree order."""
    return [generator_state(mod._rng) for mod in model.stream_modules()]


class LoopWorkers(WorkerBackend):
    """The reference backend: one :class:`Worker` per replica, stepped in a loop."""

    name = "loop"

    def __init__(
        self,
        model_fn: Callable[[], Module],
        shards: Sequence[Dataset | None],
        *,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        rngs: Sequence | None = None,
        first_model: Module | None = None,
        bank_dtype: str = "float64",
    ):
        # The loop backend is the float64 reference implementation; the
        # reduced-precision knob only changes bank storage, so it is accepted
        # (every backend shares one construction signature) and ignored.
        del bank_dtype
        if not shards:
            raise ValueError("need at least one shard (use [None, ...] for data-free runs)")
        if rngs is None:
            rngs = [None] * len(shards)
        if len(rngs) != len(shards):
            raise ValueError(f"{len(shards)} shards but {len(rngs)} RNG streams")
        self.workers: list[Worker] = []
        reference: np.ndarray | None = None
        for i, (shard, rng) in enumerate(zip(shards, rngs)):
            # ``first_model`` is the probe replica an "auto" fallback already
            # built; reusing it keeps model_fn consumption identical to a
            # direct loop-backend run even for stateful factories.
            worker = Worker(
                worker_id=i,
                model=first_model if (i == 0 and first_model is not None) else model_fn(),
                shard=shard,
                batch_size=batch_size,
                lr=lr,
                momentum=momentum,
                weight_decay=weight_decay,
                rng=rng,
            )
            # Force identical initial parameters across replicas (same x1).
            if reference is None:
                reference = worker.get_parameters()
            else:
                worker.set_parameters(reference)
            self.workers.append(worker)

    @property
    def batch_size(self) -> int:
        loader = self.workers[0].loader
        return loader.batch_size if loader is not None else 0

    def shard_sizes(self) -> "list[int] | None":
        if any(w.shard is None for w in self.workers):
            return None
        return [len(w.shard) for w in self.workers]

    def initial_state(self) -> np.ndarray:
        return self.workers[0].get_parameters()

    def local_period(self, tau: int) -> np.ndarray:
        return np.array([w.local_period(tau) for w in self.workers])

    def get_stacked_states(self) -> np.ndarray:
        return np.stack([w.get_parameters() for w in self.workers])

    def broadcast_state(self, flat: np.ndarray) -> None:
        for w in self.workers:
            w.set_parameters(flat)

    def set_lr(self, lr: float) -> None:
        for w in self.workers:
            w.set_lr(lr)

    def reset_momentum(self) -> None:
        for w in self.workers:
            w.reset_momentum()

    def materialize(self, flat: np.ndarray) -> Module:
        worker0 = self.workers[0]
        if not np.array_equal(worker0.get_parameters(), flat):
            worker0.model.set_flat_parameters(flat)
        return worker0.model

    def evaluate_with_state(self, flat: np.ndarray, fn: Callable[[Module], float]):
        worker0 = self.workers[0]
        saved = worker0.get_parameters()
        try:
            worker0.set_parameters(flat)
            return fn(worker0.model)
        finally:
            worker0.set_parameters(saved)

    def rng_fingerprint(self) -> dict:
        return {
            "loaders": [
                None if w.loader is None else generator_state(w.loader._rng)
                for w in self.workers
            ],
            "streams": [module_stream_states(w.model) for w in self.workers],
        }


BACKENDS.register("loop", LoopWorkers)
