"""Backend reuse: keep a sharded process pool alive across runs.

Spawning the sharded backend's pool is the dominant fixed cost of a short
run: each shard process is a fresh interpreter that must import NumPy and
the ``repro`` package before it can serve a single command.  A method
lineup (``run_experiment`` over four methods) or a serial sweep pays that
cost once per run even though every run wants an identically-shaped pool.

:class:`BackendHandle` turns the pool into a reusable resource.  A run
resolves its execution backend *through* a handle instead of building one
directly; whenever two consecutive runs resolve to sharded pools with the
same process count, the second run reuses the first's live processes via
:meth:`~repro.distributed.sharded_bank.ShardedBank.rebuild` — each shard
swaps in a bank built from a fresh payload, so the trajectory is
byte-identical to a fresh-pool run and only the spawn is skipped.

Ownership is explicit: a :class:`~repro.distributed.cluster.SimulatedCluster`
given a handle never closes the backend it received — the handle owns the
pool and releases it in :meth:`BackendHandle.close` (the harness does this
in a ``finally``, mirroring the old per-run close).
"""

from __future__ import annotations

from repro.api.registries import BACKENDS
from repro.distributed.backends import BackendUnsupported, WorkerBackend
from repro.distributed.sharded_bank import ShardedBank, shard_slices

__all__ = ["BackendHandle", "resolve_backend"]


def resolve_backend(
    spec: str,
    *,
    n_shards: int = 2,
    auto_shard_threshold: "int | None" = None,
    shard_transport: str = "auto",
    handle: "BackendHandle | None" = None,
    **kwargs,
) -> tuple[str, WorkerBackend]:
    """Build the execution backend; ``"auto"`` escalates and falls back.

    ``"auto"`` picks the sharded pool at or above ``auto_shard_threshold``
    workers, the vectorized bank otherwise, and the loop for models without
    a bank path.  Both bank backends raise :class:`BackendUnsupported`
    before consuming any RNG stream, and the probe replica built to decide
    compatibility is reused down the fallback chain, so every resolution
    consumes ``model_fn`` and the RNG streams exactly as a direct run of the
    chosen backend would.  When a ``handle`` is given, sharded resolutions
    route through it so a live pool of the right size is rebuilt in place
    instead of respawned.
    """

    def sharded(**kw) -> ShardedBank:
        if handle is not None:
            return handle._sharded(n_shards=n_shards, transport=shard_transport, **kw)
        return BACKENDS.build("sharded", n_shards=n_shards, transport=shard_transport, **kw)

    if spec == "sharded":
        return "sharded", sharded(**kwargs)
    if spec == "auto":
        template = kwargs["model_fn"]()
        if (
            auto_shard_threshold is not None
            and len(kwargs["shards"]) >= auto_shard_threshold
        ):
            try:
                return "sharded", sharded(template=template, **kwargs)
            except BackendUnsupported:
                pass
        try:
            return "vectorized", BACKENDS.build("vectorized", template=template, **kwargs)
        except BackendUnsupported:
            return "loop", BACKENDS.build("loop", first_model=template, **kwargs)
    return spec, BACKENDS.build(spec, **kwargs)


class BackendHandle:
    """A slot that carries a live sharded pool from one run to the next.

    Parameters mirror the cluster's backend selection: ``spec`` is the
    backend name (``"loop"``, ``"vectorized"``, ``"sharded"``, ``"auto"``),
    ``n_shards`` the pool size for sharded resolutions,
    ``auto_shard_threshold`` the ``"auto"`` escalation point, and
    ``shard_transport`` the pool's data plane (shared-memory state plane or
    pipes — a rebuild reallocates the plane, so the transport can differ
    between consecutive runs of one pool).  The handle is also a context
    manager; exiting closes whatever pool it still holds.

    In-process backends (loop, vectorized) hold no pooled resources, so the
    handle simply builds them fresh each time — reuse only changes process
    lifecycle for sharded resolutions, never arithmetic or RNG consumption.
    """

    def __init__(
        self,
        spec: str = "auto",
        *,
        n_shards: int = 2,
        auto_shard_threshold: "int | None" = None,
        shard_transport: str = "auto",
    ):
        self.spec = spec
        self.n_shards = n_shards
        self.auto_shard_threshold = auto_shard_threshold
        self.shard_transport = shard_transport
        self._pool: "ShardedBank | None" = None

    def acquire(self, **kwargs) -> tuple[str, WorkerBackend]:
        """Resolve one run's backend, reusing the held pool when possible.

        ``kwargs`` are the per-run construction arguments (``model_fn``,
        ``shards``, ``batch_size``, ``lr``, ``momentum``, ``weight_decay``,
        ``rngs``, ``bank_dtype``).  Returns ``(backend_name, backend)``
        exactly like a direct resolution would.
        """
        return resolve_backend(
            self.spec,
            n_shards=self.n_shards,
            auto_shard_threshold=self.auto_shard_threshold,
            shard_transport=self.shard_transport,
            handle=self,
            **kwargs,
        )

    def _sharded(self, *, n_shards: int, **kwargs) -> ShardedBank:
        """Rebuild the held pool in place, or retire it and build a fresh one."""
        pool = self._pool
        if pool is not None and not pool._closed:
            shards = kwargs["shards"]
            if shards and len(shard_slices(len(shards), n_shards)) == pool.pool_size:
                try:
                    return pool.rebuild(n_shards=n_shards, **kwargs)
                except (RuntimeError, OSError):
                    # A dead or desynchronized pool (e.g. a shard process
                    # killed by a previous failed run) is not worth saving —
                    # retire it and spawn a fresh one below.  Setup errors
                    # (BackendUnsupported, ValueError) propagate: the pool is
                    # still healthy and the caller's fallback chain decides.
                    pass
            # Wrong process count for the next run, or the rebuild failed —
            # a pool cannot grow, shrink, or heal, so release it.
            pool.close()
            self._pool = None
        self._pool = BACKENDS.build("sharded", n_shards=n_shards, **kwargs)
        return self._pool

    def close(self) -> None:
        """Release the held pool, if any.  Idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "BackendHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        held = "live pool" if self._pool is not None and not self._pool._closed else "empty"
        return f"BackendHandle(spec={self.spec!r}, n_shards={self.n_shards}, {held})"
