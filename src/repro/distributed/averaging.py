"""Model-averaging collectives.

PASGD's averaging step (eq. 3, the ``k mod τ = 0`` branch) replaces every
worker's model with the uniform average of all local models.  The paper notes
this can be realized either through a fusion/parameter server or an all-node
broadcast; in the simulation both reduce to the same arithmetic — only the
communication *delay* differs, and that is captured by the network model in
``repro.runtime.network``.

``weighted_average_states`` supports non-uniform weights (e.g. shard-size
weighting under unbalanced partitions, as in FedAvg), an extension the paper
mentions as directly applicable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["average_states", "weighted_average_states"]


def average_states(states: list[np.ndarray]) -> np.ndarray:
    """Uniform average of flat parameter vectors."""
    if not states:
        raise ValueError("need at least one state to average")
    first_shape = states[0].shape
    for s in states:
        if s.shape != first_shape:
            raise ValueError("all states must have the same shape")
    return np.mean(np.stack(states, axis=0), axis=0)


def weighted_average_states(states: list[np.ndarray], weights: list[float]) -> np.ndarray:
    """Weighted average of flat parameter vectors; weights are normalized to sum to 1."""
    if not states:
        raise ValueError("need at least one state to average")
    if len(states) != len(weights):
        raise ValueError(f"{len(states)} states but {len(weights)} weights")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    w = w / total
    stacked = np.stack(states, axis=0)
    return np.tensordot(w, stacked, axes=1)
