"""The sharded worker bank: m replicas split across a persistent process pool.

``ShardedBank`` is the third execution backend.  It partitions the m workers
into contiguous shards and runs one vectorized
:class:`~repro.distributed.worker_bank.WorkerBank` per shard inside a
persistent pool of worker *processes*, so banks larger than one process'
memory (or one core's arithmetic throughput) split across the machine while
every byte of the trajectory stays identical to the single-process bank —
and hence to the loop reference implementation.

Spawn safety follows the sweep runner's pattern: the child entry point is a
module-level function, every import it needs happens lazily inside the child
(registries repopulate in-process), and the per-shard payload it receives is
pure *state* — the template module, the shard datasets, and the per-worker
generators, all picklable under the ``spawn`` start method (the default, and
the only one available everywhere).  Nothing in the payload is a closure:
``model_fn`` never crosses the process boundary.  The parent consumes
``model_fn`` and the worker RNG streams exactly as the vectorized backend
would (one template plus m-1 stream-harvest replicas when stochastic modules
exist), then ships each shard its slice of datasets, loader generators, and
stream generators; each child rebuilds a shard-local ``WorkerBank`` around
them with :func:`repro.nn.bank.attach_stream_generators`.

Equivalence is structural, not approximate: a shard-local bank performs the
same per-slice NumPy arithmetic on the same per-worker streams the full bank
would, the parent concatenates shard states back in worker order, and the
averaging collective runs in the parent on the identical ``(m, P)`` array —
so parameters, buffers, losses, and RNG stream positions are byte-identical
across all three backends (``tests/test_sharded_bank.py`` pins this down).

Data plane: a pooled backend moves the ``(m, P)`` state bank over one of two
transports.  The default (``transport="auto"`` → ``"shm"`` where available)
is the zero-copy shared-memory state plane from
:mod:`repro.distributed.transport`: children write their state rows in place
and read broadcasts from the same mapping, so the Pipes carry only tiny
control tuples.  ``"pipe"`` keeps the original pickle-over-Pipe path; both
produce byte-identical trajectories, and segment-allocation failures fall
back to Pipes silently (check :attr:`ShardedBank.transport` for the plane
actually in use).  In-process backends (``pooled=False``) have no
serialization boundary at all; since PR 9 they drive their shard servers
through a persistent thread pool (NumPy kernels release the GIL), gathered
in shard index order so reply ordering — and hence bytes — never changes.

Lifecycle: the pool is created at construction and lives until
:meth:`close` (idempotent; also invoked by ``SimulatedCluster.close()``, the
experiment harness' ``finally``, and a ``weakref.finalize`` safety net).
Shared-memory segments are created and unlinked exactly once, by the parent;
children only close their mappings.  Children are daemonic, so an abandoned
backend can never outlive its parent.  One consequence: a *daemonic* parent
— e.g. a sweep-pool worker executing a cell with ``backend="sharded"`` under
``--jobs N`` — is itself forbidden from spawning children, so there the same
shard servers run in-process (``pooled=False``): identical partition,
arithmetic, and stored bytes, whether a cell ran serially or inside the pool.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.api.registries import BACKENDS
from repro.data.bank_loader import common_effective_batch
from repro.data.synthetic import Dataset
from repro.distributed.backends import BackendUnsupported, WorkerBackend
from repro.distributed.transport import ShmStatePlane, buffer_spec, resolve_transport
from repro.nn.bank import attach_bank_streams, bank_compatible
from repro.nn.layers import Module
from repro.obs.metrics import counter_inc, observed
from repro.obs.tracer import instant, span
from repro.utils.seeding import check_random_state
from repro.utils.timer import profiled

__all__ = ["ShardedBank", "ShardWorkerView", "shard_slices"]

#: Commands whose ``("ok", None)`` acks the parent never inspects.  They are
#: sent fire-and-forget: the ack stays queued in the pipe and the *next*
#: command drains it, saving one blocking round-trip per training round
#: (broadcast ends every averaging step; its ack overlaps the next
#: ``local_period`` instead of stalling the parent).
_DEFERRED_ACK_OPS = frozenset({"broadcast", "broadcast_shm", "set_lr", "reset_momentum"})


def shard_slices(n_workers: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` worker ranges for each of ``n_shards`` shards.

    Sizes follow ``np.array_split``: the first ``n_workers % n_shards``
    shards get one extra worker, so any (m, shards) pair yields a balanced,
    deterministic partition.  ``n_shards`` is clamped to ``n_workers`` so no
    shard is ever empty.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_workers)
    base, extra = divmod(n_workers, n_shards)
    slices, lo = [], 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        slices.append((lo, hi))
        lo = hi
    return slices


class _ShardServer:
    """Executes shard commands against one shard-local ``WorkerBank``.

    The single implementation behind both transports: a pooled shard process
    wraps one in ``_shard_main``'s command loop, and a :class:`ShardedBank`
    constructed where child processes are forbidden (inside a daemonic
    sweep-pool worker) holds them directly and executes in-process — same
    partition, same arithmetic, same bytes.
    """

    def __init__(self, payload: dict):
        from repro.distributed.worker_bank import WorkerBank

        # The parent ships stream_rngs whenever the template has stream
        # modules, so WorkerBank never falls back to calling model_fn here.
        self.bank = WorkerBank(
            model_fn=None,
            shards=payload["shards"],
            batch_size=payload["batch_size"],
            lr=payload["lr"],
            momentum=payload["momentum"],
            weight_decay=payload["weight_decay"],
            rngs=payload["loader_rngs"],
            template=payload["template"],
            stream_rngs=payload["stream_rngs"],
            bank_dtype=payload.get("bank_dtype", "float64"),
        )
        # Shared-memory state plane (pooled shm transport only): this shard
        # owns plane rows [lo, hi) and attaches from the picklable spec the
        # parent put in the payload.  Attach-only: the parent is the sole
        # owner/unlinker of the segments.
        self._plane = (
            ShmStatePlane.attach(payload["plane"]) if payload.get("plane") else None
        )
        self._bounds = payload.get("plane_bounds")

    def close_plane(self) -> None:
        """Unmap this shard's plane attachment (never unlinks; idempotent)."""
        if self._plane is not None:
            self._plane.close()
            self._plane = None

    def execute(self, op: str, args: tuple):
        bank = self.bank
        if op == "local_period":
            return bank.local_period(*args)
        if op == "get_states":
            return bank.get_stacked_states()
        if op == "sync_states":
            # shm gather: write this shard's rows into the shared plane and
            # ack with no payload — the parent reads its own mapping.
            lo, hi = self._bounds
            self._plane.states[lo:hi] = bank.get_stacked_states()
            return None
        if op == "broadcast":
            return bank.broadcast_state(*args)
        if op == "broadcast_shm":
            # shm broadcast: the parent wrote the averaged model into the
            # plane before sending this (fire-and-forget) command; copy out
            # so the bank never aliases the shared mapping.
            return bank.broadcast_state(np.array(self._plane.bcast, dtype=float))
        if op == "get_worker_flat":
            return bank.bank.worker_flat(*args)
        if op == "set_worker_flat":
            return bank.bank.set_worker_flat(*args)
        if op == "get_worker_buffers":
            return bank.bank.worker_buffers(*args)
        if op == "put_worker_buffers":
            # shm buffer fetch: pack the worker's running statistics into
            # its plane row; the parent unpacks from its own mapping.
            local_id = args[0]
            self._plane.write_worker_buffers(
                self._bounds[0] + local_id, bank.bank.worker_buffers(local_id)
            )
            return None
        if op == "set_lr":
            return bank.set_lr(*args)
        if op == "reset_momentum":
            return bank.reset_momentum()
        if op == "rng_fingerprint":
            return bank.rng_fingerprint()
        if op == "rebuild":
            # Replace the shard-local bank with one built from a fresh
            # payload — the pool (this process) stays alive across methods.
            # The parent destroyed (and possibly resized) the plane, so drop
            # the stale attachment before re-attaching via the new payload.
            self.close_plane()
            self.__init__(args[0])
            return None
        raise ValueError(f"unknown shard command {op!r}")


def _shard_main(conn, payload: dict) -> None:
    """Child entry point: build one shard-local ``WorkerBank``, serve commands.

    Module-level (picklable by reference) so it works under every
    multiprocessing start method; the ``WorkerBank`` import inside
    :class:`_ShardServer` is local so a spawned interpreter pays it lazily
    and the component registries repopulate inside the child, mirroring the
    sweep runner's workers.
    """
    try:
        server = _ShardServer(payload)
        conn.send(("ready", None))
    except Exception:  # noqa: BLE001 - construction failures travel to the parent
        conn.send(("error", traceback.format_exc()))
        return

    try:
        while True:
            try:
                op, args = conn.recv()
            except (EOFError, KeyboardInterrupt):
                return
            if op == "close":
                conn.send(("ok", None))
                return
            try:
                conn.send(("ok", server.execute(op, args)))
            except Exception:  # noqa: BLE001 - errors travel back, the child survives
                conn.send(("error", traceback.format_exc()))
    finally:
        # Unmap (never unlink) the shm plane on any exit path, so the
        # parent's unlink is the last reference going away.
        server.close_plane()


class ShardWorkerView:
    """Per-worker handle into a :class:`ShardedBank` (Worker-like surface)."""

    def __init__(self, backend: "ShardedBank", worker_id: int):
        self.worker_id = worker_id
        self._backend = backend

    def get_parameters(self) -> np.ndarray:
        return self._backend._worker_request(self.worker_id, "get_worker_flat")

    def set_parameters(self, flat: np.ndarray) -> None:
        self._backend._worker_request(self.worker_id, "set_worker_flat", np.asarray(flat, dtype=float))

    @property
    def model(self) -> Module:
        return self._backend.materialize(self.get_parameters(), self.worker_id)

    @property
    def last_loss(self) -> float:
        return float(self._backend.last_losses[self.worker_id])

    @property
    def local_steps_taken(self) -> int:
        return self._backend.local_steps_taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardWorkerView(id={self.worker_id}, steps={self.local_steps_taken})"


class ShardedBank(WorkerBackend):
    """m replicas as ``n_shards`` vectorized banks on a persistent process pool.

    Parameters
    ----------
    model_fn, shards, batch_size, lr, momentum, weight_decay, rngs, template:
        As for :class:`~repro.distributed.worker_bank.WorkerBank`; the
        parent consumes ``model_fn`` and the RNG streams exactly as the
        single-process bank would, so ``"sharded"`` and ``"vectorized"``
        runs are byte-identical.
    n_shards:
        Worker processes to partition the m replicas over (clamped to m).
    mp_context:
        Multiprocessing start method (default ``"spawn"``, the portable
        choice that genuinely exercises the payload's spawn safety).
    transport:
        Pooled data plane for the state bank: ``"shm"`` (zero-copy
        shared-memory segments), ``"pipe"`` (pickle over the control
        pipes), or ``"auto"`` (shm where available).  Trajectories are
        byte-identical either way; :attr:`transport` reports the plane
        actually in use (``"inproc"`` when there is no pool at all).
    """

    name = "sharded"

    def __init__(
        self,
        model_fn: Callable[[], Module],
        shards: Sequence[Dataset | None],
        *,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        rngs: Sequence | None = None,
        template: Module | None = None,
        n_shards: int = 2,
        mp_context: str = "spawn",
        bank_dtype: str = "float64",
        transport: str = "auto",
    ):
        resolved = resolve_transport(transport)  # validate before any work
        payloads = self._prepare(
            model_fn,
            shards,
            batch_size=batch_size,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            rngs=rngs,
            template=template,
            n_shards=n_shards,
            bank_dtype=bank_dtype,
        )

        self._conns, self._procs = [], []
        self._servers: "list[_ShardServer] | None" = None
        self._executor: "ThreadPoolExecutor | None" = None
        self._plane: "ShmStatePlane | None" = None
        self._closed = False
        #: Fire-and-forget commands whose acks are still queued in the pipes
        #: (one per connection each), drained by the next synchronizing
        #: command in FIFO order.  See :data:`_DEFERRED_ACK_OPS`.
        self._deferred: list[str] = []
        #: Whether the shards run on a real process pool.  Daemonic parents
        #: (e.g. the sweep runner's multiprocessing.Pool workers) may not
        #: spawn children, so there the same shard servers run in-process —
        #: identical partition and arithmetic, so a cell's stored bytes do
        #: not depend on whether the sweep ran serially or on a pool.
        self.pooled = not multiprocessing.current_process().daemon
        if not self.pooled:
            # Each server must own an isolated template + generators — the
            # pickle round-trip mirrors exactly what crossing a process
            # boundary does for the pooled path (shard banks attach their
            # stream slices to *their* template, never to a shared one).
            self._servers = [
                _ShardServer(pickle.loads(pickle.dumps(payload))) for payload in payloads
            ]
            #: In-process shards compute on a persistent thread pool — the
            #: bank kernels are NumPy calls that release the GIL, so sweep-
            #: pool cells get real shard parallelism.  Results are always
            #: gathered in shard index order (see ``_inproc_results``), so
            #: reply ordering — and hence every stored byte — matches the
            #: serial execution this replaces.
            if len(self._servers) > 1:
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self._servers), thread_name_prefix="repro-shard"
                )
            self.transport = "inproc"
            return

        self.transport = self._create_plane(payloads, resolved)
        ctx = multiprocessing.get_context(mp_context)
        try:
            for payload in payloads:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_main, args=(child_conn, payload), daemon=True
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for index, conn in enumerate(self._conns):
                status, detail = conn.recv()
                if status != "ready":
                    raise RuntimeError(
                        f"shard process {index} failed to construct its bank:\n{detail}"
                    )
        except BaseException:
            self.close()
            raise

        self._finalizer = weakref.finalize(
            self, _shutdown_pool, list(self._conns), list(self._procs), self._plane
        )

    def _create_plane(self, payloads: list, resolved: str) -> str:
        """Allocate the shm state plane and annotate the payloads with it.

        Returns the transport actually secured: allocation failure (a full
        ``/dev/shm``, say) downgrades to ``"pipe"`` rather than failing the
        run.  Called before any child spawns, so the attach recipe rides
        inside the spawn payloads and stays SPAWN001-clean.
        """
        if resolved != "shm":
            return "pipe"
        try:
            self._plane = ShmStatePlane.create(
                n_workers=len(self.workers),
                n_params=self._initial_flat.size,
                state_dtype=self._bank_dtype,
                buffer_spec=buffer_spec(self.model) if self._has_buffers else (),
            )
        except (OSError, ValueError, RuntimeError):  # pragma: no cover - platform-dependent
            return "pipe"
        spec = self._plane.spec()
        for payload, bounds in zip(payloads, self.shard_slices):
            payload["plane"] = spec
            payload["plane_bounds"] = bounds
        return "shm"

    def _prepare(
        self,
        model_fn: Callable[[], Module],
        shards: Sequence[Dataset | None],
        *,
        batch_size: int,
        lr: float,
        momentum: float,
        weight_decay: float,
        rngs: Sequence | None,
        template: Module | None,
        n_shards: int,
        bank_dtype: str,
    ) -> list[dict]:
        """Validate the setup, set all backend state, return shard payloads.

        Shared by construction and :meth:`rebuild`: everything except the
        pool itself — validation, RNG/stream consumption, the shard
        partition, per-shard payload dicts, and this object's bookkeeping —
        happens here, so a rebuilt backend is state-identical to a freshly
        constructed one.
        """
        if not shards:
            raise ValueError("need at least one shard (use [None, ...] for data-free runs)")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if rngs is None:
            rngs = [None] * len(shards)
        if len(rngs) != len(shards):
            raise ValueError(f"{len(shards)} shards but {len(rngs)} RNG streams")
        if template is None:
            template = model_fn()
        # Every unsupported-setup check runs before any RNG stream (or extra
        # model_fn call) is consumed, so an "auto" escalation that lands here
        # can still fall back to the vectorized bank with pristine streams.
        if not bank_compatible(template):
            raise BackendUnsupported(
                f"model {type(template).__name__} has no param-bank forward path; "
                f"use the 'loop' backend"
            )
        data_free = all(shard is None for shard in shards)
        if not data_free and any(shard is None for shard in shards):
            raise BackendUnsupported(
                "the sharded backend needs a dataset shard per worker "
                "(or None for every worker on data-free objectives)"
            )
        if not data_free:
            # Same rule each shard-local BankLoader will enforce, checked in
            # the parent so an unstackable setup raises BackendUnsupported
            # (and "auto" can fall back) before any process is spawned.
            try:
                effective_batch = common_effective_batch(shards, batch_size)
            except ValueError as err:
                raise BackendUnsupported(f"stacked sampling unavailable: {err}") from err
        try:
            pickle.dumps(template)
        except Exception as err:  # noqa: BLE001 - any pickling failure means loop-only
            raise BackendUnsupported(
                f"model {type(template).__name__} is not picklable and cannot ship "
                f"to shard processes ({err}); use the 'vectorized' or 'loop' backend"
            ) from err

        m = len(shards)
        self.model = template
        self._initial_flat = template.get_flat_parameters()
        self._bank_dtype = bank_dtype
        self._has_buffers = any(True for _ in template.named_buffers())
        self._shard_sizes = None if data_free else [len(shard) for shard in shards]
        self._batch_size = 0 if data_free else effective_batch
        self.local_steps_taken = 0
        self.last_losses = np.full(m, np.nan)
        self.shard_slices = shard_slices(m, n_shards)
        self.n_shards = len(self.shard_slices)

        # Consume model_fn / streams exactly as the vectorized bank would:
        # stochastic modules get the m per-worker generators the loop
        # replicas would own; each shard then receives its contiguous slice.
        stream_mods = list(template.stream_modules())
        if stream_mods:
            attach_bank_streams(template, [model_fn() for _ in range(m - 1)])
        # Loader generators materialize in worker order (identical seed-
        # sequence consumption to handing each worker its own BatchLoader).
        loader_rngs = None if data_free else [check_random_state(r) for r in rngs]

        payloads = []
        for lo, hi in self.shard_slices:
            payloads.append({
                "template": template,
                "shards": list(shards[lo:hi]),
                "batch_size": batch_size,
                "lr": lr,
                "momentum": momentum,
                "weight_decay": weight_decay,
                "loader_rngs": None if loader_rngs is None else loader_rngs[lo:hi],
                "stream_rngs": (
                    [[mod._bank_rngs[i] for i in range(lo, hi)] for mod in stream_mods]
                    if stream_mods
                    else None
                ),
                "bank_dtype": bank_dtype,
            })

        self.workers = tuple(ShardWorkerView(self, i) for i in range(m))
        return payloads

    def rebuild(
        self,
        model_fn: Callable[[], Module],
        shards: Sequence[Dataset | None],
        *,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        rngs: Sequence | None = None,
        template: Module | None = None,
        n_shards: int = 2,
        bank_dtype: str = "float64",
        transport: str = "auto",
    ) -> "ShardedBank":
        """Reuse the live pool for a fresh run instead of respawning it.

        Re-runs the full construction-time preparation (validation, RNG and
        stream consumption, the shard partition, payloads) and ships each
        live shard a ``rebuild`` command that swaps in a bank built from its
        new payload.  The resulting backend is state-identical to a freshly
        constructed one — process spawn is the only thing skipped — so
        trajectories stay byte-identical to fresh-pool runs.  The worker
        count may change between runs; the shard *count* must match the live
        pool (a pool cannot grow or shrink processes).  The shm state plane
        is reallocated for the new ``(m, P)`` geometry (and the transport
        may switch between runs): the parent destroys the old segments, the
        ``rebuild`` command makes each child drop its stale attachment.
        """
        self._ensure_open()
        if not shards:
            raise ValueError("need at least one shard (use [None, ...] for data-free runs)")
        resolved = resolve_transport(transport)
        live = self.pool_size
        requested = len(shard_slices(len(shards), n_shards))
        if requested != live:
            raise ValueError(
                f"cannot rebuild a {live}-process pool into {requested} shard(s); "
                f"construct a fresh ShardedBank instead"
            )
        payloads = self._prepare(
            model_fn,
            shards,
            batch_size=batch_size,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            rngs=rngs,
            template=template,
            n_shards=n_shards,
            bank_dtype=bank_dtype,
        )
        if self._servers is not None:
            # In-process transport: same pickle round-trip a real process
            # boundary would apply, same isolation guarantees.  The thread
            # pool is sized by shard count, which cannot change — keep it.
            self._servers = [
                _ShardServer(pickle.loads(pickle.dumps(payload))) for payload in payloads
            ]
            return self
        # Geometry (and possibly the transport choice) changed: drop the old
        # plane — children close their stale attachments inside the rebuild
        # command below, and POSIX keeps unlinked segments mapped until then.
        if self._plane is not None:
            self._plane.destroy()
            self._plane = None
        self.transport = self._create_plane(payloads, resolved)
        # The finalizer captured the previous plane; re-arm it with the new one.
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, list(self._conns), list(self._procs), self._plane
        )
        # Pipelined like _request_all: every shard starts rebuilding before
        # any reply is awaited, and every reply is drained even on failure
        # (including any deferred acks still queued from the previous run).
        for conn, payload in zip(self._conns, payloads):
            conn.send(("rebuild", (payload,)))
        errors = self._drain_deferred_acks()
        replies = [conn.recv() for conn in self._conns]
        errors += [
            f"shard process {index} failed to rebuild its bank:\n{detail}"
            for index, (status, detail) in enumerate(replies)
            if status != "ok"
        ]
        if errors:
            raise RuntimeError("\n".join(errors))
        return self

    # -- pool plumbing -------------------------------------------------------
    @property
    def pool_size(self) -> int:
        """Number of live shard servers (pool processes, or in-process servers)."""
        return len(self._servers) if self._servers is not None else len(self._conns)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedBank is closed; its process pool is gone")

    def _drain_deferred_acks(self) -> list[str]:
        """Receive the pending acks of fire-and-forget commands, oldest first.

        Callers invoke this *after* sending their own command: the pipes are
        FIFO, so each connection's queue holds the deferred acks ahead of the
        new reply, and draining here leaves exactly that reply queued.
        Returns error strings instead of raising so the caller can finish
        consuming its own replies (keeping the protocol in sync) and raise
        once with everything that went wrong.
        """
        deferred, self._deferred = self._deferred, []
        errors: list[str] = []
        for index, conn in enumerate(self._conns):
            for past_op in deferred:
                status, detail = conn.recv()
                if status != "ok":
                    errors.append(
                        f"shard process {index} failed during deferred "
                        f"{past_op!r}:\n{detail}"
                    )
                instant("shard_rpc", op=past_op, shard=index, phase="drain_ack")
        return errors

    def _inproc_results(self, op: str, args: tuple) -> Iterator:
        """Yield each in-process server's result, in shard index order.

        With more than one server the executions run concurrently on the
        persistent thread pool (the bank kernels release the GIL); gathering
        ``Future.result()`` in submission order keeps reply ordering — and
        first-error propagation — identical to the serial loop it replaces.
        """
        if self._executor is None:
            for server in self._servers:
                yield server.execute(op, args)
            return
        futures = [
            self._executor.submit(server.execute, op, args) for server in self._servers
        ]
        for future in futures:
            yield future.result()

    def _request_all(self, op: str, *args) -> list:
        """Send one command to every shard, then gather the replies in order.

        All shards receive the command before any reply is awaited, so
        compute-bound commands (``local_period``) genuinely overlap across
        the pool.  Commands whose replies carry no payload (``broadcast``,
        ``set_lr``, ``reset_momentum``) do not even wait for their acks: the
        parent returns immediately and the *next* command drains the queued
        acks after sending itself, so the shards run the deferred command and
        its successor back-to-back without an intervening parent wake-up —
        one fewer blocking round-trip per training round.  Every reply is
        drained even when some shard errors — a partially-read round would
        leave stale replies queued in the pipes and silently desynchronize
        the request/reply protocol; a deferred failure therefore surfaces on
        the next synchronizing command, attributed to the op that failed.
        """
        self._ensure_open()
        # Shard processes never report into the parent's profiler; this scope
        # measures the full round-trip (serialize, compute, deserialize) as
        # the parent observes it.  Deferred ops only pay serialization here;
        # their wait lands in the next synchronizing op's scope.
        deferred = op in _DEFERRED_ACK_OPS
        with span("shard_rpc", op=op, shard="all", pooled=self.pooled,
                  deferred=deferred, transport=self.transport), \
                observed("shard_rpc_seconds"), profiled(f"shard_rpc.{op}"):
            if self._servers is not None:
                return list(self._inproc_results(op, args))
            for conn in self._conns:
                conn.send((op, args))
            if deferred:
                self._deferred.append(op)
                return [None] * len(self._conns)
            errors = self._drain_deferred_acks()
            replies = [conn.recv() for conn in self._conns]
            errors += [
                f"shard process {index} failed:\n{detail}"
                for index, (status, detail) in enumerate(replies)
                if status != "ok"
            ]
            if errors:
                raise RuntimeError("\n".join(errors))
            return [result for _, result in replies]

    def _request_shard(self, shard_index: int, op: str, *args):
        self._ensure_open()
        with span("shard_rpc", op=op, shard=shard_index, pooled=self.pooled,
                  deferred=False, transport=self.transport), \
                observed("shard_rpc_seconds"), profiled(f"shard_rpc.{op}"):
            if self._servers is not None:
                return self._servers[shard_index].execute(op, args)
            conn = self._conns[shard_index]
            conn.send((op, args))
            errors = self._drain_deferred_acks()
            status, result = conn.recv()
            if status != "ok":
                errors.append(f"shard process {shard_index} failed:\n{result}")
            if errors:
                raise RuntimeError("\n".join(errors))
            return result

    def _locate(self, worker_id: int) -> tuple[int, int]:
        """Map a global worker id to ``(shard_index, local_id)``."""
        for index, (lo, hi) in enumerate(self.shard_slices):
            if lo <= worker_id < hi:
                return index, worker_id - lo
        raise IndexError(f"worker_id {worker_id} out of range [0, {len(self.workers)})")

    def _worker_request(self, worker_id: int, op: str, *args):
        shard_index, local_id = self._locate(worker_id)
        return self._request_shard(shard_index, op, local_id, *args)

    def close(self) -> None:
        """Shut the process pool down; safe to call more than once.

        In-process shard servers (daemonic parents) have no pool; closing
        drops them, stops their thread pool, and marks the backend unusable.
        The shm state plane is destroyed (closed *and* unlinked) here — the
        parent is its sole owner, so this is the exactly-once unlink site
        (with the ``weakref.finalize`` safety net covering abandonment).
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        self._servers = None
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=True)
            self._executor = None
        if hasattr(self, "_finalizer"):
            self._finalizer.detach()
        _shutdown_pool(self._conns, self._procs, getattr(self, "_plane", None))
        self._plane = None

    # -- WorkerBackend protocol ----------------------------------------------
    @property
    def batch_size(self) -> int:
        return self._batch_size

    def shard_sizes(self) -> "list[int] | None":
        return None if self._shard_sizes is None else list(self._shard_sizes)

    def initial_state(self) -> np.ndarray:
        return self._initial_flat.copy()

    def local_period(self, tau: int) -> np.ndarray:
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        losses = np.concatenate(self._request_all("local_period", tau))
        self.local_steps_taken += tau
        self.last_losses = losses
        return losses

    def get_stacked_states(self) -> np.ndarray:
        # Shards are contiguous worker ranges, so concatenation in shard
        # order *is* worker order — the (m, P) array the averaging collective
        # reduces is byte-identical to the single-process bank's.  Over the
        # shm plane the children write their rows in place and the parent
        # copies out of its own mapping; the pipes carry only empty acks.
        with observed("shard_gather_seconds"):
            if self._plane is not None:
                self._request_all("sync_states")
                states = self._plane.states.copy()
                counter_inc("bytes_via_shm", states.nbytes)
                return states
            states = np.concatenate(self._request_all("get_states"), axis=0)
        if self.pooled:
            counter_inc("bytes_over_pipe", states.nbytes)
        return states

    def mean_state(self) -> "tuple[np.ndarray, int]":
        """Overlapped uniform mean: reduce each shard's rows as they land.

        Instead of materializing the full ``(m, P)`` stack and then calling
        ``mean(axis=0)``, the parent folds each shard's block into a running
        sum the moment that shard's reply (or shm ready-ack) arrives, while
        later shards are still computing or in flight.  The reduction visits
        rows strictly in worker order — NumPy's own axis-0 mean is the same
        row-sequential accumulation — so the result is bit-identical to
        ``get_stacked_states().mean(axis=0)``; per-shard partial sums would
        reassociate the additions and are deliberately avoided.
        """
        self._ensure_open()
        acc: "np.ndarray | None" = None
        nbytes = 0
        with span("shard_rpc", op="mean_state", shard="all", pooled=self.pooled,
                  deferred=False, transport=self.transport), \
                observed("shard_rpc_seconds"), observed("shard_gather_seconds"), \
                profiled("shard_rpc.mean_state"):
            if self._servers is not None:
                for block in self._inproc_results("get_states", ()):
                    acc = _fold_rows(acc, block)
                    nbytes += block.nbytes
            elif self._plane is not None:
                for conn in self._conns:
                    conn.send(("sync_states", ()))
                errors = self._drain_deferred_acks()
                for index, conn in enumerate(self._conns):
                    status, detail = conn.recv()
                    if status != "ok":
                        errors.append(f"shard process {index} failed:\n{detail}")
                        continue
                    lo, hi = self.shard_slices[index]
                    acc = _fold_rows(acc, self._plane.states[lo:hi])
                if errors:
                    raise RuntimeError("\n".join(errors))
                nbytes = self._plane.states.nbytes
                counter_inc("bytes_via_shm", nbytes)
            else:
                for conn in self._conns:
                    conn.send(("get_states", ()))
                errors = self._drain_deferred_acks()
                for index, conn in enumerate(self._conns):
                    status, block = conn.recv()
                    if status != "ok":
                        errors.append(f"shard process {index} failed:\n{block}")
                        continue
                    acc = _fold_rows(acc, block)
                    nbytes += block.nbytes
                if errors:
                    raise RuntimeError("\n".join(errors))
                counter_inc("bytes_over_pipe", nbytes)
        acc /= acc.dtype.type(len(self.workers))
        return acc, nbytes

    def broadcast_state(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=float)
        if self._plane is None:
            self._request_all("broadcast", flat)
            if self.pooled:
                counter_inc("bytes_over_pipe", flat.nbytes)
            return
        # Back-to-back broadcasts with no synchronizing command between them
        # would overwrite the plane while a shard may not have read it yet;
        # drain the pending acks first (an ack proves the read happened).
        # The normal round structure (broadcast → local_period → gather)
        # never takes this branch.
        if "broadcast_shm" in self._deferred:
            errors = self._drain_deferred_acks()
            if errors:
                raise RuntimeError("\n".join(errors))
        self._plane.bcast[:] = flat
        self._request_all("broadcast_shm")
        counter_inc("bytes_via_shm", flat.nbytes)

    def set_lr(self, lr: float) -> None:
        self._request_all("set_lr", lr)

    def reset_momentum(self) -> None:
        self._request_all("reset_momentum")

    def worker_buffers(self, worker_id: int) -> dict:
        """Copies of one worker's buffer slices (fetched from its shard).

        Over the shm plane the shard packs the row in place and acks empty;
        the parent unpacks from its own mapping (same names, shapes, dtype,
        and bytes as the pickled dict the Pipe transport returns).
        """
        if self._plane is not None and self._has_buffers:
            self._worker_request(worker_id, "put_worker_buffers")
            buffers = self._plane.read_worker_buffers(worker_id)
            counter_inc("bytes_via_shm", self._plane.buffers[worker_id].nbytes)
            return buffers
        return self._worker_request(worker_id, "get_worker_buffers")

    def materialize(self, flat: np.ndarray, worker_id: int = 0) -> Module:
        self.model.set_flat_parameters(flat)
        if self._has_buffers:
            # Running statistics live in the shard processes; fetch the
            # requested worker's slices so eval sees the stats its loop/bank
            # counterpart would.
            buffers = self._worker_request(worker_id, "get_worker_buffers")
            for name, value in buffers.items():
                self.model.set_buffer(name, value)
        return self.model

    def evaluate_with_state(self, flat: np.ndarray, fn: Callable[[Module], float]):
        # The parent template is scratch space — the shard banks hold the
        # ground truth — so no save/restore is needed.
        return fn(self.materialize(flat))

    def rng_fingerprint(self) -> dict:
        merged = {"loaders": [], "streams": []}
        for fingerprint in self._request_all("rng_fingerprint"):
            merged["loaders"].extend(fingerprint["loaders"])
            merged["streams"].extend(fingerprint["streams"])
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedBank(n_workers={len(self.workers)}, n_shards={self.n_shards}, "
            f"pooled={self.pooled}, transport={self.transport}, closed={self._closed})"
        )


def _fold_rows(acc: "np.ndarray | None", block: np.ndarray) -> np.ndarray:
    """Fold one shard's ``(k, P)`` state block into the running row sum.

    Row-sequential accumulation in worker order is exactly the reduction
    ``np.mean(states, axis=0)`` performs on the concatenated bank, so the
    overlapped average stays bit-identical to the materialize-then-mean
    path for float64 and float32 alike.
    """
    for row in block:
        if acc is None:
            acc = row.copy()
        else:
            acc += row
    return acc


def _shutdown_pool(conns: list, procs: list, plane: "ShmStatePlane | None" = None) -> None:
    """Best-effort clean shutdown: ask politely, then join, then terminate.

    ``EOFError`` joins ``BrokenPipeError`` (an ``OSError``) in the send
    guard: a connection torn down mid-interpreter-shutdown — or pointing at
    a child that died — can surface either, and a second ``close()`` after
    a crashed child must stay silent.  The shm plane (if any) is destroyed
    last, after every child had its chance to unmap.
    """
    for conn in conns:
        try:
            conn.send(("close", ()))
        except (OSError, EOFError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck child safety net
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
    if plane is not None:
        plane.destroy()


BACKENDS.register("sharded", ShardedBank)
