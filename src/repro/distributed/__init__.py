"""Simulated distributed training substrate.

The paper runs 4–8 GPU nodes connected by 40 Gbps Ethernet; this package
simulates that cluster in-process.  Each :class:`~repro.distributed.worker.Worker`
holds its own model replica, data shard, and local optimizer and performs
local mini-batch SGD steps (eq. 2/3).  The
:class:`~repro.distributed.cluster.SimulatedCluster` owns the workers, the
model-averaging collective (eq. 3, ``k mod τ = 0`` branch), and the virtual
wall clock driven by the runtime simulator (``repro.runtime``), so that every
training run yields loss-versus-*wall-clock-time* trajectories exactly like
the paper's figures.
"""

from repro.distributed.worker import Worker
from repro.distributed.averaging import average_states, weighted_average_states
from repro.distributed.backends import BackendUnsupported, LoopWorkers, WorkerBackend
from repro.distributed.worker_bank import BankWorkerView, WorkerBank
from repro.distributed.transport import ShmStatePlane, resolve_transport, shm_available
from repro.distributed.sharded_bank import ShardedBank, ShardWorkerView, shard_slices
from repro.distributed.reuse import BackendHandle, resolve_backend
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.events import CommunicationEvent, LocalPeriodEvent, EventLog
from repro.distributed.topology import (
    complete_mixing_matrix,
    ring_mixing_matrix,
    star_mixing_matrix,
    metropolis_hastings_weights,
    spectral_gap,
    mix_states,
    consensus_distance,
    rounds_to_consensus,
)

__all__ = [
    "Worker",
    "average_states",
    "weighted_average_states",
    "BackendUnsupported",
    "WorkerBackend",
    "LoopWorkers",
    "WorkerBank",
    "BankWorkerView",
    "ShmStatePlane",
    "resolve_transport",
    "shm_available",
    "ShardedBank",
    "ShardWorkerView",
    "shard_slices",
    "BackendHandle",
    "resolve_backend",
    "SimulatedCluster",
    "CommunicationEvent",
    "LocalPeriodEvent",
    "EventLog",
    "complete_mixing_matrix",
    "ring_mixing_matrix",
    "star_mixing_matrix",
    "metropolis_hastings_weights",
    "spectral_gap",
    "mix_states",
    "consensus_distance",
    "rounds_to_consensus",
]
