"""A single simulated worker node.

Each worker owns:

* a full replica of the model (built by a user-supplied factory so that every
  replica has identical architecture but its own parameter arrays),
* a shard of the training data with a mini-batch loader,
* a local SGD optimizer (optionally with local momentum).

A worker's only operations are ``local_step`` (one mini-batch SGD update,
eq. 2) and get/set of its flat parameter vector, which is what the cluster's
averaging step uses (eq. 3).
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import BatchLoader
from repro.data.synthetic import Dataset
from repro.nn.layers import Module
from repro.nn.tensor import no_grad
from repro.optim.sgd import SGD
from repro.utils.seeding import check_random_state

__all__ = ["Worker"]


class Worker:
    """One simulated worker: model replica + data shard + local optimizer."""

    def __init__(
        self,
        worker_id: int,
        model: Module,
        shard: Dataset | None,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        if worker_id < 0:
            raise ValueError(f"worker_id must be non-negative, got {worker_id}")
        self.worker_id = worker_id
        self.model = model
        self.shard = shard
        self._rng = check_random_state(rng)
        self.loader = (
            BatchLoader(shard, batch_size, rng=self._rng) if shard is not None else None
        )
        self.optimizer = SGD(model, lr=lr, momentum=momentum, weight_decay=weight_decay)
        self.local_steps_taken = 0
        self.last_loss: float = float("nan")

    # -- training ----------------------------------------------------------
    def local_step(self) -> float:
        """Perform one local mini-batch SGD update and return the batch loss."""
        if self.loader is not None:
            x_batch, y_batch = self.loader.next_batch()
        else:
            x_batch, y_batch = None, None
        self.optimizer.zero_grad()
        loss = self.model.loss(x_batch, y_batch)
        loss.backward()
        self.optimizer.step()
        self.local_steps_taken += 1
        self.last_loss = float(loss.item())
        return self.last_loss

    def local_period(self, tau: int) -> float:
        """Run ``tau`` local steps; return the mean batch loss over the period."""
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        losses = [self.local_step() for _ in range(tau)]
        return float(np.mean(losses))

    # -- parameter exchange ---------------------------------------------------
    def get_parameters(self) -> np.ndarray:
        """Flat copy of this worker's model parameters."""
        return self.model.get_flat_parameters()

    def set_parameters(self, flat: np.ndarray) -> None:
        """Overwrite this worker's model parameters with a flat vector."""
        self.model.set_flat_parameters(flat)

    # -- hyper-parameter control -----------------------------------------------
    def set_lr(self, lr: float) -> None:
        self.optimizer.set_lr(lr)

    def reset_momentum(self) -> None:
        """Clear local momentum (done at each averaging step under block momentum)."""
        self.optimizer.reset_momentum()

    # -- evaluation ---------------------------------------------------------------
    def evaluate_loss(self, X: np.ndarray | None = None, y: np.ndarray | None = None) -> float:
        """Loss of the current local model on given data (or this worker's shard)."""
        if X is None or y is None:
            if self.loader is None:
                raise ValueError("no data available for evaluation")
            X, y = self.loader.full_data()
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                loss = self.model.loss(X, y)
            return float(loss.item())
        finally:
            self.model.train(was_training)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker(id={self.worker_id}, steps={self.local_steps_taken}, "
            f"lr={self.optimizer.lr})"
        )
