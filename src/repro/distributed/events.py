"""Event records emitted by the simulated cluster.

The event log is the raw trace behind every figure: each local-update period
and each communication round is recorded with its simulated duration, the τ
and learning rate in force, and the training loss observed.  Benchmarks and
tests consume the log to compute compute/communication breakdowns (Figure 8)
and to verify invariants (e.g. the clock advances by exactly the sum of event
durations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["LocalPeriodEvent", "CommunicationEvent", "EventLog"]


@dataclass(frozen=True)
class LocalPeriodEvent:
    """τ local steps performed by all workers in parallel."""

    start_time: float
    duration: float
    tau: int
    lr: float
    iteration_end: int
    mean_local_loss: float


@dataclass(frozen=True)
class CommunicationEvent:
    """One all-node model-averaging round."""

    start_time: float
    duration: float
    round_index: int


@dataclass
class EventLog:
    """Ordered trace of local-period and communication events."""

    events: list[LocalPeriodEvent | CommunicationEvent] = field(default_factory=list)

    def append(self, event: LocalPeriodEvent | CommunicationEvent) -> None:
        if self.events and event.start_time < self.events[-1].start_time - 1e-12:
            raise ValueError("events must be appended in chronological order")
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[LocalPeriodEvent | CommunicationEvent]:
        return iter(self.events)

    @property
    def local_periods(self) -> list[LocalPeriodEvent]:
        return [e for e in self.events if isinstance(e, LocalPeriodEvent)]

    @property
    def communications(self) -> list[CommunicationEvent]:
        return [e for e in self.events if isinstance(e, CommunicationEvent)]

    def total_compute_time(self) -> float:
        """Total simulated time spent in local computation."""
        return sum(e.duration for e in self.local_periods)

    def total_communication_time(self) -> float:
        """Total simulated time spent in model averaging."""
        return sum(e.duration for e in self.communications)

    def total_time(self) -> float:
        return self.total_compute_time() + self.total_communication_time()

    def total_local_iterations(self) -> int:
        return sum(e.tau for e in self.local_periods)

    def communication_rounds(self) -> int:
        return len(self.communications)

    def breakdown(self) -> dict[str, float]:
        """Compute/communication split (the Figure-8 quantity)."""
        return {
            "compute_time": self.total_compute_time(),
            "communication_time": self.total_communication_time(),
            "total_time": self.total_time(),
            "local_iterations": float(self.total_local_iterations()),
            "communication_rounds": float(self.communication_rounds()),
        }
