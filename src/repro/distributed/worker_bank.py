"""The vectorized worker bank: all m replicas stepped with single NumPy ops.

``WorkerBank`` is the fast execution backend for the simulated cluster.
Instead of m :class:`~repro.distributed.worker.Worker` objects stepped in a
Python loop, it keeps one :class:`~repro.nn.bank.ParameterBank` with every
replica's parameters stacked along a leading worker axis, draws all m
mini-batches at once through a :class:`~repro.data.bank_loader.BankLoader`,
and runs every local SGD step for all workers as batched NumPy ops
(``repro.nn`` param-bank forward + :class:`~repro.optim.bank_sgd.BankSGD`).

Because the bank consumes each shard's RNG stream exactly as the loop
backend's per-worker loaders do — and stochastic modules (dropout, data-free
noise models) are handed the per-worker streams the loop replicas would own
(:func:`repro.nn.bank.attach_bank_streams`) — a seeded run produces a
byte-identical trajectory on either backend.  Every built-in model runs
here: dense nets, CNNs (im2col with the worker axis folded into the batch
axis), batch-norm nets (per-worker ``(m, F)`` running-stat buffers), live
dropout, and data-free quadratic objectives (``shards=[None, ...]``).  The
loop backend remains as the reference implementation for equivalence tests;
third-party models without a ``bank_loss`` still raise
:class:`BackendUnsupported` *before* consuming any RNG state, so
``backend="auto"`` falls back transparently.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.api.registries import BACKENDS
from repro.data.bank_loader import BankLoader
from repro.data.synthetic import Dataset
from repro.distributed.backends import BackendUnsupported, WorkerBackend, generator_state
from repro.nn.bank import (
    ParameterBank,
    attach_bank_streams,
    attach_stream_generators,
    bank_compatible,
)
from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.optim.bank_sgd import BankSGD

__all__ = ["WorkerBank", "BankWorkerView"]


class BankWorkerView:
    """Per-worker handle into a :class:`WorkerBank` (Worker-like surface).

    Exposes the parameter-exchange subset of the :class:`Worker` interface so
    that code iterating ``cluster.workers`` keeps working on the vectorized
    backend.  ``model`` materializes this worker's slice into the bank's
    shared template module — treat it as read-only scratch.
    """

    def __init__(self, bank_backend: "WorkerBank", worker_id: int):
        self.worker_id = worker_id
        self._backend = bank_backend

    def get_parameters(self) -> np.ndarray:
        return self._backend.bank.worker_flat(self.worker_id)

    def set_parameters(self, flat: np.ndarray) -> None:
        self._backend.bank.set_worker_flat(self.worker_id, flat)

    @property
    def model(self) -> Module:
        return self._backend.materialize(self.get_parameters(), self.worker_id)

    @property
    def last_loss(self) -> float:
        return float(self._backend.last_losses[self.worker_id])

    @property
    def local_steps_taken(self) -> int:
        return self._backend.local_steps_taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BankWorkerView(id={self.worker_id}, steps={self.local_steps_taken})"


class WorkerBank(WorkerBackend):
    """m stacked replicas + stacked optimizer + stacked batch sampler."""

    name = "vectorized"

    def __init__(
        self,
        model_fn: Callable[[], Module],
        shards: Sequence[Dataset | None],
        *,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        rngs: Sequence | None = None,
        template: Module | None = None,
        stream_rngs: "Sequence[Sequence] | None" = None,
        bank_dtype: str = "float64",
    ):
        if not shards:
            raise ValueError("need at least one shard (use [None, ...] for data-free runs)")
        # The storage dtype of the stacked bank (and the design matrix).  The
        # float64 default is byte-identical to the loop reference; float32 is
        # the opt-in reduced-precision mode, parity within tolerance only.
        dtype = np.dtype(bank_dtype)
        if template is None:
            template = model_fn()
        # All unsupported-setup checks come before any RNG stream (or extra
        # model_fn call) is consumed, so "auto" can fall back to the loop
        # backend with pristine streams and an unperturbed factory.
        if not bank_compatible(template):
            raise BackendUnsupported(
                f"model {type(template).__name__} has no param-bank forward path; "
                f"use the 'loop' backend"
            )
        data_free = all(shard is None for shard in shards)
        if not data_free and any(shard is None for shard in shards):
            raise BackendUnsupported(
                "the vectorized backend needs a dataset shard per worker "
                "(or None for every worker on data-free objectives)"
            )
        if data_free:
            loader = None
        else:
            try:
                loader = BankLoader(
                    shards,
                    batch_size,
                    rngs=rngs,
                    dtype=None if dtype == np.float64 else dtype,
                )
            except ValueError as err:
                raise BackendUnsupported(f"stacked sampling unavailable: {err}") from err
        # Stochastic modules (dropout masks, data-free gradient noise) need
        # one RNG stream per worker.  Build the replicas the loop backend
        # would have built — consuming model_fn exactly as it would — and
        # hand the template their streams; stream-free models skip this and
        # keep the bank's one-replica construction cost.  A caller already
        # holding correctly-positioned generators (a shard process of the
        # sharded backend) injects them via ``stream_rngs`` instead, in which
        # case ``model_fn`` is never invoked.
        if stream_rngs is not None:
            attach_stream_generators(template, stream_rngs, n_workers=len(shards))
        elif any(True for _ in template.stream_modules()):
            attach_bank_streams(template, [model_fn() for _ in range(len(shards) - 1)])
        self.model = template
        self.bank = ParameterBank(template, len(shards), dtype=dtype)
        self.loader = loader
        self._shard_sizes = None if data_free else [len(shard) for shard in shards]
        self.optimizer = BankSGD(
            self.bank, lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        self.local_steps_taken = 0
        self.last_losses = np.full(len(shards), np.nan)
        self.workers = tuple(BankWorkerView(self, i) for i in range(len(shards)))

    @property
    def n_workers(self) -> int:
        return self.bank.n_workers

    @property
    def batch_size(self) -> int:
        return self.loader.batch_size if self.loader is not None else 0

    def shard_sizes(self) -> "list[int] | None":
        return None if self._shard_sizes is None else list(self._shard_sizes)

    def initial_state(self) -> np.ndarray:
        return self.bank.worker_flat(0)

    # -- training ------------------------------------------------------------
    def local_step(self) -> np.ndarray:
        """One local mini-batch SGD update for all workers; per-worker losses."""
        if self.loader is not None:
            X, y = self.loader.next_batches()
            X = Tensor(X)
        else:
            X, y = None, None
        self.optimizer.zero_grad()
        losses = self.model.bank_loss(X, y, self.bank.state())
        # Summing the (m,) losses back-propagates each worker's own batch
        # gradient into its slice of the bank (cross-worker terms are zero).
        losses.sum().backward()
        self.optimizer.step()
        self.local_steps_taken += 1
        self.last_losses = losses.data.copy()
        return self.last_losses

    def local_period(self, tau: int) -> np.ndarray:
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        totals = np.zeros(self.n_workers)
        for _ in range(tau):
            totals += self.local_step()
        return totals / tau

    # -- parameter exchange ----------------------------------------------------
    def get_stacked_states(self) -> np.ndarray:
        return self.bank.get_stacked_flat()

    def broadcast_state(self, flat: np.ndarray) -> None:
        self.bank.broadcast_flat(flat)

    def set_stacked_states(self, states: np.ndarray) -> None:
        # One bulk write into the stacked storage instead of m row writes.
        self.bank.set_stacked_flat(states)

    # -- hyper-parameter control -------------------------------------------------
    def set_lr(self, lr: float) -> None:
        self.optimizer.set_lr(lr)

    def reset_momentum(self) -> None:
        self.optimizer.reset_momentum()

    # -- evaluation ----------------------------------------------------------------
    def materialize(self, flat: np.ndarray, worker_id: int = 0) -> Module:
        self.model.set_flat_parameters(flat)
        # Buffers (batch-norm running stats) are worker-local state outside
        # the flat vector; load the requested worker's slices so eval sees
        # the same statistics the loop backend's worker model would hold.
        self.bank.load_worker_buffers(self.model, worker_id)
        return self.model

    def evaluate_with_state(self, flat: np.ndarray, fn: Callable[[Module], float]):
        # The template is scratch space — the bank holds the ground truth — so
        # no save/restore is needed.
        return fn(self.materialize(flat))

    def rng_fingerprint(self) -> dict:
        if self.loader is None:
            loaders: list = [None] * self.n_workers
        else:
            loaders = [generator_state(ldr._rng) for ldr in self.loader.loaders]
        stream_mods = list(self.model.stream_modules())
        return {
            "loaders": loaders,
            "streams": [
                [generator_state(mod._bank_rngs[i]) for mod in stream_mods]
                for i in range(self.n_workers)
            ],
        }


BACKENDS.register("vectorized", WorkerBank)
