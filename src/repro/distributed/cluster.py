"""The simulated cluster: workers + averaging collective + virtual wall clock.

``SimulatedCluster`` implements the PASGD update rule (eq. 3): it asks every
worker to run τ local SGD steps, advances the virtual clock by the slowest
worker's compute time (sampled from the runtime model), then performs the
model-averaging collective and advances the clock by the sampled
communication delay.  Optionally a :class:`~repro.optim.block_momentum.BlockMomentum`
instance post-processes the average (Section 5.3.1).

The cluster is deliberately policy-free: *when* to average and with what τ
and learning rate is decided by the trainer / communication schedule in
``repro.core``.  *How* the m replicas are executed is equally pluggable: a
worker-execution backend (see ``repro.distributed.backends``) either steps m
:class:`Worker` objects in a Python loop (``"loop"``) or runs all replicas
as stacked NumPy ops (``"vectorized"``, the worker bank).  ``"auto"`` picks
the vectorized bank whenever the model and data support it.  The averaging
step is the same arithmetic either way — ``mean(axis=0)`` over the stacked
``(m, P)`` states — and the straggler clock advance is backend-independent.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.partition import PartitionedDataset, partition_dataset
from repro.data.synthetic import Dataset
from repro.distributed.averaging import weighted_average_states
from repro.distributed.backends import WorkerBackend
from repro.distributed.events import CommunicationEvent, EventLog, LocalPeriodEvent
from repro.distributed.reuse import BackendHandle, resolve_backend
from repro.distributed.topology import (
    TOPOLOGIES,
    consensus_distance,
    mix_states,
    mixing_matrix_for,
)
from repro.nn.layers import Module
from repro.obs.metrics import counter_inc, gauge_set, observe, observe_many
from repro.obs.tracer import instant, span
from repro.optim.block_momentum import BlockMomentum
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.seeding import SeedSequence
from repro.utils.timer import VirtualClock, profiled

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """m workers training replicas of one model with periodic averaging.

    Parameters
    ----------
    model_fn:
        Zero-argument factory returning a fresh model replica.  All replicas
        are forced to the same initial parameters (the paper requires all
        workers to start from the same ``x1``).
    dataset:
        Training dataset to shard across workers (or an existing
        :class:`PartitionedDataset`).  ``None`` is allowed for data-free
        objectives (e.g. the quadratic problems), in which case every worker
        gets ``shard=None``.
    runtime:
        The delay model driving the virtual wall clock.
    n_workers:
        Cluster size m; must match ``runtime.n_workers``.
    batch_size, lr, momentum, weight_decay:
        Local-optimizer settings applied to every worker.
    block_momentum:
        Optional global block-momentum post-processing of each average.
    backend:
        Worker-execution backend name: ``"loop"`` (one ``Worker`` per
        replica, the reference implementation), ``"vectorized"`` (stacked
        worker bank), ``"sharded"`` (the bank split over a persistent pool
        of worker processes), or ``"auto"`` (sharded at or above
        ``auto_shard_threshold`` workers, else vectorized whenever the model
        supports it — all built-in models do — else loop).  All backends
        consume the same RNG streams, so seeded runs produce byte-identical
        trajectories on any of them.  Alternatively a
        :class:`~repro.distributed.reuse.BackendHandle`, which resolves the
        backend through a reusable slot so a sharded pool survives across
        cluster lifetimes (the handle then owns the pool — ``close()`` here
        leaves it alive).
    n_shards:
        Process count for the sharded backend (clamped to ``n_workers``);
        ignored by the in-process backends.
    auto_shard_threshold:
        Cluster size at which ``backend="auto"`` escalates from the
        single-process bank to the sharded pool; ``None`` disables the
        escalation.  Because the backends are byte-identical, the threshold
        changes the process layout, never the trajectory.
    bank_dtype:
        Storage dtype of the bank backends (``"float64"``, the
        byte-identical default, or ``"float32"``, the opt-in
        reduced-precision mode — half the memory traffic, parity within
        tolerance rather than byte-equality).  The loop backend is the
        float64 reference and ignores this knob.
    shard_transport:
        Data plane of the sharded backend's pool: ``"auto"`` (the zero-copy
        shared-memory state plane where the platform supports it, else
        pipes), ``"shm"``, or ``"pipe"``.  Like the other process-layout
        knobs this can never change a trajectory; in-process backends
        ignore it.
    weighting:
        How the averaging collective weights worker states: ``"uniform"``
        (the paper's setting, eq. 3) or ``"shard_size"`` — FedAvg-style
        weighting by each worker's training-shard size, so unbalanced
        partitions (e.g. ``label_skew``) average correctly.  Both backends
        report their shard sizes, so the choice is backend-independent.
    topology:
        Communication graph of the averaging collective.  ``"complete"``
        (default) is the paper's exact all-node mean — bit-identical to
        every earlier version.  ``"ring"``, ``"star"``, and ``"mh"``
        (Metropolis-Hastings weights over a deterministic chordal-ring
        graph) route :meth:`average_models` through gossip mixing instead:
        each worker combines only its neighbours' states, so workers end the
        round *disagreeing* and the synchronized model becomes the network
        average (what a decentralized deployment would evaluate).
    gossip_rounds:
        Gossip iterations per communication step on a non-complete topology
        (each costs one sampled communication delay); ignored when
        ``topology="complete"``.
    dropout_prob:
        Elastic-straggler probability: each round every worker independently
        drops out with this probability (seeded; its own RNG stream so the
        default ``0.0`` leaves existing trajectories byte-identical).
        Averaging folds only the survivors and the clock waits only for
        them; dropped workers rejoin at the next round with the averaged
        model (the broadcast reaches everyone).
    dropout_deadline:
        Optional elastic deadline in virtual seconds: workers whose
        τ-step compute time exceeds it are dropped for the round
        (deterministic given the runtime samples).  Combines with
        ``dropout_prob``; the fastest worker always survives so a round can
        never lose every update.
    """

    def __init__(
        self,
        model_fn: Callable[[], Module],
        dataset: Dataset | PartitionedDataset | None,
        runtime: RuntimeSimulator,
        n_workers: int,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        block_momentum: BlockMomentum | None = None,
        partition_strategy: str = "iid",
        seed: int = 0,
        backend: "str | BackendHandle" = "loop",
        weighting: str = "uniform",
        n_shards: int = 2,
        auto_shard_threshold: "int | None" = None,
        bank_dtype: str = "float64",
        shard_transport: str = "auto",
        topology: str = "complete",
        gossip_rounds: int = 1,
        dropout_prob: float = 0.0,
        dropout_deadline: "float | None" = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if weighting not in ("uniform", "shard_size"):
            raise ValueError(
                f"unknown weighting {weighting!r}; choose 'uniform' or 'shard_size'"
            )
        if runtime.n_workers != n_workers:
            raise ValueError(
                f"runtime simulator is configured for {runtime.n_workers} workers, "
                f"cluster has {n_workers}"
            )
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {topology!r}; choose one of {TOPOLOGIES}")
        if gossip_rounds < 1:
            raise ValueError(f"gossip_rounds must be >= 1, got {gossip_rounds}")
        if not 0.0 <= dropout_prob < 1.0:
            raise ValueError(f"dropout_prob must be in [0, 1), got {dropout_prob}")
        if dropout_deadline is not None and dropout_deadline <= 0:
            raise ValueError(f"dropout_deadline must be positive, got {dropout_deadline}")
        elastic = dropout_prob > 0.0 or dropout_deadline is not None
        if topology != "complete":
            if block_momentum is not None:
                raise ValueError(
                    "block momentum post-processes a single global average and is "
                    "incompatible with decentralized gossip topologies"
                )
            if elastic:
                raise ValueError(
                    "elastic dropout assumes the exact collective; use "
                    "topology='complete' with dropout_prob/dropout_deadline"
                )
        self.n_workers = n_workers
        self.runtime = runtime
        self.block_momentum = block_momentum
        self.clock = VirtualClock()
        self.events = EventLog()
        self._seeds = SeedSequence(seed)

        # Shard the data.
        if dataset is None:
            self._partition = None
            shards: list[Dataset | None] = [None] * n_workers
        elif isinstance(dataset, PartitionedDataset):
            if dataset.n_workers != n_workers:
                raise ValueError("partitioned dataset worker count does not match cluster size")
            self._partition = dataset
            shards = [dataset.shard(i) for i in range(n_workers)]
        else:
            self._partition = partition_dataset(
                dataset, n_workers, strategy=partition_strategy, rng=self._seeds.generator()
            )
            shards = [self._partition.shard(i) for i in range(n_workers)]

        # Per-worker RNG streams, spawned in worker order (identical
        # consumption of the seed sequence on every backend).
        worker_rngs = [self._seeds.generator() for _ in range(n_workers)]
        # The elastic dropout stream is spawned only when the feature is on:
        # a cluster with the default knobs consumes the seed sequence exactly
        # as every earlier version did (byte-identical trajectories).
        self.dropout_prob = float(dropout_prob)
        self.dropout_deadline = dropout_deadline
        self._elastic_rng = self._seeds.generator() if elastic else None
        self.topology = topology
        self.gossip_rounds = int(gossip_rounds)
        self._mixing = (
            None if topology == "complete" else mixing_matrix_for(topology, n_workers)
        )
        # Elastic state: survivor indices of the last local period (None when
        # the feature is off or no period has run yet).
        self._last_survivors: "np.ndarray | None" = None
        # Async parameter-server state: the server's version counter and the
        # version each worker last pulled (staleness = the difference).
        self._server_version = 0
        self._pulled_versions = np.zeros(n_workers, dtype=np.int64)
        build_kwargs = dict(
            model_fn=model_fn,
            shards=shards,
            batch_size=batch_size,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            rngs=worker_rngs,
            bank_dtype=bank_dtype,
        )
        if isinstance(backend, BackendHandle):
            # A handle-owned backend outlives this cluster (pool reuse across
            # runs); the handle closes it, cluster.close() must not.
            self._owns_backend = False
            self.backend_name, self._backend = backend.acquire(**build_kwargs)
        else:
            self._owns_backend = True
            self.backend_name, self._backend = self._resolve_backend(
                backend,
                n_shards=n_shards,
                auto_shard_threshold=auto_shard_threshold,
                shard_transport=shard_transport,
                **build_kwargs,
            )

        self.weighting = weighting
        self._average_weights: list[int] | None = None
        if weighting == "shard_size":
            sizes = self._backend.shard_sizes()
            if sizes is None:
                raise ValueError(
                    "weighting='shard_size' needs per-worker data shards; "
                    "data-free runs must use weighting='uniform'"
                )
            self._average_weights = sizes

        self._synchronized_params = self._backend.initial_state()
        self.total_local_iterations = 0
        self.communication_rounds = 0
        self.current_lr = lr
        gauge_set("workers", n_workers)

    @staticmethod
    def _resolve_backend(
        spec: str,
        *,
        n_shards: int = 2,
        auto_shard_threshold: "int | None" = None,
        shard_transport: str = "auto",
        **kwargs,
    ) -> tuple[str, WorkerBackend]:
        """Build the execution backend; ``"auto"`` escalates and falls back.

        Delegates to :func:`repro.distributed.reuse.resolve_backend` (the
        single home of the escalation/fallback chain, shared with
        :class:`~repro.distributed.reuse.BackendHandle`).
        """
        return resolve_backend(
            spec,
            n_shards=n_shards,
            auto_shard_threshold=auto_shard_threshold,
            shard_transport=shard_transport,
            **kwargs,
        )

    @property
    def workers(self):
        """Per-worker handles: ``Worker`` objects (loop) or bank views (vectorized)."""
        return self._backend.workers

    @property
    def backend(self) -> WorkerBackend:
        """The worker-execution backend instance."""
        return self._backend

    def close(self) -> None:
        """Release backend resources (the sharded backend's process pool).

        Idempotent and a no-op for in-process backends; the experiment
        harness calls it after every run, and ``with SimulatedCluster(...)``
        does so on exit.  A backend acquired through a
        :class:`~repro.distributed.reuse.BackendHandle` is owned by the
        handle — it stays alive here so the next run can reuse its pool.
        """
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "SimulatedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- core PASGD operations ------------------------------------------------
    def run_local_period(self, tau: int) -> float:
        """All workers run τ local steps; the clock advances by the slowest worker.

        Returns the mean local batch loss over the period (across workers and
        steps), which AdaComm may use as a cheap loss proxy.
        """
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        start = self.clock.now
        # The span closes after the clock advance so its virtual duration is
        # the sampled straggler-bound compute time of the period.
        with span("local_steps", clock=self.clock, tau=tau, backend=self.backend_name):
            with profiled("cluster.local_period"):
                losses = self._backend.local_period(tau)
            timing = self.runtime.sample_local_period(tau)
            if self._elastic_rng is None:
                compute_time = timing.compute_time
            else:
                survivors = self._sample_survivors(timing.per_worker_compute)
                self._last_survivors = survivors
                # The round only waits for the surviving workers.
                compute_time = float(timing.per_worker_compute[survivors].max())
            self.clock.advance(compute_time)
        counter_inc("local_steps_total", tau)
        # Straggler wait per worker: how long each replica idled for the
        # slowest one, in virtual seconds (a determinism-safe histogram).
        observe_many(
            "straggler_wait_virtual_seconds",
            np.maximum(compute_time - timing.per_worker_compute, 0.0),
        )
        self.total_local_iterations += tau
        mean_loss = float(np.mean(losses))
        self.events.append(
            LocalPeriodEvent(
                start_time=start,
                duration=compute_time,
                tau=tau,
                lr=self.current_lr,
                iteration_end=self.total_local_iterations,
                mean_local_loss=mean_loss,
            )
        )
        return mean_loss

    def _sample_survivors(self, per_worker_compute: np.ndarray) -> np.ndarray:
        """Elastic straggler process: which workers report in time this round.

        A worker survives if its τ-step compute time beats the deadline (when
        configured) AND its seeded Bernoulli(1 − p) draw comes up alive.  The
        Bernoulli stream is consumed every round regardless of the deadline
        outcome, so trajectories depend only on the seed, never on timing.
        The fastest worker always survives — the server waits for at least
        one update, so a round can never be empty.
        """
        alive = np.ones(self.n_workers, dtype=bool)
        if self.dropout_prob > 0.0:
            draws = self._elastic_rng.random(self.n_workers)
            alive &= draws >= self.dropout_prob
        if self.dropout_deadline is not None:
            alive &= per_worker_compute <= self.dropout_deadline
        if not alive.any():
            alive[int(np.argmin(per_worker_compute))] = True
        return np.flatnonzero(alive)

    def _average(self, states: np.ndarray) -> np.ndarray:
        """Combine stacked ``(m, P)`` states per the configured weighting.

        Uniform weighting keeps the exact ``mean(axis=0)`` arithmetic (and
        hence float-identical trajectories with earlier versions); shard-size
        weighting routes through :func:`weighted_average_states`.
        """
        if self._average_weights is None:
            return states.mean(axis=0)
        return weighted_average_states(list(states), self._average_weights)

    def average_models(self) -> np.ndarray:
        """Run the configured averaging collective and advance the clock.

        On the default complete topology this is the paper's exact collective:
        average all local models (folding only the elastic survivors when the
        straggler process is on), apply block momentum if configured, and
        broadcast the result.  On a gossip topology it is one decentralized
        mixing step instead (see :meth:`_gossip_mix`).  Returns the new
        synchronized flat parameter vector — the network average under
        gossip, where workers legitimately end the round disagreeing.
        """
        if self._mixing is not None:
            return self._gossip_mix()
        start = self.clock.now
        survivors = self._last_survivors
        self._last_survivors = None
        # "communicate" spans the whole collective (virtual duration = the
        # sampled network delay); "average" nests inside it and times just
        # the arithmetic, which is free on the virtual clock.
        with span("communicate", clock=self.clock, round=self.communication_rounds + 1):
            with span("average", clock=self.clock, n_workers=self.n_workers):
                with profiled("cluster.average"):
                    if survivors is not None and len(survivors) < self.n_workers:
                        averaged, gathered_bytes = self._average_survivors(survivors)
                    elif self._average_weights is None:
                        # Uniform averaging goes through the backend's
                        # mean_state hook, which is bit-identical to
                        # mean(axis=0) over the gathered stack but lets the
                        # sharded backend overlap the reduction with the
                        # gather (folding each shard's rows as they arrive).
                        averaged, gathered_bytes = self._backend.mean_state()
                    else:
                        states = self._backend.get_stacked_states()
                        gathered_bytes = states.nbytes
                        averaged = weighted_average_states(
                            list(states), self._average_weights
                        )
                    if self.block_momentum is not None:
                        averaged = self.block_momentum.apply(
                            self._synchronized_params, averaged, self.current_lr
                        )
                    self._backend.broadcast_state(averaged)
                    if self.block_momentum is not None:
                        self._backend.reset_momentum()
                    self._synchronized_params = averaged.copy()
            counter_inc("bytes_averaged_total", gathered_bytes)

            duration = self.runtime.sample_communication()
            self.clock.advance(duration)
        counter_inc("comm_rounds_total")
        self.communication_rounds += 1
        self.events.append(
            CommunicationEvent(start_time=start, duration=duration, round_index=self.communication_rounds)
        )
        return averaged

    def _average_survivors(self, survivors: np.ndarray) -> tuple[np.ndarray, int]:
        """Elastic collective: fold only the surviving workers' states.

        Dropped workers contribute nothing this round; the broadcast still
        reaches them, which *is* the rejoin — next round they start from the
        survivors' average.  Weights are uniform (or shard-size) over the
        survivors, renormalized by :func:`weighted_average_states`.
        """
        states = self._backend.get_stacked_states()
        dropped = self.n_workers - len(survivors)
        if self._average_weights is None:
            weights = [1.0] * len(survivors)
        else:
            weights = [self._average_weights[i] for i in survivors]
        averaged = weighted_average_states(
            [states[i] for i in survivors], weights
        )
        counter_inc("worker_dropouts_total", dropped)
        instant(
            "worker_dropout",
            clock=self.clock,
            round=self.communication_rounds + 1,
            dropped=dropped,
            survivors=len(survivors),
        )
        # Only the survivors' rows crossed the network this round.
        row_bytes = states.nbytes // self.n_workers
        return averaged, row_bytes * len(survivors)

    def _gossip_mix(self) -> np.ndarray:
        """One decentralized averaging step: ``gossip_rounds`` mixings of W.

        Workers combine their neighbours' states per the topology's
        doubly-stochastic mixing matrix instead of computing an exact global
        mean; the synchronized model is the network average of the mixed
        states (what a decentralized deployment would evaluate), and the
        clock pays one sampled communication delay per gossip round — on a
        sparse topology each round moves only the edges' worth of bytes.
        """
        start = self.clock.now
        W = self._mixing
        with span("communicate", clock=self.clock, round=self.communication_rounds + 1):
            with span(
                "gossip_mix",
                clock=self.clock,
                topology=self.topology,
                rounds=self.gossip_rounds,
            ):
                with profiled("cluster.average"):
                    states = self._backend.get_stacked_states()
                    mixed = np.stack(
                        mix_states(list(states), W, rounds=self.gossip_rounds)
                    )
                    self._backend.set_stacked_states(mixed)
                    averaged = mixed.mean(axis=0)
                    self._synchronized_params = averaged.copy()
                gauge_set(
                    "consensus_distance", consensus_distance(list(mixed))
                )
            # Bytes moved: each gossip round ships one state row per directed
            # edge of the communication graph (off-diagonal nonzeros of W).
            row_bytes = states.nbytes // self.n_workers
            edges = int(np.count_nonzero(W)) - self.n_workers
            counter_inc("bytes_averaged_total", row_bytes * max(edges, 0) * self.gossip_rounds)
            counter_inc("gossip_rounds_total", self.gossip_rounds)
            duration = 0.0
            for _ in range(self.gossip_rounds):
                duration += self.runtime.sample_communication()
            self.clock.advance(duration)
        counter_inc("comm_rounds_total")
        self.communication_rounds += 1
        self.events.append(
            CommunicationEvent(start_time=start, duration=duration, round_index=self.communication_rounds)
        )
        return averaged

    def run_round(self, tau: int) -> float:
        """One full PASGD round: τ local steps at each worker, then averaging."""
        loss = self.run_local_period(tau)
        self.average_models()
        return loss

    def run_async_round(self, tau: int, staleness_damping: float = 0.0) -> float:
        """One asynchronous generation: τ local steps per worker, no barrier.

        Bounded-staleness async local SGD: every worker runs τ steps from the
        parameters it last pulled, then pushes its state to the parameter
        server over a point-to-point link.  The server folds the updates in
        *arrival order* (per-worker virtual clocks in the runtime simulator —
        fast workers' updates land first) with weight
        ``1 / (m · (1 + damping · staleness))``, where staleness counts the
        server versions applied between the worker's pull and its push; each
        worker pulls the server's latest state the moment its own push lands.
        Each worker has at most one outstanding period, so staleness is
        bounded by m − 1 per generation.

        The global clock advances to the last arrival (the server has then
        seen every update of the generation); the mean local batch loss over
        the period is returned, as in :meth:`run_local_period`.
        """
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        if staleness_damping < 0:
            raise ValueError(
                f"staleness_damping must be non-negative, got {staleness_damping}"
            )
        start = self.clock.now
        with span("local_steps", clock=self.clock, tau=tau, backend=self.backend_name):
            with profiled("cluster.local_period"):
                losses = self._backend.local_period(tau)
            timing = self.runtime.sample_async_period(tau)
        counter_inc("local_steps_total", tau)
        self.total_local_iterations += tau

        with span("communicate", clock=self.clock, round=self.communication_rounds + 1):
            with profiled("cluster.average"):
                states = self._backend.get_stacked_states()
                server = self._synchronized_params.copy()
                # Stable sort: simultaneous arrivals fold in worker order,
                # keeping the trajectory independent of sort internals.
                order = np.argsort(timing.arrival_times, kind="stable")
                for i in order:
                    worker = int(i)
                    staleness = self._server_version - int(self._pulled_versions[worker])
                    weight = 1.0 / (
                        self.n_workers * (1.0 + staleness_damping * staleness)
                    )
                    server *= 1.0 - weight
                    server += weight * states[worker]
                    self._server_version += 1
                    self._pulled_versions[worker] = self._server_version
                    # The worker pulls the fresh server state with its push.
                    states[worker] = server
                    observe("staleness_updates", float(staleness))
                    instant(
                        "async_apply",
                        clock=self.clock,
                        worker=worker,
                        staleness=staleness,
                        arrival=float(timing.arrival_times[worker]),
                    )
                self._backend.set_stacked_states(states)
                self._synchronized_params = server.copy()
            counter_inc("async_applies_total", self.n_workers)
            counter_inc("bytes_averaged_total", states.nbytes)
            # The generation is over when the last update reaches the server.
            self.clock.advance(float(timing.arrival_times.max()) - start)
        counter_inc("comm_rounds_total")
        self.communication_rounds += 1
        mean_loss = float(np.mean(losses))
        self.events.append(
            LocalPeriodEvent(
                start_time=start,
                duration=float(timing.per_worker_compute.mean()),
                tau=tau,
                lr=self.current_lr,
                iteration_end=self.total_local_iterations,
                mean_local_loss=mean_loss,
            )
        )
        self.events.append(
            CommunicationEvent(
                start_time=start,
                duration=float(timing.per_worker_push.mean()),
                round_index=self.communication_rounds,
            )
        )
        return mean_loss

    # -- hyper-parameter control ---------------------------------------------------
    def set_lr(self, lr: float) -> None:
        """Set the learning rate on every worker."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self._backend.set_lr(lr)
        self.current_lr = float(lr)

    # -- state access -----------------------------------------------------------------
    @property
    def synchronized_parameters(self) -> np.ndarray:
        """Flat parameters of the most recent synchronized (averaged) model."""
        return self._synchronized_params.copy()

    def averaged_parameters(self) -> np.ndarray:
        """Average of the *current* local models, without modifying any worker."""
        return self._average(self._backend.get_stacked_states())

    def synchronized_model(self) -> Module:
        """A model loaded with the synchronized parameters.

        The returned module aliases backend scratch state (worker 0's model
        on the loop backend, the bank's template on the vectorized backend);
        callers should treat it as read-only and must not take local steps
        while holding it.
        """
        return self._backend.materialize(self._synchronized_params)

    def evaluate_synchronized(
        self, X: np.ndarray, y: np.ndarray, metric: Callable[[Module, np.ndarray, np.ndarray], float]
    ) -> float:
        """Evaluate a metric of the synchronized model, leaving workers unchanged."""
        return self._backend.evaluate_with_state(
            self._synchronized_params, lambda model: metric(model, X, y)
        )

    def model_discrepancy(self) -> float:
        """Mean L2 distance of local models from their average.

        This is the quantity ``‖X_k (I − J)‖`` that the convergence proof
        bounds; it grows within a local period and collapses to zero at every
        averaging step.
        """
        states = self._backend.get_stacked_states()
        avg = states.mean(axis=0)
        return float(np.mean(np.linalg.norm(states - avg, axis=1)))

    def epochs_completed(self) -> float:
        """Approximate number of passes over the global training set."""
        if self._partition is None:
            return 0.0
        total_samples = len(self._partition.dataset)
        batch = self._backend.batch_size
        samples_processed = self.total_local_iterations * batch * self.n_workers
        return samples_processed / total_samples if total_samples else 0.0
