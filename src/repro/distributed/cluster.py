"""The simulated cluster: workers + averaging collective + virtual wall clock.

``SimulatedCluster`` implements the PASGD update rule (eq. 3): it asks every
worker to run τ local SGD steps, advances the virtual clock by the slowest
worker's compute time (sampled from the runtime model), then performs the
model-averaging collective and advances the clock by the sampled
communication delay.  Optionally a :class:`~repro.optim.block_momentum.BlockMomentum`
instance post-processes the average (Section 5.3.1).

The cluster is deliberately policy-free: *when* to average and with what τ
and learning rate is decided by the trainer / communication schedule in
``repro.core``.  *How* the m replicas are executed is equally pluggable: a
worker-execution backend (see ``repro.distributed.backends``) either steps m
:class:`Worker` objects in a Python loop (``"loop"``) or runs all replicas
as stacked NumPy ops (``"vectorized"``, the worker bank).  ``"auto"`` picks
the vectorized bank whenever the model and data support it.  The averaging
step is the same arithmetic either way — ``mean(axis=0)`` over the stacked
``(m, P)`` states — and the straggler clock advance is backend-independent.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.partition import PartitionedDataset, partition_dataset
from repro.data.synthetic import Dataset
from repro.distributed.averaging import weighted_average_states
from repro.distributed.backends import WorkerBackend
from repro.distributed.events import CommunicationEvent, EventLog, LocalPeriodEvent
from repro.distributed.reuse import BackendHandle, resolve_backend
from repro.nn.layers import Module
from repro.obs.metrics import counter_inc, gauge_set, observe_many
from repro.obs.tracer import span
from repro.optim.block_momentum import BlockMomentum
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.seeding import SeedSequence
from repro.utils.timer import VirtualClock, profiled

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """m workers training replicas of one model with periodic averaging.

    Parameters
    ----------
    model_fn:
        Zero-argument factory returning a fresh model replica.  All replicas
        are forced to the same initial parameters (the paper requires all
        workers to start from the same ``x1``).
    dataset:
        Training dataset to shard across workers (or an existing
        :class:`PartitionedDataset`).  ``None`` is allowed for data-free
        objectives (e.g. the quadratic problems), in which case every worker
        gets ``shard=None``.
    runtime:
        The delay model driving the virtual wall clock.
    n_workers:
        Cluster size m; must match ``runtime.n_workers``.
    batch_size, lr, momentum, weight_decay:
        Local-optimizer settings applied to every worker.
    block_momentum:
        Optional global block-momentum post-processing of each average.
    backend:
        Worker-execution backend name: ``"loop"`` (one ``Worker`` per
        replica, the reference implementation), ``"vectorized"`` (stacked
        worker bank), ``"sharded"`` (the bank split over a persistent pool
        of worker processes), or ``"auto"`` (sharded at or above
        ``auto_shard_threshold`` workers, else vectorized whenever the model
        supports it — all built-in models do — else loop).  All backends
        consume the same RNG streams, so seeded runs produce byte-identical
        trajectories on any of them.  Alternatively a
        :class:`~repro.distributed.reuse.BackendHandle`, which resolves the
        backend through a reusable slot so a sharded pool survives across
        cluster lifetimes (the handle then owns the pool — ``close()`` here
        leaves it alive).
    n_shards:
        Process count for the sharded backend (clamped to ``n_workers``);
        ignored by the in-process backends.
    auto_shard_threshold:
        Cluster size at which ``backend="auto"`` escalates from the
        single-process bank to the sharded pool; ``None`` disables the
        escalation.  Because the backends are byte-identical, the threshold
        changes the process layout, never the trajectory.
    bank_dtype:
        Storage dtype of the bank backends (``"float64"``, the
        byte-identical default, or ``"float32"``, the opt-in
        reduced-precision mode — half the memory traffic, parity within
        tolerance rather than byte-equality).  The loop backend is the
        float64 reference and ignores this knob.
    shard_transport:
        Data plane of the sharded backend's pool: ``"auto"`` (the zero-copy
        shared-memory state plane where the platform supports it, else
        pipes), ``"shm"``, or ``"pipe"``.  Like the other process-layout
        knobs this can never change a trajectory; in-process backends
        ignore it.
    weighting:
        How the averaging collective weights worker states: ``"uniform"``
        (the paper's setting, eq. 3) or ``"shard_size"`` — FedAvg-style
        weighting by each worker's training-shard size, so unbalanced
        partitions (e.g. ``label_skew``) average correctly.  Both backends
        report their shard sizes, so the choice is backend-independent.
    """

    def __init__(
        self,
        model_fn: Callable[[], Module],
        dataset: Dataset | PartitionedDataset | None,
        runtime: RuntimeSimulator,
        n_workers: int,
        batch_size: int = 32,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        block_momentum: BlockMomentum | None = None,
        partition_strategy: str = "iid",
        seed: int = 0,
        backend: "str | BackendHandle" = "loop",
        weighting: str = "uniform",
        n_shards: int = 2,
        auto_shard_threshold: "int | None" = None,
        bank_dtype: str = "float64",
        shard_transport: str = "auto",
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if weighting not in ("uniform", "shard_size"):
            raise ValueError(
                f"unknown weighting {weighting!r}; choose 'uniform' or 'shard_size'"
            )
        if runtime.n_workers != n_workers:
            raise ValueError(
                f"runtime simulator is configured for {runtime.n_workers} workers, "
                f"cluster has {n_workers}"
            )
        self.n_workers = n_workers
        self.runtime = runtime
        self.block_momentum = block_momentum
        self.clock = VirtualClock()
        self.events = EventLog()
        self._seeds = SeedSequence(seed)

        # Shard the data.
        if dataset is None:
            self._partition = None
            shards: list[Dataset | None] = [None] * n_workers
        elif isinstance(dataset, PartitionedDataset):
            if dataset.n_workers != n_workers:
                raise ValueError("partitioned dataset worker count does not match cluster size")
            self._partition = dataset
            shards = [dataset.shard(i) for i in range(n_workers)]
        else:
            self._partition = partition_dataset(
                dataset, n_workers, strategy=partition_strategy, rng=self._seeds.generator()
            )
            shards = [self._partition.shard(i) for i in range(n_workers)]

        # Per-worker RNG streams, spawned in worker order (identical
        # consumption of the seed sequence on every backend).
        worker_rngs = [self._seeds.generator() for _ in range(n_workers)]
        build_kwargs = dict(
            model_fn=model_fn,
            shards=shards,
            batch_size=batch_size,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            rngs=worker_rngs,
            bank_dtype=bank_dtype,
        )
        if isinstance(backend, BackendHandle):
            # A handle-owned backend outlives this cluster (pool reuse across
            # runs); the handle closes it, cluster.close() must not.
            self._owns_backend = False
            self.backend_name, self._backend = backend.acquire(**build_kwargs)
        else:
            self._owns_backend = True
            self.backend_name, self._backend = self._resolve_backend(
                backend,
                n_shards=n_shards,
                auto_shard_threshold=auto_shard_threshold,
                shard_transport=shard_transport,
                **build_kwargs,
            )

        self.weighting = weighting
        self._average_weights: list[int] | None = None
        if weighting == "shard_size":
            sizes = self._backend.shard_sizes()
            if sizes is None:
                raise ValueError(
                    "weighting='shard_size' needs per-worker data shards; "
                    "data-free runs must use weighting='uniform'"
                )
            self._average_weights = sizes

        self._synchronized_params = self._backend.initial_state()
        self.total_local_iterations = 0
        self.communication_rounds = 0
        self.current_lr = lr
        gauge_set("workers", n_workers)

    @staticmethod
    def _resolve_backend(
        spec: str,
        *,
        n_shards: int = 2,
        auto_shard_threshold: "int | None" = None,
        shard_transport: str = "auto",
        **kwargs,
    ) -> tuple[str, WorkerBackend]:
        """Build the execution backend; ``"auto"`` escalates and falls back.

        Delegates to :func:`repro.distributed.reuse.resolve_backend` (the
        single home of the escalation/fallback chain, shared with
        :class:`~repro.distributed.reuse.BackendHandle`).
        """
        return resolve_backend(
            spec,
            n_shards=n_shards,
            auto_shard_threshold=auto_shard_threshold,
            shard_transport=shard_transport,
            **kwargs,
        )

    @property
    def workers(self):
        """Per-worker handles: ``Worker`` objects (loop) or bank views (vectorized)."""
        return self._backend.workers

    @property
    def backend(self) -> WorkerBackend:
        """The worker-execution backend instance."""
        return self._backend

    def close(self) -> None:
        """Release backend resources (the sharded backend's process pool).

        Idempotent and a no-op for in-process backends; the experiment
        harness calls it after every run, and ``with SimulatedCluster(...)``
        does so on exit.  A backend acquired through a
        :class:`~repro.distributed.reuse.BackendHandle` is owned by the
        handle — it stays alive here so the next run can reuse its pool.
        """
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "SimulatedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- core PASGD operations ------------------------------------------------
    def run_local_period(self, tau: int) -> float:
        """All workers run τ local steps; the clock advances by the slowest worker.

        Returns the mean local batch loss over the period (across workers and
        steps), which AdaComm may use as a cheap loss proxy.
        """
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        start = self.clock.now
        # The span closes after the clock advance so its virtual duration is
        # the sampled straggler-bound compute time of the period.
        with span("local_steps", clock=self.clock, tau=tau, backend=self.backend_name):
            with profiled("cluster.local_period"):
                losses = self._backend.local_period(tau)
            timing = self.runtime.sample_local_period(tau)
            self.clock.advance(timing.compute_time)
        counter_inc("local_steps_total", tau)
        # Straggler wait per worker: how long each replica idled for the
        # slowest one, in virtual seconds (a determinism-safe histogram).
        observe_many(
            "straggler_wait_virtual_seconds",
            timing.compute_time - timing.per_worker_compute,
        )
        self.total_local_iterations += tau
        mean_loss = float(np.mean(losses))
        self.events.append(
            LocalPeriodEvent(
                start_time=start,
                duration=timing.compute_time,
                tau=tau,
                lr=self.current_lr,
                iteration_end=self.total_local_iterations,
                mean_local_loss=mean_loss,
            )
        )
        return mean_loss

    def _average(self, states: np.ndarray) -> np.ndarray:
        """Combine stacked ``(m, P)`` states per the configured weighting.

        Uniform weighting keeps the exact ``mean(axis=0)`` arithmetic (and
        hence float-identical trajectories with earlier versions); shard-size
        weighting routes through :func:`weighted_average_states`.
        """
        if self._average_weights is None:
            return states.mean(axis=0)
        return weighted_average_states(list(states), self._average_weights)

    def average_models(self) -> np.ndarray:
        """Average all local models, broadcast the result, advance the clock.

        Applies block momentum if configured, and clears the workers' local
        momentum buffers afterwards (Section 5.3.1).  Returns the new
        synchronized flat parameter vector.
        """
        start = self.clock.now
        # "communicate" spans the whole collective (virtual duration = the
        # sampled network delay); "average" nests inside it and times just
        # the arithmetic, which is free on the virtual clock.
        with span("communicate", clock=self.clock, round=self.communication_rounds + 1):
            with span("average", clock=self.clock, n_workers=self.n_workers):
                with profiled("cluster.average"):
                    if self._average_weights is None:
                        # Uniform averaging goes through the backend's
                        # mean_state hook, which is bit-identical to
                        # mean(axis=0) over the gathered stack but lets the
                        # sharded backend overlap the reduction with the
                        # gather (folding each shard's rows as they arrive).
                        averaged, gathered_bytes = self._backend.mean_state()
                    else:
                        states = self._backend.get_stacked_states()
                        gathered_bytes = states.nbytes
                        averaged = weighted_average_states(
                            list(states), self._average_weights
                        )
                    if self.block_momentum is not None:
                        averaged = self.block_momentum.apply(
                            self._synchronized_params, averaged, self.current_lr
                        )
                    self._backend.broadcast_state(averaged)
                    if self.block_momentum is not None:
                        self._backend.reset_momentum()
                    self._synchronized_params = averaged.copy()
            counter_inc("bytes_averaged_total", gathered_bytes)

            duration = self.runtime.sample_communication()
            self.clock.advance(duration)
        counter_inc("comm_rounds_total")
        self.communication_rounds += 1
        self.events.append(
            CommunicationEvent(start_time=start, duration=duration, round_index=self.communication_rounds)
        )
        return averaged

    def run_round(self, tau: int) -> float:
        """One full PASGD round: τ local steps at each worker, then averaging."""
        loss = self.run_local_period(tau)
        self.average_models()
        return loss

    # -- hyper-parameter control ---------------------------------------------------
    def set_lr(self, lr: float) -> None:
        """Set the learning rate on every worker."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self._backend.set_lr(lr)
        self.current_lr = float(lr)

    # -- state access -----------------------------------------------------------------
    @property
    def synchronized_parameters(self) -> np.ndarray:
        """Flat parameters of the most recent synchronized (averaged) model."""
        return self._synchronized_params.copy()

    def averaged_parameters(self) -> np.ndarray:
        """Average of the *current* local models, without modifying any worker."""
        return self._average(self._backend.get_stacked_states())

    def synchronized_model(self) -> Module:
        """A model loaded with the synchronized parameters.

        The returned module aliases backend scratch state (worker 0's model
        on the loop backend, the bank's template on the vectorized backend);
        callers should treat it as read-only and must not take local steps
        while holding it.
        """
        return self._backend.materialize(self._synchronized_params)

    def evaluate_synchronized(
        self, X: np.ndarray, y: np.ndarray, metric: Callable[[Module, np.ndarray, np.ndarray], float]
    ) -> float:
        """Evaluate a metric of the synchronized model, leaving workers unchanged."""
        return self._backend.evaluate_with_state(
            self._synchronized_params, lambda model: metric(model, X, y)
        )

    def model_discrepancy(self) -> float:
        """Mean L2 distance of local models from their average.

        This is the quantity ``‖X_k (I − J)‖`` that the convergence proof
        bounds; it grows within a local period and collapses to zero at every
        averaging step.
        """
        states = self._backend.get_stacked_states()
        avg = states.mean(axis=0)
        return float(np.mean(np.linalg.norm(states - avg, axis=1)))

    def epochs_completed(self) -> float:
        """Approximate number of passes over the global training set."""
        if self._partition is None:
            return 0.0
        total_samples = len(self._partition.dataset)
        batch = self._backend.batch_size
        samples_processed = self.total_local_iterations * batch * self.n_workers
        return samples_processed / total_samples if total_samples else 0.0
