"""Block momentum for periodic-averaging SGD (Section 5.3.1, eq. 24–25).

The idea (from Chen & Huo, 2016, also used by CNTK) is to treat the total
movement of the averaged model over one local-update period as one big
gradient step ``G_j`` and apply a *global* momentum to it:

    u_j      = β_glob · u_{j-1} + G_j
    x_{j+1}  = x_j − η_j · u_j            (in terms of the averaged model)

where ``G_j = (x_j − mean_i x_i^{(j end)}) / η_j`` is the accumulated
(averaged) update of the period expressed in gradient units.  Workers may
still run local momentum SGD inside the period, but their local buffers are
cleared at each averaging step; that part is handled by
:meth:`repro.optim.sgd.SGD.reset_momentum` and the trainer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BlockMomentum"]


class BlockMomentum:
    """Global momentum applied to the averaged model once per communication round.

    Parameters
    ----------
    beta:
        Global momentum factor β_glob (the paper uses 0.3).

    Usage
    -----
    The trainer calls :meth:`apply` with the model state *before* the local
    period (``x_anchor``), the plain average of the workers' final local
    models (``x_avg``), and the learning rate in force during the period.
    ``apply`` returns the new synchronized model that every worker should
    load.  With ``beta = 0`` the scheme reduces exactly to plain periodic
    averaging (``x_avg`` is returned unchanged), which is covered by a unit
    test.
    """

    def __init__(self, beta: float = 0.3):
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"global momentum factor must be in [0, 1), got {beta}")
        self.beta = float(beta)
        self._buffer: np.ndarray | None = None
        self.n_rounds = 0

    def apply(self, x_anchor: np.ndarray, x_avg: np.ndarray, lr: float) -> np.ndarray:
        """Return the post-round synchronized model (eq. 24–25)."""
        x_anchor = np.asarray(x_anchor, dtype=float)
        x_avg = np.asarray(x_avg, dtype=float)
        if x_anchor.shape != x_avg.shape:
            raise ValueError("anchor and averaged model must have the same shape")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")

        # Accumulated (averaged) update of the block, in gradient units.
        block_gradient = (x_anchor - x_avg) / lr
        if self._buffer is None:
            self._buffer = np.zeros_like(x_anchor)
        self._buffer = self.beta * self._buffer + block_gradient
        self.n_rounds += 1
        return x_anchor - lr * self._buffer

    def reset(self) -> None:
        """Clear the global momentum buffer."""
        self._buffer = None
        self.n_rounds = 0

    @property
    def buffer(self) -> np.ndarray | None:
        """Current global momentum buffer (None before the first round)."""
        return self._buffer
