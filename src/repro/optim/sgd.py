"""Stochastic gradient descent with optional momentum and weight decay.

This is the local optimizer each worker applies to its own replica (eq. 2 of
the paper).  When used inside PASGD with block momentum, the local momentum
buffers are cleared at every averaging step (``reset_momentum``), as
described in Section 5.3.1 and done by CNTK's block-momentum implementation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["SGD"]


class SGD:
    """Mini-batch SGD: ``x ← x - η (g + weight_decay · x)`` with optional momentum.

    Parameters
    ----------
    params:
        Iterable of trainable :class:`Tensor` parameters (or a :class:`Module`).
    lr:
        Learning rate η.
    momentum:
        Classical (heavy-ball) momentum factor in [0, 1).
    weight_decay:
        L2 penalty coefficient added to every gradient.
    nesterov:
        Use Nesterov momentum instead of heavy-ball.
    """

    def __init__(
        self,
        params,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if isinstance(params, Module):
            params = list(params.parameters())
        else:
            params = list(params)
        if not params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")

        self.params: list[Tensor] = params
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)
        self.n_steps = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                if self.nesterov:
                    grad = grad + self.momentum * self._velocity[i]
                else:
                    grad = self._velocity[i]
            p.data -= self.lr * grad
        self.n_steps += 1

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (used by LR schedules and AdaComm coupling)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def reset_momentum(self) -> None:
        """Clear the momentum buffers.

        The block-momentum scheme restarts local momentum at the beginning of
        every local-update period (Section 5.3.1).
        """
        self._velocity = [None] * len(self.params)
