"""Optimizers and learning-rate schedules.

``SGD`` covers plain and (local) momentum SGD for each worker's local
updates; ``BlockMomentum`` implements the global block-momentum scheme of
Section 5.3.1 (eq. 24–25), applied to the averaged model once per
communication round; ``lr_schedules`` provides the fixed and step-decay
schedules of the experiments plus the τ-gated decay ("decay τ to 1 before
decaying the learning rate") described in Section 4.3.2.
"""

from repro.optim.sgd import SGD
from repro.optim.bank_sgd import BankSGD
from repro.optim.block_momentum import BlockMomentum
from repro.optim.lr_schedules import (
    LRSchedule,
    ConstantLR,
    StepDecayLR,
    MultiStepLR,
    TauGatedStepLR,
    make_lr_schedule,
)

__all__ = [
    "SGD",
    "BankSGD",
    "BlockMomentum",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "MultiStepLR",
    "TauGatedStepLR",
    "make_lr_schedule",
]
