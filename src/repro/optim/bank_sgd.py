"""SGD over a stacked parameter bank: one update step for all m workers.

``BankSGD`` applies exactly the local update rule of :class:`repro.optim.sgd.SGD`
(eq. 2 of the paper — momentum, weight decay, Nesterov) to parameters stacked
along a leading worker axis ``(m, *shape)``.  Because the update is
elementwise, one NumPy op per parameter updates every replica at once, and
each worker slice follows the same trajectory it would under m independent
``SGD`` instances.  ``reset_momentum`` clears the stacked velocity buffers at
averaging steps, as block momentum requires (Section 5.3.1).

The optimizer touches the bank's *parameters* only: stacked model buffers
(batch-norm running stats) are forward-pass state, updated in place by
``bank_forward`` and deliberately left alone both here and by the averaging
collective — each worker's statistics stay local, exactly as the loop
backend's per-replica modules keep theirs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.bank import ParameterBank

__all__ = ["BankSGD"]


class BankSGD:
    """Mini-batch SGD applied to all worker slices of a :class:`ParameterBank`.

    Parameters mirror :class:`repro.optim.sgd.SGD`; the only difference is
    that the "parameters" are the bank's stacked tensors and one ``step()``
    advances every worker.
    """

    def __init__(
        self,
        bank: ParameterBank,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")

        self.bank = bank
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: dict[str, np.ndarray | None] = {name: None for name in bank.params}
        self.n_steps = 0

    def zero_grad(self) -> None:
        self.bank.zero_grad()

    def step(self) -> None:
        """Apply one update to every worker slice from the stacked gradients."""
        for name, p in self.bank.params.items():
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity = self._velocity[name]
                if velocity is None:
                    velocity = np.zeros_like(p.data)
                    self._velocity[name] = velocity
                # In-place v ← momentum·v + grad; same arithmetic as SGD but
                # without a fresh (m, *shape) temporary per step.
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            p.data -= self.lr * grad
        self.n_steps += 1

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (LR schedules and AdaComm coupling)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def reset_momentum(self) -> None:
        """Clear the stacked momentum buffers (block-momentum averaging step)."""
        self._velocity = {name: None for name in self.bank.params}
