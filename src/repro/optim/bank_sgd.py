"""SGD over a stacked parameter bank: one update step for all m workers.

``BankSGD`` applies exactly the local update rule of :class:`repro.optim.sgd.SGD`
(eq. 2 of the paper — momentum, weight decay, Nesterov) to parameters stacked
along a leading worker axis ``(m, *shape)``.  Because the update is
elementwise, one NumPy op per parameter updates every replica at once, and
each worker slice follows the same trajectory it would under m independent
``SGD`` instances.  ``reset_momentum`` clears the stacked velocity buffers at
averaging steps, as block momentum requires (Section 5.3.1).

The optimizer touches the bank's *parameters* only: stacked model buffers
(batch-norm running stats) are forward-pass state, updated in place by
``bank_forward`` and deliberately left alone both here and by the averaging
collective — each worker's statistics stay local, exactly as the loop
backend's per-replica modules keep theirs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.bank import ParameterBank
from repro.utils.timer import profiled

__all__ = ["BankSGD"]


class BankSGD:
    """Mini-batch SGD applied to all worker slices of a :class:`ParameterBank`.

    Parameters mirror :class:`repro.optim.sgd.SGD`; the only difference is
    that the "parameters" are the bank's stacked tensors and one ``step()``
    advances every worker.
    """

    def __init__(
        self,
        bank: ParameterBank,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")

        self.bank = bank
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        # Velocity and update scratch are preallocated so every step —
        # including the first — takes the same fused in-place code path.
        self._velocity: dict[str, np.ndarray] = {
            name: np.zeros_like(p.data) for name, p in bank.params.items()
        }
        self._update: dict[str, np.ndarray] = {
            name: np.empty_like(p.data) for name, p in bank.params.items()
        }
        # Nesterov with weight decay needs a second scratch: the first holds
        # the decayed gradient while the look-ahead term is formed.
        self._lookahead: dict[str, np.ndarray] = (
            {name: np.empty_like(p.data) for name, p in bank.params.items()}
            if nesterov and weight_decay
            else {}
        )
        self.n_steps = 0

    def zero_grad(self) -> None:
        self.bank.zero_grad()

    def step(self) -> None:
        """Apply one update to every worker slice from the stacked gradients.

        The update is fused onto preallocated buffers: no ``(m, *shape)``
        temporary is created per parameter per step.  Every reordering below
        (``wd·p + grad`` for ``grad + wd·p``, scaled-subtract for
        ``p -= lr·grad``) commutes bitwise under IEEE-754, so the trajectory
        stays byte-identical to the loop reference.
        """
        lr = self.lr
        momentum = self.momentum
        wd = self.weight_decay
        with profiled("bank_sgd.step"):
            for name, p in self.bank.params.items():
                grad = p.grad
                if grad is None:
                    continue
                buf = self._update[name]
                in_scratch = False
                if wd:
                    # buf ← wd·p + grad (addition commutes, bytes match grad + wd·p).
                    np.multiply(p.data, wd, out=buf)
                    buf += grad
                    grad = buf
                    in_scratch = True
                if momentum:
                    velocity = self._velocity[name]
                    # v ← momentum·v + grad, in place on the persistent buffer.
                    velocity *= momentum
                    velocity += grad
                    if self.nesterov:
                        out = self._lookahead[name] if in_scratch else buf
                        np.multiply(velocity, momentum, out=out)
                        out += grad
                        grad = out
                        in_scratch = True
                    else:
                        grad = velocity
                        in_scratch = False
                # p ← p − lr·grad: scale into scratch (in place when the update
                # already lives in one) and subtract without a temporary.
                if in_scratch:
                    np.multiply(grad, lr, out=grad)
                    p.data -= grad
                else:
                    np.multiply(grad, lr, out=buf)
                    p.data -= buf
        self.n_steps += 1

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (LR schedules and AdaComm coupling)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def reset_momentum(self) -> None:
        """Clear the stacked momentum buffers (block-momentum averaging step)."""
        for velocity in self._velocity.values():
            velocity.fill(0.0)
