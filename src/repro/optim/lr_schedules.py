"""Learning-rate schedules.

The paper's experiments use either a fixed learning rate or a step decay
("decay the learning rate by 10 after the 80th/120th/160th/200th epochs").
Section 4.3.2 adds a coupling rule: when AdaComm is active, a scheduled decay
is *postponed* until the communication period has been brought back down to
τ = 1, so that the extra gradient noise introduced by local updates is
eliminated before the learning rate drops.  ``TauGatedStepLR`` implements
that gating; the trainer feeds it the current τ.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.api.registries import LR_SCHEDULES

__all__ = [
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "MultiStepLR",
    "TauGatedStepLR",
    "make_lr_schedule",
]


class LRSchedule(abc.ABC):
    """Maps training progress (epochs and current τ) to a learning rate."""

    @abc.abstractmethod
    def lr_at(self, epoch: float, tau: int = 1) -> float:
        """Learning rate to use at fractional ``epoch`` given current period ``tau``."""

    @property
    @abc.abstractmethod
    def initial_lr(self) -> float:
        """Learning rate at the start of training."""


@LR_SCHEDULES.register("constant")
@dataclass(frozen=True)
class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    lr: float

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError(f"learning rate must be positive, got {self.lr}")

    def lr_at(self, epoch: float, tau: int = 1) -> float:
        return self.lr

    @property
    def initial_lr(self) -> float:
        return self.lr


@LR_SCHEDULES.register("step")
@dataclass(frozen=True)
class StepDecayLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_epochs`` epochs."""

    lr: float
    step_epochs: float
    gamma: float = 0.1

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.step_epochs <= 0 or not 0 < self.gamma <= 1:
            raise ValueError("invalid StepDecayLR parameters")

    def lr_at(self, epoch: float, tau: int = 1) -> float:
        n_decays = int(epoch // self.step_epochs)
        return self.lr * self.gamma**n_decays

    @property
    def initial_lr(self) -> float:
        return self.lr


@LR_SCHEDULES.register("multistep")
@dataclass(frozen=True)
class MultiStepLR(LRSchedule):
    """Decay by ``gamma`` at each epoch milestone (the paper's 80/120/160/200)."""

    lr: float
    milestones: tuple[float, ...] = (80.0, 120.0, 160.0, 200.0)
    gamma: float = 0.1

    def __post_init__(self) -> None:
        if self.lr <= 0 or not 0 < self.gamma <= 1:
            raise ValueError("invalid MultiStepLR parameters")
        if any(m <= 0 for m in self.milestones):
            raise ValueError("milestones must be positive")
        if list(self.milestones) != sorted(self.milestones):
            raise ValueError("milestones must be sorted ascending")

    def lr_at(self, epoch: float, tau: int = 1) -> float:
        n_decays = sum(1 for m in self.milestones if epoch >= m)
        return self.lr * self.gamma**n_decays

    @property
    def initial_lr(self) -> float:
        return self.lr


@LR_SCHEDULES.register("tau_gated")
@dataclass
class TauGatedStepLR(LRSchedule):
    """MultiStep decay that is postponed while the communication period exceeds 1.

    Section 4.3.2: "if the learning rate is scheduled to be decayed at the
    80th epoch but at that time the communication period τ is still larger
    than 1, then we will continue [to] use the current learning rate until
    τ = 1."  The gate is per-milestone: a milestone only "fires" the first
    time it is requested with τ == 1, and the decay count never decreases.
    """

    lr: float
    milestones: tuple[float, ...] = (80.0, 120.0, 160.0, 200.0)
    gamma: float = 0.1
    _fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.lr <= 0 or not 0 < self.gamma <= 1:
            raise ValueError("invalid TauGatedStepLR parameters")
        if list(self.milestones) != sorted(self.milestones):
            raise ValueError("milestones must be sorted ascending")

    def lr_at(self, epoch: float, tau: int = 1) -> float:
        eligible = sum(1 for m in self.milestones if epoch >= m)
        if tau <= 1 and eligible > self._fired:
            self._fired = eligible
        return self.lr * self.gamma**self._fired

    @property
    def initial_lr(self) -> float:
        return self.lr

    @property
    def decays_applied(self) -> int:
        """Number of milestone decays that have actually fired."""
        return self._fired


def make_lr_schedule(name: str, **kwargs) -> LRSchedule:
    """Factory: ``constant``, ``step``, ``multistep``, or ``tau_gated``
    (backed by the shared ``LR_SCHEDULES`` registry)."""
    return LR_SCHEDULES.build(name, **kwargs)
