"""Test package for the repro library.

A real package (not just a directory of files) so that the shared
equivalence-matrix helpers import as ``tests.conftest`` and the golden-
fixture regeneration script runs as ``python -m tests.regen_golden``.
"""
