"""Acceptance suite for the zero-copy shared-memory shard transport.

The PR contract: ``shard_transport="shm"`` moves the ``(m, P)`` state bank
onto a POSIX shared-memory plane so the shard pipes carry only O(1) control
tuples, while every byte of the trajectory stays identical to the Pipe
transport (and hence to vectorized/loop — see the equivalence matrix).
This file pins the plane's own lifecycle (create/attach/spec, pack/unpack,
close-then-unlink, zero ``/dev/shm`` orphans even after a child dies), the
overlapped ``mean_state`` reduction's bit-equality, the byte-traffic
counters that prove the pipes went quiet, the threaded in-process fallback,
and the config/CLI/builder wiring of the transport knob.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.distributed.sharded_bank import ShardedBank
from repro.distributed.transport import (
    ShmStatePlane,
    buffer_spec,
    resolve_transport,
    shm_available,
)
from repro.models.mlp import MLP
from repro.obs.metrics import MetricsRegistry

from tests.conftest import EQUIVALENCE_FEATURES, _registry_model_fn
from tests.test_sharded_bank import _cluster

F, C = EQUIVALENCE_FEATURES, 4

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="interpreter lacks multiprocessing.shared_memory"
)


def _shm_segment_count() -> int:
    """Python-allocated segments currently alive in /dev/shm."""
    try:
        return sum(1 for name in os.listdir("/dev/shm") if name.startswith("psm_"))
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return 0


# -- transport resolution ----------------------------------------------------


class TestResolveTransport:
    def test_auto_and_shm_resolve_to_shm_here(self):
        assert resolve_transport("auto") == "shm"
        assert resolve_transport("shm") == "shm"

    def test_pipe_is_always_honored(self):
        assert resolve_transport("pipe") == "pipe"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown shard transport"):
            resolve_transport("carrier-pigeon")


# -- the state plane itself --------------------------------------------------


class TestShmStatePlane:
    def test_create_spec_attach_roundtrip(self):
        owner = ShmStatePlane.create(n_workers=3, n_params=5, state_dtype=np.float64)
        try:
            owner.states[:] = np.arange(15.0).reshape(3, 5)
            owner.bcast[:] = np.full(5, 7.5)
            reader = ShmStatePlane.attach(owner.spec())
            try:
                assert not reader.owner and owner.owner
                np.testing.assert_array_equal(
                    reader.states, np.arange(15.0).reshape(3, 5)
                )
                np.testing.assert_array_equal(reader.bcast, np.full(5, 7.5))
                # Writes travel the other way too — it is one mapping.
                reader.states[1, :] = -1.0
                assert owner.states[1, 0] == -1.0
            finally:
                reader.close()
        finally:
            owner.destroy()

    def test_buffer_rows_pack_and_unpack(self):
        model = MLP(F, C, hidden_sizes=(6,), batch_norm=True, rng=0)
        spec = buffer_spec(model)
        assert spec and all(len(entry) == 3 for entry in spec)
        plane = ShmStatePlane.create(
            n_workers=2, n_params=4, state_dtype=np.float64, buffer_spec=spec
        )
        try:
            buffers = {name: rng_like for name, rng_like in model.named_buffers()}
            plane.write_worker_buffers(1, buffers)
            out = plane.read_worker_buffers(1)
            assert set(out) == set(buffers)
            for name, value in buffers.items():
                np.testing.assert_array_equal(out[name], np.asarray(value))
                assert out[name].shape == np.shape(value)
        finally:
            plane.destroy()

    def test_no_buffer_segment_without_buffers(self):
        plane = ShmStatePlane.create(n_workers=2, n_params=4, state_dtype=np.float64)
        try:
            assert plane.buffers is None
        finally:
            plane.destroy()

    def test_destroy_unlinks_and_is_idempotent(self):
        before = _shm_segment_count()
        plane = ShmStatePlane.create(n_workers=2, n_params=8, state_dtype=np.float32)
        spec = plane.spec()
        assert _shm_segment_count() == before + 2  # states + bcast
        plane.destroy()
        plane.destroy()  # idempotent
        assert _shm_segment_count() == before
        with pytest.raises(FileNotFoundError):
            ShmStatePlane.attach(spec)

    def test_attach_failure_does_not_leak_partial_segments(self):
        plane = ShmStatePlane.create(n_workers=2, n_params=8, state_dtype=np.float64)
        try:
            before = _shm_segment_count()
            bad = dict(plane.spec())
            bad["segments"] = {**bad["segments"], "bcast": "psm_does_not_exist"}
            with pytest.raises(FileNotFoundError):
                ShmStatePlane.attach(bad)
            assert _shm_segment_count() == before  # the good attach was closed
        finally:
            plane.destroy()


# -- the backend over the plane ----------------------------------------------


class TestBackendOverShm:
    def test_auto_resolves_to_shm_and_pipe_pins_pipe(self):
        for requested, expected in (("auto", "shm"), ("shm", "shm"), ("pipe", "pipe")):
            cluster = _cluster(
                "sharded", _registry_model_fn("mlp"), 4, shard_transport=requested
            )
            try:
                assert cluster.backend.transport == expected, requested
            finally:
                cluster.close()

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_mean_state_bit_equals_stacked_mean(self, transport):
        cluster = _cluster(
            "sharded", _registry_model_fn("mlp"), 5, shard_transport=transport
        )
        try:
            backend = cluster.backend
            backend.local_period(3)
            expected = backend.get_stacked_states().mean(axis=0)
            averaged, nbytes = backend.mean_state()
            np.testing.assert_array_equal(averaged, expected)
            assert nbytes == backend.get_stacked_states().nbytes
        finally:
            cluster.close()

    def test_shm_silences_the_pipes_and_pipe_never_touches_shm(self):
        traffic = {}
        for transport in ("pipe", "shm"):
            cluster = _cluster(
                "sharded", _registry_model_fn("mlp"), 4, shard_transport=transport
            )
            try:
                with MetricsRegistry() as metrics:
                    cluster.backend.local_period(2)
                    cluster.average_models()
                    cluster.average_models()
                snapshot = metrics.snapshot()["counters"]
                histograms = metrics.snapshot()["histograms"]
                traffic[transport] = (
                    snapshot["bytes_over_pipe"], snapshot["bytes_via_shm"]
                )
                assert histograms["shard_gather_seconds"]["count"] > 0
            finally:
                cluster.close()
        pipe_bytes, shm_zero = traffic["pipe"]
        assert pipe_bytes > 0 and shm_zero == 0
        zero_pipe, shm_bytes = traffic["shm"]
        assert zero_pipe == 0 and shm_bytes > 0

    def test_full_lifecycle_leaves_no_segments(self):
        before = _shm_segment_count()
        cluster = _cluster(
            "sharded",
            lambda: MLP(F, C, hidden_sizes=(8,), batch_norm=True, rng=1),
            4,
            shard_transport="shm",
        )
        try:
            assert _shm_segment_count() > before  # the plane is really live
            cluster.backend.local_period(2)
            cluster.average_models()
            cluster.backend.worker_buffers(2)  # buffer rows ride the plane too
        finally:
            cluster.close()
        assert _shm_segment_count() == before

    def test_killed_child_still_tears_down_cleanly(self):
        # Regression: _shutdown_pool must survive EOFError/BrokenPipeError on
        # a dead child's pipe, close() must stay idempotent, and the parent —
        # sole owner of the segments — must still unlink them all.
        before = _shm_segment_count()
        cluster = _cluster(
            "sharded", _registry_model_fn("mlp"), 4, shard_transport="shm"
        )
        backend = cluster.backend
        backend.local_period(1)
        victim = backend._procs[0]
        victim.terminate()
        victim.join(timeout=10)
        cluster.close()
        cluster.close()  # double close after the crash: must be a no-op
        assert backend._closed
        assert _shm_segment_count() == before

    def test_rebuild_reallocates_plane_and_can_switch_transport(self):
        before = _shm_segment_count()
        model_fn = _registry_model_fn("mlp")
        shards = _cluster("sharded", model_fn, 4, shard_transport="shm")
        backend = shards.backend
        try:
            assert backend.transport == "shm"
            first_spec = backend._plane.spec()
            # shm → pipe: the old segments must be gone afterwards.
            backend.rebuild(model_fn, [None] * 4, n_shards=2, transport="pipe")
            assert backend.transport == "pipe" and backend._plane is None
            with pytest.raises(FileNotFoundError):
                ShmStatePlane.attach(first_spec)
            # pipe → shm: a fresh plane with the new geometry.
            backend.rebuild(model_fn, [None] * 6, n_shards=2, transport="shm")
            assert backend.transport == "shm"
            assert backend._plane.states.shape[0] == 6
            assert len(backend.get_stacked_states()) == 6
        finally:
            shards.close()
        assert _shm_segment_count() == before


# -- threaded in-process fallback ---------------------------------------------


class TestThreadedInprocessShards:
    def test_daemonic_parent_gets_thread_pool_and_identical_bytes(self):
        import multiprocessing

        def model_fn():
            return MLP(F, C, hidden_sizes=(8,), dropout=0.2, rng=1)

        vectorized = _cluster("vectorized", model_fn, 4)
        process = multiprocessing.current_process()
        process.daemon = True
        try:
            sharded = _cluster("sharded", model_fn, 4, n_shards=2)
        finally:
            process.daemon = False
        try:
            backend = sharded.backend
            assert not backend.pooled and backend.transport == "inproc"
            assert backend._executor is not None  # 2 servers → real thread pool
            np.testing.assert_array_equal(
                vectorized.backend.local_period(3), backend.local_period(3)
            )
            np.testing.assert_array_equal(
                vectorized.average_models(), sharded.average_models()
            )
            # mean_state folds thread-pool results in shard order: bit-equal.
            averaged, _ = backend.mean_state()
            np.testing.assert_array_equal(
                averaged, backend.get_stacked_states().mean(axis=0)
            )
        finally:
            sharded.close()
            vectorized.close()
        assert backend._executor is None  # close() stops the pool

    def test_single_shard_skips_the_thread_pool(self):
        import multiprocessing

        process = multiprocessing.current_process()
        process.daemon = True
        try:
            sharded = _cluster("sharded", _registry_model_fn("mlp"), 3, n_shards=1)
        finally:
            process.daemon = False
        try:
            assert sharded.backend._executor is None
            assert len(sharded.backend.local_period(2)) == 3
        finally:
            sharded.close()


# -- config / CLI / builder wiring --------------------------------------------


class TestTransportWiring:
    def test_config_field_validates_and_roundtrips(self):
        from repro.experiments.configs import ExperimentConfig, make_config

        config = make_config("smoke", shard_transport="pipe")
        assert ExperimentConfig.from_dict(config.to_dict()).shard_transport == "pipe"
        with pytest.raises(ValueError, match="shard_transport"):
            make_config("smoke", shard_transport="quic").validate()

    def test_transport_is_excluded_from_the_sweep_hash(self):
        # Like backend/backend_shards: the transport changes how bytes move,
        # never which bytes — cells must stay content-addressable across it.
        from repro.experiments.configs import make_config
        from repro.sweep.spec import cell_hash

        base = make_config("smoke")
        assert cell_hash(base) == cell_hash(base.with_overrides(shard_transport="pipe"))

    def test_experiment_builder_sets_transport(self):
        from repro.api import Experiment

        config = Experiment("smoke").transport("pipe").build()
        assert config.shard_transport == "pipe"
        with pytest.raises(ValueError, match="shard_transport"):
            Experiment("smoke").transport("quic").build()

    def test_cli_flag_overrides_config(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["--shard-transport", "pipe"])
        assert args.shard_transport == "pipe"
        assert build_parser().parse_args([]).shard_transport is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--shard-transport", "quic"])

    def test_direct_constructor_validates_before_spawn(self):
        with pytest.raises(ValueError, match="unknown shard transport"):
            ShardedBank(
                _registry_model_fn("mlp"), [None] * 2, n_shards=2, transport="quic"
            )
