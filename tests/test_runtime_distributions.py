"""Tests for delay distributions (repro.runtime.distributions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.distributions import (
    ConstantDelay,
    ExponentialDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    UniformDelay,
    make_distribution,
)


ALL_DISTS = [
    ConstantDelay(2.0),
    ExponentialDelay(1.5),
    ShiftedExponentialDelay(shift=0.5, scale=1.0),
    UniformDelay(0.5, 2.5),
    ParetoDelay(scale=1.0, alpha=3.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonBehaviour:
    def test_samples_nonnegative(self, dist):
        samples = dist.sample(2000, rng=0)
        assert np.all(samples >= 0)

    def test_sample_shape(self, dist):
        assert dist.sample((3, 4), rng=0).shape == (3, 4)

    def test_empirical_mean_matches_analytic(self, dist):
        samples = dist.sample(60000, rng=1)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.05)

    def test_empirical_variance_matches_analytic(self, dist):
        samples = dist.sample(120000, rng=2)
        if dist.variance == 0:
            assert samples.var() == 0
        else:
            assert samples.var() == pytest.approx(dist.variance, rel=0.1)

    def test_sample_one_is_scalar(self, dist):
        assert isinstance(dist.sample_one(rng=3), float)

    def test_std_is_sqrt_variance(self, dist):
        assert dist.std == pytest.approx(np.sqrt(dist.variance))


class TestAveragedDelay:
    def test_mean_preserved_variance_reduced(self):
        base = ExponentialDelay(2.0)
        avg = base.averaged(8)
        assert avg.mean == base.mean
        assert avg.variance == pytest.approx(base.variance / 8)

    def test_empirical_variance_reduction(self):
        base = ExponentialDelay(1.0)
        avg = base.averaged(10)
        samples = avg.sample(40000, rng=0)
        assert samples.var() == pytest.approx(0.1, rel=0.1)

    def test_tau_one_identity_moments(self):
        base = UniformDelay(1.0, 3.0)
        avg = base.averaged(1)
        assert avg.mean == base.mean and avg.variance == base.variance

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            ExponentialDelay(1.0).averaged(0)

    def test_tuple_size(self):
        avg = ExponentialDelay(1.0).averaged(4)
        assert avg.sample((5, 3), rng=0).shape == (5, 3)


class TestValidation:
    def test_constant_negative(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)

    def test_exponential_nonpositive(self):
        with pytest.raises(ValueError):
            ExponentialDelay(0.0)

    def test_shifted_exponential_negative_shift(self):
        with pytest.raises(ValueError):
            ShiftedExponentialDelay(shift=-0.1, scale=1.0)

    def test_uniform_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformDelay(3.0, 1.0)

    def test_pareto_alpha_too_small(self):
        with pytest.raises(ValueError):
            ParetoDelay(scale=1.0, alpha=1.5)


class TestFactory:
    def test_make_each_registered_distribution(self):
        assert make_distribution("constant", value=1.0).mean == 1.0
        assert make_distribution("exponential", scale=2.0).mean == 2.0
        assert make_distribution("uniform", low=0.0, high=2.0).mean == 1.0
        assert make_distribution("shifted_exponential", shift=1.0, scale=1.0).mean == 2.0
        assert make_distribution("pareto", scale=1.0, alpha=3.0).mean == 1.5

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_distribution("weibull")


@settings(max_examples=30, deadline=None)
@given(
    scale=st.floats(min_value=0.1, max_value=5.0),
    tau=st.integers(min_value=1, max_value=30),
)
def test_property_averaging_never_increases_variance(scale, tau):
    """Var(Ȳ) = Var(Y)/τ ≤ Var(Y) for every scale and τ (eq. 9)."""
    base = ExponentialDelay(scale)
    avg = base.averaged(tau)
    assert avg.variance <= base.variance + 1e-12
    assert avg.mean == pytest.approx(base.mean)


@settings(max_examples=30, deadline=None)
@given(
    shift=st.floats(min_value=0.0, max_value=3.0),
    scale=st.floats(min_value=0.1, max_value=3.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_shifted_exponential_respects_lower_bound(shift, scale, seed):
    """Shifted-exponential samples are never below their deterministic shift."""
    dist = ShiftedExponentialDelay(shift=shift, scale=scale)
    samples = dist.sample(500, rng=seed)
    assert np.all(samples >= shift)


class TestFromMoments:
    """Moment matching lives on the distributions (from_moments classmethods)."""

    MATCHING = [
        (ShiftedExponentialDelay, 1.0, 0.25),
        (UniformDelay, 1.0, 0.25),
        (ParetoDelay, 1.0, 0.25),
        (ExponentialDelay, 2.0, 2.0),
        (ShiftedExponentialDelay, 3.0, 0.5),
        (UniformDelay, 2.0, 0.3),
        (ParetoDelay, 5.0, 1.0),
    ]

    @pytest.mark.parametrize("cls,mean,std", MATCHING,
                             ids=lambda v: getattr(v, "__name__", str(v)))
    def test_moments_are_matched(self, cls, mean, std):
        dist = cls.from_moments(mean, std)
        assert isinstance(dist, cls)
        assert dist.mean == pytest.approx(mean, rel=1e-12)
        assert dist.std == pytest.approx(std, rel=1e-12)

    def test_constant_matches_mean_only(self):
        dist = ConstantDelay.from_moments(1.5, 0.25)
        assert dist.value == 1.5 and dist.variance == 0.0

    def test_exponential_pins_std_to_mean(self):
        dist = ExponentialDelay.from_moments(2.0, 0.1)
        assert dist.mean == 2.0 and dist.std == 2.0

    def test_capped_families_stay_valid_for_large_std(self):
        # std > mean: shift/low must be clamped at zero, not go negative.
        se = ShiftedExponentialDelay.from_moments(1.0, 4.0)
        assert se.shift == 0.0 and se.mean == 1.0
        uni = UniformDelay.from_moments(1.0, 4.0)
        assert uni.low == 0.0 and uni.mean == 1.0

    @pytest.mark.parametrize("cls", [ShiftedExponentialDelay, UniformDelay, ParetoDelay])
    def test_nonpositive_std_rejected(self, cls):
        with pytest.raises(ValueError, match="std"):
            cls.from_moments(1.0, 0.0)

    def test_base_class_hook_raises_not_implemented(self):
        from repro.runtime.distributions import DelayDistribution

        class NoHook(DelayDistribution):
            mean = 1.0
            variance = 1.0

            def sample(self, size, rng=None):
                return np.zeros(size)

        with pytest.raises(NotImplementedError, match="moment-matching"):
            NoHook.from_moments(1.0, 0.5)

    def test_registered_delay_resolves_via_hook_in_harness(self):
        """A third-party delay given as a bare name works end to end."""
        from repro.api import DELAYS
        from repro.experiments.configs import make_config
        from repro.experiments.harness import _build_compute_distribution

        @DELAYS.register("thirdparty_uniform_for_test")
        class ThirdParty(UniformDelay):
            pass

        try:
            dist = _build_compute_distribution(
                make_config("smoke", delay="thirdparty_uniform_for_test")
            )
            assert isinstance(dist, ThirdParty)
            assert dist.mean == pytest.approx(1.0)
        finally:
            DELAYS.unregister("thirdparty_uniform_for_test")

    def test_unhooked_registered_delay_fails_with_guidance(self):
        from repro.api import DELAYS
        from repro.experiments.configs import make_config
        from repro.experiments.harness import _build_compute_distribution

        DELAYS.register("hookless_for_test", lambda **kw: None)
        try:
            with pytest.raises(ValueError, match="from_moments"):
                _build_compute_distribution(make_config("smoke", delay="hookless_for_test"))
        finally:
            DELAYS.unregister("hookless_for_test")
