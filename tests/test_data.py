"""Tests for the data substrate (repro.data)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.loader import BatchLoader
from repro.data.partition import partition_dataset
from repro.data.synthetic import (
    Dataset,
    make_gaussian_blobs,
    make_linear_regression,
    make_spirals,
    make_synth_cifar10,
    make_synth_cifar100,
)


class TestDataset:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((0, 2)), np.zeros(0))

    def test_subset(self):
        ds = make_gaussian_blobs(50, 4, 3, rng=0)
        sub = ds.subset(np.array([0, 5, 10]))
        assert len(sub) == 3
        np.testing.assert_allclose(sub.X[1], ds.X[5])

    def test_split_sizes_and_disjoint(self):
        ds = make_gaussian_blobs(100, 4, 2, rng=0)
        train, test = ds.split(test_fraction=0.25, rng=0)
        assert len(train) == 75 and len(test) == 25

    def test_split_invalid_fraction(self):
        ds = make_gaussian_blobs(20, 2, 2, rng=0)
        with pytest.raises(ValueError):
            ds.split(test_fraction=1.5)

    def test_n_features_flattens(self):
        ds = Dataset(np.zeros((4, 3, 2)), np.zeros(4))
        assert ds.n_features == 6


class TestGenerators:
    def test_blobs_shapes_and_labels(self):
        ds = make_gaussian_blobs(120, 6, 4, rng=0)
        assert ds.X.shape == (120, 6)
        assert set(np.unique(ds.y)) <= set(range(4))
        assert ds.n_classes == 4

    def test_blobs_reproducible(self):
        a = make_gaussian_blobs(30, 3, 2, rng=7)
        b = make_gaussian_blobs(30, 3, 2, rng=7)
        np.testing.assert_allclose(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_blobs_separation_controls_difficulty(self):
        near = make_gaussian_blobs(600, 8, 3, class_sep=0.2, rng=0)
        far = make_gaussian_blobs(600, 8, 3, class_sep=5.0, rng=0)
        # Nearest-centroid error should be much lower for well-separated data.
        def centroid_accuracy(ds):
            centers = np.stack([ds.X[ds.y == c].mean(axis=0) for c in range(3)])
            dists = ((ds.X[:, None, :] - centers[None]) ** 2).sum(axis=2)
            return (dists.argmin(axis=1) == ds.y).mean()

        assert centroid_accuracy(far) > centroid_accuracy(near) + 0.2

    def test_label_noise_flips_labels(self):
        clean = make_gaussian_blobs(500, 4, 5, label_noise=0.0, rng=3)
        noisy = make_gaussian_blobs(500, 4, 5, label_noise=0.5, rng=3)
        assert (clean.y != noisy.y).mean() > 0.2

    def test_invalid_label_noise(self):
        with pytest.raises(ValueError):
            make_gaussian_blobs(10, 2, 2, label_noise=1.0)

    def test_synth_cifar_variants(self):
        c10 = make_synth_cifar10(n_samples=200, rng=0)
        c100 = make_synth_cifar100(n_samples=300, rng=0)
        assert c10.n_classes == 10 and c100.n_classes == 100
        assert c10.name == "synth-cifar10"

    def test_spirals(self):
        ds = make_spirals(n_samples=300, n_classes=3, rng=0)
        assert ds.X.shape[1] == 2
        assert set(np.unique(ds.y)) == {0, 1, 2}

    def test_linear_regression_data(self):
        ds, w_star = make_linear_regression(n_samples=500, n_features=6, noise_std=0.0, rng=0)
        np.testing.assert_allclose(ds.y, ds.X @ w_star, atol=1e-10)


class TestPartitioning:
    def test_iid_partition_covers_all_samples_once(self):
        ds = make_gaussian_blobs(100, 4, 3, rng=0)
        part = partition_dataset(ds, 4, rng=0)
        all_idx = np.concatenate(part.worker_indices)
        assert len(all_idx) == 100
        assert len(np.unique(all_idx)) == 100
        assert part.n_workers == 4

    def test_iid_shard_sizes_balanced(self):
        ds = make_gaussian_blobs(103, 4, 3, rng=0)
        part = partition_dataset(ds, 4, rng=0)
        sizes = part.shard_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_shard_materialization(self):
        ds = make_gaussian_blobs(60, 4, 3, rng=0)
        part = partition_dataset(ds, 3, rng=0)
        shard = part.shard(1)
        assert len(shard) == 20

    def test_shard_out_of_range(self):
        ds = make_gaussian_blobs(30, 2, 2, rng=0)
        part = partition_dataset(ds, 3, rng=0)
        with pytest.raises(IndexError):
            part.shard(3)

    def test_label_skew_partition(self):
        ds = make_gaussian_blobs(400, 4, 8, rng=0)
        part = partition_dataset(ds, 4, strategy="label_skew", classes_per_worker=2, rng=0)
        all_idx = np.concatenate(part.worker_indices)
        assert len(np.unique(all_idx)) == 400
        # Each worker should be dominated by few classes.
        for w in range(4):
            labels = ds.y[part.worker_indices[w]]
            top2 = np.sort(np.bincount(labels, minlength=8))[-2:].sum()
            assert top2 / len(labels) > 0.8

    def test_label_skew_requires_classification(self):
        ds, _ = make_linear_regression(50, 4, rng=0)
        with pytest.raises(ValueError):
            partition_dataset(ds, 2, strategy="label_skew")

    def test_unknown_strategy(self):
        ds = make_gaussian_blobs(30, 2, 2, rng=0)
        with pytest.raises(ValueError):
            partition_dataset(ds, 2, strategy="zipf")

    def test_too_many_workers(self):
        ds = make_gaussian_blobs(3, 2, 2, rng=0)
        with pytest.raises(ValueError):
            partition_dataset(ds, 10)

    def test_reshuffle_keeps_coverage(self):
        ds = make_gaussian_blobs(80, 3, 2, rng=0)
        part = partition_dataset(ds, 4, rng=0)
        part2 = part.reshuffle(rng=1)
        assert part2.n_workers == 4
        assert len(np.unique(np.concatenate(part2.worker_indices))) == 80


class TestBatchLoader:
    def test_batch_shapes(self):
        ds = make_gaussian_blobs(50, 4, 3, rng=0)
        loader = BatchLoader(ds, batch_size=8, rng=0)
        X, y = loader.next_batch()
        assert X.shape == (8, 4) and y.shape == (8,)

    def test_cycles_and_counts_epochs(self):
        ds = make_gaussian_blobs(20, 2, 2, rng=0)
        loader = BatchLoader(ds, batch_size=8, rng=0)
        for _ in range(10):
            loader.next_batch()
        assert loader.epochs_completed >= 3

    def test_all_samples_seen_within_one_cycle(self):
        ds = make_gaussian_blobs(24, 2, 2, rng=0)
        loader = BatchLoader(ds, batch_size=6, rng=0, drop_last=True)
        seen = set()
        for _ in range(4):
            X, _ = loader.next_batch()
            for row in X:
                seen.add(tuple(np.round(row, 6)))
        assert len(seen) == 24

    def test_batch_larger_than_dataset_is_clamped(self):
        ds = make_gaussian_blobs(5, 2, 2, rng=0)
        loader = BatchLoader(ds, batch_size=50, rng=0)
        X, _ = loader.next_batch()
        assert X.shape[0] == 5

    def test_invalid_batch_size(self):
        ds = make_gaussian_blobs(5, 2, 2, rng=0)
        with pytest.raises(ValueError):
            BatchLoader(ds, batch_size=0)

    def test_iterator_protocol(self):
        ds = make_gaussian_blobs(16, 2, 2, rng=0)
        loader = BatchLoader(ds, batch_size=4, rng=0)
        X, y = next(iter(loader))
        assert X.shape == (4, 2)


@settings(max_examples=25, deadline=None)
@given(
    n_samples=st.integers(min_value=10, max_value=200),
    n_workers=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_iid_partition_is_exact_cover(n_samples, n_workers, seed):
    """Every sample appears in exactly one shard, for any sizes."""
    if n_samples < n_workers:
        return
    ds = make_gaussian_blobs(n_samples, 3, 2, rng=seed)
    part = partition_dataset(ds, n_workers, rng=seed)
    all_idx = np.sort(np.concatenate(part.worker_indices))
    np.testing.assert_array_equal(all_idx, np.arange(n_samples))
