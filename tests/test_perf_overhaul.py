"""Hot-path overhaul acceptance: kernel plan cache, float32 banks, pool reuse.

Three contracts from the perf PR, each checked at the byte level:

1. The cached im2col/col2im index plans are a pure memoization — a cache
   hit produces exactly the bytes a cold build does, across interleaved
   geometries and strides sharing one process-wide cache.
2. ``bank_dtype="float32"`` is opt-in reduced precision: the bank really
   stores float32, both bank backends agree byte-for-byte with each other,
   and the trajectory tracks the float64 reference within tolerance —
   while the float64 default stays byte-identical to the loop.
3. A :class:`BackendHandle` that carries one sharded pool across runs
   (the method-lineup/serial-sweep path) yields trajectories
   byte-identical to fresh-pool runs, and a pool can never be rebuilt
   into a different process count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.distributed import BackendHandle, SimulatedCluster
from repro.models.mlp import MLP
from repro.nn.layers import (
    _col2im,
    _im2col,
    clear_kernel_plan_cache,
    kernel_plan_cache_stats,
)
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator

from tests.conftest import EQUIVALENCE_FEATURES, _registry_model_fn

F, C = EQUIVALENCE_FEATURES, 4

#: Mixed conv geometries: (input shape, kernel, stride) spanning odd sizes,
#: stride > 1, and single-channel inputs — all sharing one plan cache.
GEOMETRIES = [
    ((2, 3, 8, 8), 3, 1),
    ((1, 2, 9, 9), 2, 2),
    ((3, 1, 7, 5), 3, 2),
    ((4, 4, 6, 6), 2, 1),
]


def _cluster(backend, model_fn, n_workers, **kwargs):
    ds = make_gaussian_blobs(
        n_samples=40 * n_workers, n_features=F, n_classes=C, class_sep=2.0, rng=3
    )
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=n_workers, rng=0
    )
    return SimulatedCluster(
        model_fn=model_fn,
        dataset=ds,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=0.05,
        momentum=0.9,
        weight_decay=1e-4,
        seed=17,
        backend=backend,
        n_shards=2,
        **kwargs,
    )


class TestKernelPlanCache:
    """Cache hits must reproduce cold-build bytes exactly."""

    def test_im2col_cache_hit_matches_cold_bytes_across_geometries(self):
        rng = np.random.default_rng(0)
        inputs = [rng.normal(size=shape) for shape, _, _ in GEOMETRIES]

        clear_kernel_plan_cache()
        cold = [
            _im2col(x, k, k, s) for x, (_, k, s) in zip(inputs, GEOMETRIES)
        ]
        stats = kernel_plan_cache_stats()
        assert stats["conv_plans"] == len(GEOMETRIES)
        assert stats["misses"] == len(GEOMETRIES) and stats["hits"] == 0

        # Interleaved warm passes: every geometry again, reversed order, so
        # each lookup hits a cache shared with three other live plans.
        for x, (shape, k, s), (cols, oh, ow) in zip(
            reversed(inputs), reversed(GEOMETRIES), reversed(cold)
        ):
            warm_cols, warm_oh, warm_ow = _im2col(x, k, k, s)
            assert (warm_oh, warm_ow) == (oh, ow)
            np.testing.assert_array_equal(warm_cols, cols)
        stats = kernel_plan_cache_stats()
        assert stats["hits"] == len(GEOMETRIES)
        assert stats["conv_plans"] == len(GEOMETRIES)  # no duplicate entries

    def test_col2im_cache_hit_matches_cold_bytes(self):
        rng = np.random.default_rng(1)
        for shape, k, s in GEOMETRIES:
            x = rng.normal(size=shape)
            clear_kernel_plan_cache()
            cols, _, _ = _im2col(x, k, k, s)
            g = rng.normal(size=cols.shape)
            cold = _col2im(g, shape, k, k, s)  # plan cached by the im2col above
            clear_kernel_plan_cache()
            rebuilt = _col2im(g, shape, k, k, s)  # cold plan, scatter path rebuilt
            np.testing.assert_array_equal(rebuilt, cold)
            np.testing.assert_array_equal(_col2im(g, shape, k, k, s), cold)

    def test_stride_variants_of_one_shape_get_distinct_plans(self):
        clear_kernel_plan_cache()
        x = np.random.default_rng(2).normal(size=(2, 3, 9, 9))
        cols_s1, oh1, _ = _im2col(x, 3, 3, 1)
        cols_s2, oh2, _ = _im2col(x, 3, 3, 2)
        assert kernel_plan_cache_stats()["conv_plans"] == 2
        assert oh1 == 7 and oh2 == 4
        assert cols_s1.shape != cols_s2.shape


class TestFloat32Banks:
    """Opt-in reduced precision: real float32 storage, parity in tolerance."""

    def test_vectorized_float32_tracks_float64_reference(self):
        model_fn = _registry_model_fn("mlp")
        ref = _cluster("loop", model_fn, 4)
        f32 = _cluster("vectorized", model_fn, 4, bank_dtype="float32")
        for _ in range(3):
            ref.run_round(5)
            f32.run_round(5)
        stored = next(iter(f32.backend.bank.params.values())).data
        assert stored.dtype == np.float32
        out = f32.synchronized_parameters
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, ref.synchronized_parameters, atol=1e-4)
        assert not np.array_equal(
            out.astype(np.float64), ref.synchronized_parameters
        ), "float32 run unexpectedly byte-identical — dtype knob not applied?"

    def test_sharded_float32_matches_vectorized_float32_exactly(self):
        model_fn = _registry_model_fn("mlp")
        vec = _cluster("vectorized", model_fn, 4, bank_dtype="float32")
        sh = _cluster("sharded", model_fn, 4, bank_dtype="float32")
        try:
            for _ in range(2):
                vec.run_round(4)
                sh.run_round(4)
            np.testing.assert_array_equal(
                vec.synchronized_parameters, sh.synchronized_parameters
            )
        finally:
            sh.close()

    def test_invalid_bank_dtype_rejected_by_config(self):
        from repro.experiments.configs import make_config

        with pytest.raises(ValueError, match="bank_dtype"):
            make_config("smoke", bank_dtype="float16").validate()


class TestBackendHandleReuse:
    """One pool across runs must not change a single byte."""

    def _run(self, backend, m=4, rounds=2):
        cluster = _cluster(backend, _registry_model_fn("mlp"), m)
        try:
            losses = [cluster.run_round(3) for _ in range(rounds)]
            params = cluster.synchronized_parameters
        finally:
            cluster.close()
        return losses, params

    def test_reused_pool_matches_fresh_pools_bytes(self):
        fresh_a = self._run("sharded")
        fresh_b = self._run("sharded", m=6)
        with BackendHandle("sharded", n_shards=2) as handle:
            reused_a = self._run(handle)
            pool = handle._pool
            assert pool is not None and not pool._closed, (
                "cluster.close() must not close a handle-owned pool"
            )
            # Worker count changes; the 2-process pool is rebuilt in place.
            reused_b = self._run(handle, m=6)
            assert handle._pool is pool, "pool respawned instead of reused"
        assert pool._closed, "handle exit must release the pool"

        for (fresh, reused) in ((fresh_a, reused_a), (fresh_b, reused_b)):
            assert fresh[0] == reused[0]
            np.testing.assert_array_equal(fresh[1], reused[1])

    def test_rebuild_refuses_shard_count_change(self):
        cluster = _cluster("sharded", _registry_model_fn("mlp"), 4)
        try:
            backend = cluster.backend
            ds = make_gaussian_blobs(n_samples=32, n_features=F, n_classes=C, rng=5)
            with pytest.raises(ValueError, match="cannot rebuild"):
                backend.rebuild(
                    _registry_model_fn("mlp"), [ds] * 4, n_shards=4
                )
        finally:
            cluster.close()

    def test_handle_spawns_fresh_pool_when_shard_count_differs(self):
        # m=4 over n_shards=2 needs a 2-process pool; m=1 clamps to a single
        # shard, so the handle must retire the old pool and spawn a new one
        # (pools cannot grow or shrink processes).
        with BackendHandle("sharded", n_shards=2) as handle:
            self._run(handle)
            first = handle._pool
            assert first is not None and first.pool_size == 2
            self._run(handle, m=1, rounds=1)
            assert handle._pool is not first, "mismatched pool must be retired"
            assert first._closed
            assert handle._pool.pool_size == 1


def _load_ratchet_module():
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / "benchmarks" / "check_perf_ratchet.py"
    spec = importlib.util.spec_from_file_location("check_perf_ratchet", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_payload(rows):
    return {
        "results": [
            {"model": m, "n_workers": n, "speedup": s, "sharded_speedup": ss}
            for (m, n, s, ss) in rows
        ]
    }


class TestPerfRatchet:
    """The CI ratchet comparison: generous floor, best-of-retries, no silent rows."""

    def test_within_tolerance_passes(self, capsys):
        ratchet = _load_ratchet_module()
        baseline = _bench_payload([("mlp", 4, 3.0, 1.4)])
        fresh = _bench_payload([("mlp", 4, 2.2, 1.0)])  # >= committed * 0.7
        assert ratchet.regressions(baseline, [fresh]) == []
        assert "ok " in capsys.readouterr().out

    def test_reproduced_regression_fails_with_named_row(self):
        ratchet = _load_ratchet_module()
        baseline = _bench_payload([("cnn", 8, 4.0, 2.0)])
        fresh = _bench_payload([("cnn", 8, 2.0, 1.9)])  # speedup below 4.0 * 0.7
        failures = ratchet.regressions(baseline, [fresh, fresh])
        assert len(failures) == 1
        assert "cnn m=8 speedup" in failures[0]

    def test_retry_takes_best_ratio_per_row_and_field(self):
        ratchet = _load_ratchet_module()
        baseline = _bench_payload([("mlp", 4, 3.0, 1.4), ("cnn", 8, 4.0, 2.0)])
        noisy = _bench_payload([("mlp", 4, 1.8, 1.5), ("cnn", 8, 3.9, 0.9)])
        retry = _bench_payload([("mlp", 4, 2.9, 0.9), ("cnn", 8, 3.0, 1.9)])
        # Each row/field keeps its best sample, so one noisy run per row passes.
        assert ratchet.regressions(baseline, [noisy, retry]) == []
        # Either run alone would have failed.
        assert ratchet.regressions(baseline, [noisy])
        assert ratchet.regressions(baseline, [retry])

    def test_dropped_row_is_a_failure(self):
        ratchet = _load_ratchet_module()
        baseline = _bench_payload([("mlp", 4, 3.0, 1.4), ("mlp", 8, 4.0, 2.0)])
        fresh = _bench_payload([("mlp", 4, 3.0, 1.4)])
        failures = ratchet.regressions(baseline, [fresh])
        assert failures == ["benchmark dropped the ('mlp', 8) row"]


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
