"""Tests for the PASGD trainer (repro.core.trainer)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.adacomm import AdaCommConfig
from repro.core.schedules import (
    AdaCommSchedule,
    FixedCommunicationSchedule,
    SequenceCommunicationSchedule,
)
from repro.core.trainer import PASGDTrainer, TrainerConfig
from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective
from repro.distributed.cluster import SimulatedCluster
from repro.optim.lr_schedules import TauGatedStepLR
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator


def make_cluster(tiny_dataset, tiny_model_fn, alpha=2.0, n_workers=4, lr=0.2):
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(alpha, "constant"), n_workers=n_workers, rng=0
    )
    return SimulatedCluster(
        model_fn=tiny_model_fn,
        dataset=tiny_dataset,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=lr,
        seed=0,
    )


class TestTrainerConfig:
    def test_requires_some_budget(self):
        with pytest.raises(ValueError):
            TrainerConfig()
        TrainerConfig(max_wall_time=10.0)
        TrainerConfig(max_iterations=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(max_wall_time=-1.0)
        with pytest.raises(ValueError):
            TrainerConfig(max_iterations=10, eval_every_rounds=0)
        with pytest.raises(ValueError):
            TrainerConfig(max_iterations=10, eval_fraction=0.0)


class TestFixedScheduleTraining:
    def test_respects_wall_time_budget(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        trainer = PASGDTrainer(
            cluster,
            FixedCommunicationSchedule(4),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_wall_time=50.0),
        )
        record = trainer.train()
        # The budget may be overshot by at most one round (4 compute + 2 comm).
        assert record.points[-1].wall_time <= 50.0 + 6.0 + 1e-9
        assert record.points[-2].wall_time < 50.0

    def test_respects_iteration_budget(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        trainer = PASGDTrainer(
            cluster,
            FixedCommunicationSchedule(5),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_iterations=23),
        )
        record = trainer.train()
        assert 23 <= record.points[-1].iteration <= 23 + 5

    def test_loss_decreases(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        trainer = PASGDTrainer(
            cluster,
            FixedCommunicationSchedule(4),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            test_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_iterations=120),
        )
        record = trainer.train()
        assert record.final_loss() < 0.7 * record.points[0].train_loss
        assert record.best_accuracy() > 0.5

    def test_metric_points_monotone_and_tagged(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        trainer = PASGDTrainer(
            cluster,
            FixedCommunicationSchedule(3),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_iterations=30),
        )
        record = trainer.train()
        times = record.wall_times
        assert times == sorted(times)
        assert all(p.tau == 3 for p in record.points)
        assert record.config["schedule"] == "pasgd-tau3"

    def test_sync_sgd_has_higher_per_iteration_cost(self, tiny_dataset, tiny_model_fn):
        sync = PASGDTrainer(
            make_cluster(tiny_dataset, tiny_model_fn),
            FixedCommunicationSchedule(1),
            config=TrainerConfig(max_iterations=20),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
        ).train()
        pasgd = PASGDTrainer(
            make_cluster(tiny_dataset, tiny_model_fn),
            FixedCommunicationSchedule(10),
            config=TrainerConfig(max_iterations=20),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
        ).train()
        # Same number of local iterations, but sync pays communication every step:
        # with Y=1, D=2 → sync ≈ 3 s/iter vs PASGD(10) ≈ 1.2 s/iter.
        assert sync.points[-1].wall_time > 2.0 * pasgd.points[-1].wall_time

    def test_eval_every_rounds_controls_accuracy_sampling(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        trainer = PASGDTrainer(
            cluster,
            FixedCommunicationSchedule(2),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            test_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_iterations=20, eval_every_rounds=5),
        )
        record = trainer.train()
        acc_evals = [p for p in record.points[1:] if not math.isnan(p.test_accuracy)]
        assert 1 <= len(acc_evals) <= 2


class TestSequenceAndAdaptiveTraining:
    def test_sequence_schedule_taus_recorded(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        trainer = PASGDTrainer(
            cluster,
            SequenceCommunicationSchedule([8, 4, 2, 1]),
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_iterations=15),
        )
        record = trainer.train()
        assert [p.tau for p in record.points[1:]] == [8, 4, 2, 1]

    def test_adacomm_tau_decreases_over_training(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        schedule = AdaCommSchedule(
            AdaCommConfig(initial_tau=8, interval_length=20.0, couple_lr=False)
        )
        trainer = PASGDTrainer(
            cluster,
            schedule,
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_wall_time=150.0),
        )
        record = trainer.train()
        taus = [p.tau for p in record.points[1:]]
        assert taus[0] == 8
        assert taus[-1] < 8  # the controller reduced the period as the loss fell
        assert min(taus) >= 1

    def test_tau_gated_lr_schedule_interacts_with_adacomm(self, tiny_dataset, tiny_model_fn):
        cluster = make_cluster(tiny_dataset, tiny_model_fn)
        schedule = AdaCommSchedule(
            AdaCommConfig(initial_tau=6, interval_length=15.0, couple_lr=True)
        )
        lr_schedule = TauGatedStepLR(lr=0.2, milestones=(0.5,), gamma=0.1)
        trainer = PASGDTrainer(
            cluster,
            schedule,
            lr_schedule=lr_schedule,
            train_eval_data=(tiny_dataset.X, tiny_dataset.y),
            config=TrainerConfig(max_wall_time=200.0, iterations_per_epoch=10),
        )
        record = trainer.train()
        lrs = [p.lr for p in record.points[1:]]
        # The decay may only ever fire after τ has reached 1.
        for p in record.points[1:]:
            if p.lr < 0.2:
                assert p.tau == 1
        assert lrs[0] == 0.2

    def test_quadratic_problem_with_loss_fn(self):
        objective = QuadraticObjective.random(dim=8, rng=0, noise_std=0.05)

        def model_fn():
            return NoisyQuadraticProblem(objective, x0=np.full(8, 3.0), rng=0)

        runtime = RuntimeSimulator(ConstantDelay(1.0), NetworkModel(1.0, "constant"), 4, rng=0)
        cluster = SimulatedCluster(model_fn, None, runtime, n_workers=4, lr=0.1, seed=0)
        trainer = PASGDTrainer(
            cluster,
            FixedCommunicationSchedule(5),
            loss_fn=lambda model: model.current_value(),
            config=TrainerConfig(max_iterations=300),
        )
        record = trainer.train()
        assert record.final_loss() < 0.1 * record.points[0].train_loss
