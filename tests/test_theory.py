"""Tests for the theoretical results (repro.core.theory): Theorems 1–3."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    TheoreticalConstants,
    adacomm_convergence_conditions,
    error_iteration_bound,
    error_runtime_bound,
    learning_rate_condition,
    optimal_communication_period,
    variable_tau_bound,
)


@pytest.fixture
def constants() -> TheoreticalConstants:
    """The constants used for the paper's Figure 6: F(x1)=1, Finf=0, L=1, σ²=1."""
    return TheoreticalConstants(
        initial_gap=1.0,
        lipschitz=1.0,
        gradient_variance=1.0,
        n_workers=16,
        compute_time=1.0,
        communication_delay=1.0,
    )


class TestConstants:
    def test_validation(self):
        with pytest.raises(ValueError):
            TheoreticalConstants(-1.0, 1.0, 1.0, 4)
        with pytest.raises(ValueError):
            TheoreticalConstants(1.0, 0.0, 1.0, 4)
        with pytest.raises(ValueError):
            TheoreticalConstants(1.0, 1.0, -1.0, 4)
        with pytest.raises(ValueError):
            TheoreticalConstants(1.0, 1.0, 1.0, 0)
        with pytest.raises(ValueError):
            TheoreticalConstants(1.0, 1.0, 1.0, 4, compute_time=0.0)


class TestLearningRateCondition:
    def test_small_lr_satisfies(self):
        assert learning_rate_condition(0.01, lipschitz=1.0, tau=10)

    def test_large_lr_with_large_tau_fails(self):
        assert not learning_rate_condition(0.5, lipschitz=1.0, tau=100)

    def test_tau_one_reduces_to_eta_l(self):
        assert learning_rate_condition(1.0, lipschitz=1.0, tau=1)
        assert not learning_rate_condition(1.1, lipschitz=1.0, tau=1)


class TestErrorBounds:
    def test_iteration_bound_components(self, constants):
        # With τ=1 the local-update noise term vanishes.
        b1 = error_iteration_bound(constants, lr=0.1, tau=1, n_iterations=100)
        expected = 2 * 1.0 / (0.1 * 100) + 0.1 * 1.0 * 1.0 / 16
        assert b1 == pytest.approx(expected)

    def test_iteration_bound_increases_with_tau(self, constants):
        b1 = error_iteration_bound(constants, lr=0.1, tau=1, n_iterations=1000)
        b10 = error_iteration_bound(constants, lr=0.1, tau=10, n_iterations=1000)
        assert b10 > b1

    def test_runtime_bound_eq13_value(self, constants):
        # Direct evaluation of eq. 13.
        lr, tau, T = 0.08, 10, 1000.0
        runtime_per_iter = 1.0 + 1.0 / tau
        expected = (
            2 * 1.0 / (lr * T) * runtime_per_iter + lr * 1.0 / 16 + lr**2 * 1.0 * (tau - 1)
        )
        assert error_runtime_bound(constants, lr, tau, T) == pytest.approx(expected)

    def test_runtime_bound_tradeoff_shape(self, constants):
        """Early in training large τ wins (throughput), late τ=1 wins (low floor).

        This is exactly Figure 6: the τ=10 bound starts below the τ=1 bound and
        crosses above it as T grows.
        """
        early_sync = error_runtime_bound(constants, 0.08, 1, wall_time=50.0)
        early_pasgd = error_runtime_bound(constants, 0.08, 10, wall_time=50.0)
        late_sync = error_runtime_bound(constants, 0.08, 1, wall_time=50000.0)
        late_pasgd = error_runtime_bound(constants, 0.08, 10, wall_time=50000.0)
        assert early_pasgd < early_sync
        assert late_pasgd > late_sync

    def test_runtime_bound_decreases_with_time(self, constants):
        bounds = [error_runtime_bound(constants, 0.08, 10, t) for t in (10, 100, 1000)]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_validation(self, constants):
        with pytest.raises(ValueError):
            error_runtime_bound(constants, lr=0.0, tau=1, wall_time=10)
        with pytest.raises(ValueError):
            error_runtime_bound(constants, lr=0.1, tau=0, wall_time=10)
        with pytest.raises(ValueError):
            error_runtime_bound(constants, lr=0.1, tau=1, wall_time=0)
        with pytest.raises(ValueError):
            error_iteration_bound(constants, lr=0.1, tau=1, n_iterations=0)


class TestOptimalTau:
    def test_formula_eq14(self, constants):
        lr, T = 0.08, 1000.0
        expected = math.sqrt(2 * 1.0 * 1.0 / (lr**3 * 1.0 * 1.0 * T))
        assert optimal_communication_period(constants, lr, T) == pytest.approx(expected)

    def test_minimizes_the_bound(self, constants):
        """τ* from Theorem 2 must (approximately) minimize the eq. 13 bound over τ."""
        lr, T = 0.05, 500.0
        tau_star = optimal_communication_period(constants, lr, T)
        taus = np.linspace(max(1.0, tau_star / 4), tau_star * 4, 400)
        bounds = [error_runtime_bound(constants, lr, t, T) for t in taus]
        best_tau = taus[int(np.argmin(bounds))]
        assert best_tau == pytest.approx(tau_star, rel=0.05)

    def test_decreases_with_time(self, constants):
        # τ* ∝ 1/sqrt(T): later intervals (restarted at a lower loss) need smaller τ.
        t1 = optimal_communication_period(constants, 0.08, 100.0)
        t2 = optimal_communication_period(constants, 0.08, 400.0)
        assert t2 == pytest.approx(t1 / 2)

    def test_increases_with_communication_delay(self, constants):
        slow_net = TheoreticalConstants(1.0, 1.0, 1.0, 16, 1.0, communication_delay=4.0)
        assert optimal_communication_period(slow_net, 0.08, 100.0) == pytest.approx(
            2 * optimal_communication_period(constants, 0.08, 100.0)
        )

    def test_clip_to_int(self, constants):
        val = optimal_communication_period(constants, 0.08, 1e9, clip_to_int=True)
        assert val == 1.0

    def test_zero_delay_gives_tau_one(self):
        c = TheoreticalConstants(1.0, 1.0, 1.0, 4, 1.0, communication_delay=0.0)
        assert optimal_communication_period(c, 0.1, 100.0) == 1.0

    def test_zero_variance_raises(self):
        c = TheoreticalConstants(1.0, 1.0, 0.0, 4)
        with pytest.raises(ValueError):
            optimal_communication_period(c, 0.1, 100.0)


class TestVariableTauResults:
    def test_convergence_conditions_sums(self):
        out = adacomm_convergence_conditions([0.1, 0.1], [4, 2])
        assert out["sum_lr_tau"] == pytest.approx(0.6)
        assert out["sum_lr2_tau"] == pytest.approx(0.06)
        assert out["sum_lr3_tau2"] == pytest.approx(0.001 * 16 + 0.001 * 4)

    def test_decreasing_tau_shrinks_higher_order_sums(self):
        lrs = [0.1] * 10
        decreasing = adacomm_convergence_conditions(lrs, list(range(10, 0, -1)))
        constant = adacomm_convergence_conditions(lrs, [10] * 10)
        assert decreasing["sum_lr3_tau2"] < constant["sum_lr3_tau2"]
        assert decreasing["sum_lr_tau"] < constant["sum_lr_tau"]

    def test_conditions_validation(self):
        with pytest.raises(ValueError):
            adacomm_convergence_conditions([0.1], [1, 2])
        with pytest.raises(ValueError):
            adacomm_convergence_conditions([0.0], [1])
        with pytest.raises(ValueError):
            adacomm_convergence_conditions([0.1], [0])

    def test_variable_tau_bound_constant_sequence_matches_lemma(self, constants):
        """For a constant τ sequence, eq. 66 must coincide with the fixed-τ bound."""
        taus = [5] * 20
        total_iters = sum(taus)
        from_variable = variable_tau_bound(constants, 0.05, taus)
        from_fixed = error_iteration_bound(constants, 0.05, 5, total_iters)
        assert from_variable == pytest.approx(from_fixed)

    def test_variable_tau_bound_decreasing_better_than_constant_mean(self, constants):
        """A decreasing τ sequence has a smaller Σ τ²/Σ τ term than a constant one
        with the same total number of iterations and the same largest τ."""
        decreasing = list(range(20, 0, -1))  # total 210
        constant = [20] * 10 + [1] * 10  # same total 210, same max, but bursty
        b_dec = variable_tau_bound(constants, 0.05, decreasing)
        b_const = variable_tau_bound(constants, 0.05, constant)
        assert b_dec < b_const

    def test_variable_tau_bound_validation(self, constants):
        with pytest.raises(ValueError):
            variable_tau_bound(constants, 0.05, [])
        with pytest.raises(ValueError):
            variable_tau_bound(constants, 0.05, [0])


@settings(max_examples=40, deadline=None)
@given(
    lr=st.floats(min_value=1e-3, max_value=0.5),
    tau=st.integers(min_value=1, max_value=200),
    wall_time=st.floats(min_value=1.0, max_value=1e5),
    gap=st.floats(min_value=0.01, max_value=50.0),
    sigma2=st.floats(min_value=0.01, max_value=10.0),
)
def test_property_runtime_bound_positive_and_monotone_in_gap(lr, tau, wall_time, gap, sigma2):
    """The eq. 13 bound is positive and non-decreasing in the initial gap."""
    c1 = TheoreticalConstants(gap, 1.0, sigma2, 8, 1.0, 1.0)
    c2 = TheoreticalConstants(gap * 2, 1.0, sigma2, 8, 1.0, 1.0)
    b1 = error_runtime_bound(c1, lr, tau, wall_time)
    b2 = error_runtime_bound(c2, lr, tau, wall_time)
    assert b1 > 0
    assert b2 >= b1


@settings(max_examples=40, deadline=None)
@given(
    lr=st.floats(min_value=1e-3, max_value=0.5),
    wall_time=st.floats(min_value=1.0, max_value=1e5),
    delay=st.floats(min_value=0.01, max_value=20.0),
)
def test_property_optimal_tau_is_stationary_point(lr, wall_time, delay):
    """Perturbing τ* in either direction never decreases the eq. 13 bound."""
    c = TheoreticalConstants(1.0, 1.0, 1.0, 8, 1.0, delay)
    tau_star = optimal_communication_period(c, lr, wall_time)
    if tau_star < 1.0:  # continuous minimizer below the feasible region
        return
    b_star = error_runtime_bound(c, lr, tau_star, wall_time)
    assert error_runtime_bound(c, lr, tau_star * 1.05, wall_time) >= b_star - 1e-12
    if tau_star * 0.95 >= 1.0:
        assert error_runtime_bound(c, lr, tau_star * 0.95, wall_time) >= b_star - 1e-12
