"""Tests for utilities: seeding, results, logging."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.utils.logging import get_logger
from repro.utils.results import MetricPoint, RunRecord, RunStore
from repro.utils.seeding import SeedSequence, check_random_state, set_global_seed


class TestSeeding:
    def test_check_random_state_int(self):
        a = check_random_state(3).normal(size=4)
        b = check_random_state(3).normal(size=4)
        np.testing.assert_allclose(a, b)

    def test_check_random_state_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_check_random_state_none(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_check_random_state_rejects_strings(self):
        with pytest.raises(TypeError):
            check_random_state("seed")

    def test_seed_sequence_children_distinct_and_reproducible(self):
        a = SeedSequence(10)
        b = SeedSequence(10)
        children_a = [a.spawn() for _ in range(20)]
        children_b = [b.spawn() for _ in range(20)]
        assert children_a == children_b
        assert len(set(children_a)) == 20

    def test_seed_sequence_generator(self):
        seq = SeedSequence(1)
        g = seq.generator()
        assert isinstance(g, np.random.Generator)

    def test_set_global_seed(self):
        set_global_seed(5)
        a = np.random.rand(3)
        set_global_seed(5)
        np.testing.assert_allclose(a, np.random.rand(3))


class TestRunRecord:
    def _record(self):
        rec = RunRecord(name="test", config={"tau": 5})
        for i, (t, loss, acc) in enumerate([(0.0, 2.0, 0.2), (1.0, 1.0, 0.5), (2.0, 0.5, 0.8)]):
            rec.log(MetricPoint(iteration=i * 10, wall_time=t, train_loss=loss, test_accuracy=acc, tau=5))
        return rec

    def test_column_accessors(self):
        rec = self._record()
        assert rec.iterations == [0, 10, 20]
        assert rec.wall_times == [0.0, 1.0, 2.0]
        assert rec.train_losses == [2.0, 1.0, 0.5]
        assert rec.taus == [5, 5, 5]

    def test_monotonicity_enforced(self):
        rec = self._record()
        with pytest.raises(ValueError):
            rec.log(MetricPoint(iteration=5, wall_time=3.0, train_loss=0.1))
        with pytest.raises(ValueError):
            rec.log(MetricPoint(iteration=30, wall_time=1.0, train_loss=0.1))

    def test_final_and_best_loss(self):
        rec = self._record()
        assert rec.final_loss() == 0.5
        assert rec.best_loss() == 0.5

    def test_best_accuracy_with_budget(self):
        rec = self._record()
        assert rec.best_accuracy() == 0.8
        assert rec.best_accuracy(time_budget=1.5) == 0.5

    def test_time_to_loss(self):
        rec = self._record()
        assert rec.time_to_loss(1.5) == 1.0
        assert rec.time_to_loss(0.5) == 2.0
        assert rec.time_to_loss(0.01) == math.inf

    def test_iterations_to_loss(self):
        rec = self._record()
        assert rec.iterations_to_loss(1.0) == 10

    def test_loss_at_time(self):
        rec = self._record()
        assert rec.loss_at_time(1.5) == 1.0
        assert math.isnan(rec.loss_at_time(-1.0))

    def test_empty_record_raises(self):
        with pytest.raises(ValueError):
            RunRecord("empty").final_loss()

    def test_dict_roundtrip(self):
        rec = self._record()
        clone = RunRecord.from_dict(rec.to_dict())
        assert clone.name == rec.name
        assert clone.train_losses == rec.train_losses
        assert clone.config == rec.config


class TestRunStore:
    def _store(self):
        fast = RunRecord("fast")
        slow = RunRecord("slow")
        for t in range(5):
            fast.log(MetricPoint(iteration=t, wall_time=float(t), train_loss=2.0 - 0.4 * t))
            slow.log(MetricPoint(iteration=t, wall_time=float(2 * t), train_loss=2.0 - 0.4 * t))
        return RunStore.from_records([fast, slow])

    def test_add_get_contains(self):
        store = self._store()
        assert "fast" in store and len(store) == 2
        assert store.get("fast").name == "fast"

    def test_duplicate_name_rejected(self):
        store = self._store()
        with pytest.raises(KeyError):
            store.add(RunRecord("fast"))

    def test_speedup(self):
        store = self._store()
        assert store.speedup("fast", "slow", target_loss=0.5) == pytest.approx(2.0)

    def test_speedup_nan_when_unreachable(self):
        store = self._store()
        assert math.isnan(store.speedup("fast", "slow", target_loss=-1.0))

    def test_save_and_load(self, tmp_path):
        store = self._store()
        path = tmp_path / "runs.json"
        store.save(path)
        loaded = RunStore.load(path)
        assert sorted(loaded.names()) == ["fast", "slow"]
        assert loaded.get("fast").final_loss() == store.get("fast").final_loss()

    def test_saved_json_is_rfc8259_even_with_nonfinite_values(self, tmp_path):
        # A diverged run logs inf/NaN losses and the nan test-accuracy
        # sentinel; the saved file must still parse under a strict RFC 8259
        # reader (json.dumps's permissive default would write bare
        # NaN/Infinity tokens no other tool accepts) and the values must
        # survive the round trip exactly.
        diverged = RunRecord("diverged")
        diverged.log(MetricPoint(iteration=0, wall_time=0.0, train_loss=2.0))
        diverged.log(
            MetricPoint(iteration=10, wall_time=1.0, train_loss=math.inf,
                        extra={"grad_norm": -math.inf})
        )
        diverged.log(MetricPoint(iteration=20, wall_time=2.0, train_loss=math.nan))
        path = tmp_path / "runs.json"
        RunStore.from_records([diverged]).save(path)

        def reject_constant(token):
            raise AssertionError(f"non-RFC-8259 token {token!r} in saved JSON")

        json.loads(path.read_text(), parse_constant=reject_constant)

        rec = RunStore.load(path).get("diverged")
        assert rec.points[1].train_loss == math.inf
        assert rec.points[1].extra["grad_norm"] == -math.inf
        assert math.isnan(rec.points[2].train_loss)
        assert math.isnan(rec.points[2].test_accuracy)
        assert rec.points[0].train_loss == 2.0

    def test_sentinel_encode_decode_are_symmetric(self):
        from repro.utils.results import decode_json_floats, encode_json_floats

        payload = {
            "a": [1.0, math.inf, -math.inf, math.nan],
            "b": {"c": "Infinity", "d": "plain string"},
        }
        encoded = encode_json_floats(payload)
        assert encoded["a"][1:] == ["Infinity", "-Infinity", "NaN"]
        decoded = decode_json_floats(encoded)
        assert decoded["a"][:3] == [1.0, math.inf, -math.inf]
        assert math.isnan(decoded["a"][3])
        # Strings that *look* like sentinels decode to floats by design —
        # the mapping is symmetric, so a decode of an encode is lossless for
        # numeric data, and "plain string" passes through untouched.
        assert decoded["b"]["c"] == math.inf
        assert decoded["b"]["d"] == "plain string"


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"
