"""Tests for the experiment harness (repro.experiments)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.configs import available_configs, make_config
from repro.experiments.figures import (
    comm_comp_breakdown,
    loss_vs_time_series,
    summarize_series,
    tau_vs_time_series,
)
from repro.experiments.harness import MethodSpec, default_methods, run_experiment, run_method
from repro.experiments.tables import (
    accuracy_table,
    format_table,
    speedup_table,
    time_to_loss_table,
)
from repro.core.schedules import FixedCommunicationSchedule
from repro.utils.results import MetricPoint, RunRecord, RunStore


class TestConfigs:
    def test_all_named_configs_build(self):
        for name in available_configs():
            cfg = make_config(name)
            assert cfg.name == name
            assert cfg.n_workers >= 1
            assert cfg.communication_delay == pytest.approx(cfg.alpha * cfg.compute_time)

    def test_vgg_is_communication_heavy_resnet_is_not(self):
        vgg = make_config("vgg_cifar10_fixed_lr")
        resnet = make_config("resnet_cifar10_fixed_lr")
        assert vgg.alpha > 1.0 > resnet.alpha

    def test_unknown_config(self):
        with pytest.raises(ValueError):
            make_config("alexnet_imagenet")

    def test_overrides(self):
        cfg = make_config("smoke", n_workers=3, lr=0.05)
        assert cfg.n_workers == 3 and cfg.lr == 0.05

    def test_scale_shrinks_budget(self):
        base = make_config("smoke")
        scaled = make_config("smoke", scale=0.5)
        assert scaled.wall_time_budget == pytest.approx(0.5 * base.wall_time_budget)
        assert scaled.adacomm_interval == pytest.approx(0.5 * base.adacomm_interval)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            make_config("smoke", scale=0.0)

    def test_build_dataset_respects_sizes(self):
        cfg = make_config("smoke")
        ds = cfg.build_dataset(rng=0)
        assert len(ds) == cfg.n_train + cfg.n_test
        assert ds.X.shape[1] == cfg.n_features

    def test_with_overrides_returns_new_object(self):
        cfg = make_config("smoke")
        other = cfg.with_overrides(lr=0.9)
        assert cfg.lr != 0.9 and other.lr == 0.9


class TestHarness:
    def test_default_methods_include_baselines_and_adacomm(self):
        cfg = make_config("vgg_cifar10_fixed_lr")
        labels = [m.label for m in default_methods(cfg)]
        assert "sync-sgd" in labels
        assert "adacomm" in labels
        assert any(label.startswith("pasgd-tau") for label in labels)

    def test_run_method_returns_record_with_breakdown(self):
        cfg = make_config("smoke")
        method = MethodSpec("sync-sgd", lambda: FixedCommunicationSchedule(1))
        record = run_method(cfg, method)
        assert record.name == "sync-sgd"
        assert record.config["experiment"] == "smoke"
        breakdown = record.config["event_breakdown"]
        assert breakdown["total_time"] > 0
        assert breakdown["communication_rounds"] >= 1

    def test_run_experiment_collects_all_methods(self):
        cfg = make_config("smoke")
        store = run_experiment(cfg)
        assert set(store.names()) == {"sync-sgd", "pasgd-tau8", "adacomm"}
        for record in store:
            assert record.final_loss() < record.points[0].train_loss

    def test_run_experiment_is_reproducible(self):
        cfg = make_config("smoke")
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        np.testing.assert_allclose(
            a.get("sync-sgd").train_losses, b.get("sync-sgd").train_losses
        )

    def test_seed_changes_trajectory(self):
        a = run_experiment(make_config("smoke"))
        b = run_experiment(make_config("smoke", seed=1234))
        assert not np.allclose(
            a.get("sync-sgd").train_losses[-3:], b.get("sync-sgd").train_losses[-3:]
        )

    def test_block_momentum_config_runs(self):
        cfg = make_config("smoke", block_momentum_beta=0.3, momentum=0.9)
        method = MethodSpec("pasgd-tau8", lambda: FixedCommunicationSchedule(8))
        record = run_method(cfg, method)
        assert math.isfinite(record.final_loss())

    def test_variable_lr_config_runs(self):
        cfg = make_config("smoke", variable_lr=True, lr_decay_milestones=(1.0,))
        method = MethodSpec("sync-sgd", lambda: FixedCommunicationSchedule(1))
        record = run_method(cfg, method)
        assert min(p.lr for p in record.points[1:]) <= cfg.lr


class TestTables:
    def _store(self):
        fast = RunRecord("adacomm")
        slow = RunRecord("sync-sgd")
        for t in range(6):
            fast.log(
                MetricPoint(iteration=t, wall_time=float(t), train_loss=2.0 / (t + 1), test_accuracy=0.5 + 0.05 * t)
            )
            slow.log(
                MetricPoint(iteration=t, wall_time=float(3 * t), train_loss=2.0 / (t + 1), test_accuracy=0.4 + 0.05 * t)
            )
        return RunStore.from_records([fast, slow])

    def test_format_table_alignment_and_title(self):
        text = format_table(["method", "value"], [["a", 1.0], ["bbbb", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "method" in lines[1] and "-+-" in lines[2]
        assert len(lines) == 5

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_accuracy_table(self):
        rows = accuracy_table(self._store())
        by_name = {r[0]: r[1] for r in rows}
        assert by_name["adacomm"] == pytest.approx(75.0)
        assert by_name["sync-sgd"] == pytest.approx(65.0)

    def test_accuracy_table_with_budget(self):
        rows = accuracy_table(self._store(), time_budget=3.0)
        by_name = {r[0]: r[1] for r in rows}
        assert by_name["sync-sgd"] == pytest.approx(45.0)

    def test_time_to_loss_table(self):
        rows = time_to_loss_table(self._store(), target_loss=0.5)
        by_name = {r[0]: r[1] for r in rows}
        assert by_name["adacomm"] == 3.0
        assert by_name["sync-sgd"] == 9.0

    def test_speedup_table(self):
        rows = speedup_table(self._store(), baseline="sync-sgd", target_loss=0.5)
        by_name = {r[0]: r[1] for r in rows}
        assert by_name["adacomm"] == pytest.approx(3.0)
        assert by_name["sync-sgd"] == pytest.approx(1.0)

    def test_speedup_table_unknown_baseline(self):
        with pytest.raises(KeyError):
            speedup_table(self._store(), baseline="nope", target_loss=0.5)


class TestFigures:
    def test_loss_and_tau_series(self):
        rec = RunRecord("r")
        rec.log(MetricPoint(iteration=0, wall_time=0.0, train_loss=2.0, tau=8))
        rec.log(MetricPoint(iteration=5, wall_time=1.0, train_loss=1.0, tau=4))
        assert loss_vs_time_series(rec) == [(0.0, 2.0), (1.0, 1.0)]
        assert tau_vs_time_series(rec) == [(0.0, 8), (1.0, 4)]

    def test_loss_series_drops_inf(self):
        rec = RunRecord("r")
        rec.log(MetricPoint(iteration=0, wall_time=0.0, train_loss=float("inf")))
        rec.log(MetricPoint(iteration=1, wall_time=1.0, train_loss=1.0))
        assert loss_vs_time_series(rec) == [(1.0, 1.0)]

    def test_comm_comp_breakdown_requires_config(self):
        rec = RunRecord("r")
        with pytest.raises(KeyError):
            comm_comp_breakdown(rec)
        rec.config["event_breakdown"] = {"compute_time": 1.0}
        assert comm_comp_breakdown(rec)["compute_time"] == 1.0

    def test_summarize_series(self):
        series = [(float(i), float(i)) for i in range(100)]
        short = summarize_series(series, n_points=5)
        assert len(short) == 5
        assert short[0] == (0.0, 0.0) and short[-1] == (99.0, 99.0)
        assert summarize_series(series[:3], n_points=10) == series[:3]
        with pytest.raises(ValueError):
            summarize_series(series, n_points=1)
