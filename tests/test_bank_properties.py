"""Property-based (hypothesis) tests for the conv/pool param-bank paths.

The example-based suites pin a handful of geometries; these properties
randomize the whole input space — worker counts, batch sizes, channel
counts, kernel sizes, strides, padding, and image sizes — and demand that
``bank_forward`` (the worker axis folded into the batch axis, per-worker
weights in one batched matmul) is *byte-identical* to running each worker's
slice through the single-replica ``forward``, outputs and gradients both.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn.bank import ParameterBank
from repro.nn.layers import AvgPool2d, Conv2d, MaxPool2d
from repro.nn.tensor import Tensor

# Geometry strategy: small enough to stay fast at max_examples, wide enough
# to hit 1-worker banks, stride > kernel, padding > 0, and non-square-friendly
# combinations the fixed tests never touch.


@st.composite
def conv_cases(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    batch = draw(st.integers(min_value=1, max_value=3))
    in_channels = draw(st.integers(min_value=1, max_value=3))
    out_channels = draw(st.integers(min_value=1, max_value=4))
    kernel = draw(st.integers(min_value=1, max_value=3))
    stride = draw(st.integers(min_value=1, max_value=3))
    padding = draw(st.integers(min_value=0, max_value=2))
    # Image must keep at least one output position after padding.
    min_size = max(1, kernel - 2 * padding)
    size = draw(st.integers(min_value=min_size, max_value=6))
    bias = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return m, batch, in_channels, out_channels, kernel, stride, padding, size, bias, seed


@st.composite
def pool_cases(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    batch = draw(st.integers(min_value=1, max_value=3))
    channels = draw(st.integers(min_value=1, max_value=3))
    kernel = draw(st.integers(min_value=1, max_value=3))
    stride = draw(st.integers(min_value=1, max_value=3))
    size = draw(st.integers(min_value=kernel, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return m, batch, channels, kernel, stride, size, seed


def _stacked_param_grads(bank: ParameterBank) -> np.ndarray:
    return np.concatenate(
        [t.grad.reshape(bank.n_workers, -1) for t in bank.params.values()], axis=1
    )


@settings(max_examples=30, deadline=None)
@given(conv_cases())
def test_conv2d_bank_forward_matches_per_worker(case):
    m, batch, in_c, out_c, kernel, stride, padding, size, bias, seed = case
    rng = np.random.default_rng(seed)

    def make():
        return Conv2d(in_c, out_c, kernel_size=kernel, stride=stride,
                      padding=padding, bias=bias, rng=7)

    template = make()
    bank = ParameterBank(template, m)
    stacked = rng.normal(size=(m, bank.n_parameters))
    bank.set_stacked_flat(stacked)
    X = rng.normal(size=(m, batch, in_c, size, size))

    out = template.bank_forward(Tensor(X), bank.params)
    out.sum().backward()
    bank_grads = _stacked_param_grads(bank)

    for i in range(m):
        ref = make()
        ref.set_flat_parameters(stacked[i])
        ref_out = ref(Tensor(X[i]))
        np.testing.assert_array_equal(out.data[i], ref_out.data)
        ref_out.sum().backward()
        np.testing.assert_array_equal(ref.get_flat_gradients(), bank_grads[i])


@settings(max_examples=30, deadline=None)
@given(pool_cases(), st.sampled_from([MaxPool2d, AvgPool2d]))
def test_pool_bank_forward_matches_per_worker(case, pool_cls):
    m, batch, channels, kernel, stride, size, seed = case
    rng = np.random.default_rng(seed)
    pool = pool_cls(kernel, stride=stride)
    X = rng.normal(size=(m, batch, channels, size, size))

    x_bank = Tensor(X, requires_grad=True)
    out = pool.bank_forward(x_bank, {})
    out.sum().backward()

    for i in range(m):
        x_ref = Tensor(X[i], requires_grad=True)
        ref_out = pool(x_ref)
        np.testing.assert_array_equal(out.data[i], ref_out.data)
        ref_out.sum().backward()
        np.testing.assert_array_equal(x_bank.grad[i], x_ref.grad)


@settings(max_examples=15, deadline=None)
@given(conv_cases())
def test_conv2d_bank_input_gradients_match(case):
    m, batch, in_c, out_c, kernel, stride, padding, size, bias, seed = case
    rng = np.random.default_rng(seed)
    conv = Conv2d(in_c, out_c, kernel_size=kernel, stride=stride,
                  padding=padding, bias=bias, rng=7)
    bank = ParameterBank(conv, m)
    X = rng.normal(size=(m, batch, in_c, size, size))

    x_bank = Tensor(X, requires_grad=True)
    conv.bank_forward(x_bank, bank.params).sum().backward()

    for i in range(m):
        x_ref = Tensor(X[i], requires_grad=True)
        conv(x_ref).sum().backward()
        np.testing.assert_array_equal(x_bank.grad[i], x_ref.grad)
