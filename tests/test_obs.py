"""repro.obs: tracer, metrics registry, tooling, CLI, and the wiring.

The load-bearing properties, in test order:

* Determinism — two seeded runs produce byte-identical traces once the
  ``wall_*`` fields are stripped (the contract ``python -m repro.obs diff``
  and every downstream tool relies on), and the sharded backend's trace
  tells the same virtual-time story as the vectorized one.
* Zero overhead when disabled — the module-level ``span``/``instant``/
  ``observed`` helpers return shared null singletons while no tracer or
  registry is active, so instrumentation can live in per-round hot paths.
* Telemetry never contaminates results — ``RunStore`` payloads only carry a
  metrics snapshot when one was attached, and sweep metrics live in a
  sidecar file outside the byte-identity contract.
"""

from __future__ import annotations

import io
import json
import logging
from pathlib import Path

import pytest

from repro.experiments.configs import make_config
from repro.experiments.harness import run_experiment, run_method
from repro.obs import (
    EVENT_NAMES,
    MetricsRegistry,
    Tracer,
    WALL_FIELDS,
    diff_traces,
    instant,
    read_trace,
    span,
    strip_wall_fields,
    summarize_trace,
    summary_table,
    to_chrome_trace,
    trace_lines,
    validate_event_name,
)
from repro.obs.cli import main as obs_main
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    counter_inc,
    gauge_set,
    observe,
    observe_many,
    observed,
)
from repro.obs.tracer import _NULL_SPAN
from repro.utils.results import RunStore
from repro.utils.timer import VirtualClock, profiled


def _tiny_config(**overrides):
    """A shrunken smoke config: one method, seconds of wall time."""
    overrides.setdefault("methods", ("sync-sgd",))
    overrides.setdefault("wall_time_budget", 8.0)
    return make_config("smoke", n_train=120, n_test=40, **overrides)


def _traced_run(config, profile=False):
    with Tracer(profile=profile) as tracer:
        run_experiment(config)
    return tracer.finish()


# -- tracer unit behavior -----------------------------------------------------


class TestTracer:
    def test_span_records_virtual_and_wall_clocks(self):
        clock = VirtualClock()
        with Tracer() as tracer:
            with span("round", clock=clock, round=1, tau=4):
                clock.advance(2.5)
            instant("eval", clock=clock, round=1)
        events = tracer.events
        assert [e["name"] for e in events] == ["round", "eval"]
        assert [e["seq"] for e in events] == [0, 1]
        round_event = events[0]
        assert round_event["kind"] == "span"
        assert round_event["v_start"] == 0.0
        assert round_event["v_dur"] == 2.5
        assert round_event["wall_dur"] >= 0.0
        assert round_event["fields"] == {"round": 1, "tau": 4}
        assert events[1]["kind"] == "instant"
        assert events[1]["v_start"] == 2.5

    def test_clockless_span_has_null_virtual_fields(self):
        with Tracer() as tracer:
            with span("experiment", n_methods=2):
                pass
        (event,) = tracer.events
        assert event["v_start"] is None and event["v_dur"] is None

    def test_unknown_event_name_rejected_at_emit(self):
        with Tracer():
            with pytest.raises(ValueError, match="unknown trace event name"):
                instant("not_an_event")
        with pytest.raises(ValueError, match="registered names"):
            validate_event_name("nope")
        assert validate_event_name("round") == "round"

    def test_disabled_helpers_are_shared_null_singletons(self):
        assert Tracer._active is None
        assert span("round") is _NULL_SPAN
        assert span("eval", round=3) is span("communicate")
        assert instant("round") is None  # no tracer: pure no-op
        # the null scope is reusable as a context manager
        with span("round", tau=2):
            pass

    def test_nested_tracers_restore_the_outer_one(self):
        outer, inner = Tracer(), Tracer()
        with outer:
            instant("round", round=1)
            with inner:
                instant("eval", round=1)
            assert Tracer._active is outer
            instant("round", round=2)
        assert Tracer._active is None
        assert [e["name"] for e in outer.events] == ["round", "round"]
        assert [e["name"] for e in inner.events] == ["eval"]

    def test_jsonl_roundtrip_and_atomic_flush(self, tmp_path):
        clock = VirtualClock()
        with Tracer() as tracer:
            with span("round", clock=clock, round=1):
                clock.advance(1.0)
        path = tracer.flush(tmp_path / "deep" / "trace.jsonl")
        assert path.is_file() and not list(tmp_path.glob("**/*.tmp"))
        events = read_trace(path)
        assert events == tracer.finish()
        assert trace_lines(events) == path.read_text()

    def test_read_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "round", "kind": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(bad)
        bad.write_text('{"no_name_key": 1}\n')
        with pytest.raises(ValueError, match="not a trace event record"):
            read_trace(bad)

    def test_strip_wall_fields_removes_exactly_the_wall_keys(self):
        clock = VirtualClock()
        with Tracer() as tracer:
            with span("round", clock=clock):
                clock.advance(1.0)
        (stripped,) = strip_wall_fields(tracer.events)
        assert set(WALL_FIELDS) & set(stripped) == set()
        assert set(tracer.events[0]) - set(stripped) == set(WALL_FIELDS)
        # the originals are untouched
        assert "wall_start" in tracer.events[0]

    def test_profiler_rows_bridge_once_into_wall_dur(self):
        tracer = Tracer(profile=True)
        with tracer:
            with profiled("bank/gemm"):
                pass
            with profiled("bank/gemm"):
                pass
        events = tracer.finish()
        tracer.finish()  # idempotent: the bridge runs once
        profile_rows = [e for e in events if e["name"] == "profile_op"]
        assert len(profile_rows) == 1
        (row,) = profile_rows
        assert row["kind"] == "instant"
        assert row["fields"] == {"op": "bank/gemm", "calls": 2}
        # the nondeterministic total lives in a strippable wall field
        assert row["wall_dur"] > 0.0
        assert strip_wall_fields([row])[0]["fields"] == row["fields"]


# -- metrics registry ---------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_primitives(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.to_dict() == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)
        g = Gauge()
        g.set(4)
        g.set(2.0)
        assert g.to_dict() == 2.0
        h = Histogram(buckets=(0.1, 1.0))
        assert h.to_dict()["min"] is None
        h.observe(0.05)   # -> le_0.1
        h.observe(0.5)    # -> le_1
        h.observe(100.0)  # -> le_inf overflow
        payload = h.to_dict()
        assert payload["buckets"] == {"le_0.1": 1, "le_1": 1, "le_inf": 1}
        assert payload["count"] == 3
        assert payload["min"] == 0.05 and payload["max"] == 100.0
        assert payload["sum"] == pytest.approx(100.55)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("rounds_total")

    def test_helpers_are_noops_while_disabled(self):
        assert MetricsRegistry._active is None
        counter_inc("rounds_total")
        gauge_set("workers", 4)
        observe("shard_rpc_seconds", 0.1)
        assert observed("shard_rpc_seconds") is observed("shard_rpc_seconds")

        class Exploding:
            def __iter__(self):
                raise AssertionError("iterated while metrics disabled")

        observe_many("shard_rpc_seconds", Exploding())  # must not iterate

    def test_helpers_record_while_enabled(self):
        with MetricsRegistry() as registry:
            counter_inc("rounds_total", 3)
            gauge_set("workers", 8)
            observe_many("straggler_wait_virtual_seconds", [0.1, 0.2])
            with observed("shard_rpc_seconds"):
                pass
        snapshot = registry.snapshot()
        assert snapshot["counters"]["rounds_total"] == 3
        assert snapshot["gauges"]["workers"] == 8.0
        assert snapshot["histograms"]["straggler_wait_virtual_seconds"]["count"] == 2
        assert snapshot["histograms"]["shard_rpc_seconds"]["count"] == 1

    def test_nested_registries_restore_the_outer_one(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with outer:
            counter_inc("rounds_total")
            with inner:
                counter_inc("rounds_total")
            assert MetricsRegistry._active is outer
            counter_inc("rounds_total")
        assert MetricsRegistry._active is None
        assert outer.snapshot()["counters"]["rounds_total"] == 2
        assert inner.snapshot()["counters"]["rounds_total"] == 1

    def test_snapshot_schema_is_stable_and_bridges_plan_cache(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot["version"] == 1
        assert "rounds_total" in snapshot["counters"]
        assert "sweep_cells_executed_total" in snapshot["counters"]
        assert "shard_rpc_seconds" in snapshot["histograms"]
        for key in ("plan_cache_hits", "plan_cache_misses",
                    "plan_cache_conv_plans", "plan_cache_pool_plans"):
            assert key in snapshot["gauges"]
        # JSON-compatible with sorted keys all the way down
        assert json.loads(json.dumps(snapshot, sort_keys=True)) == snapshot


# -- determinism and backend parity (integration) -----------------------------


class TestTraceDeterminism:
    def test_two_seeded_runs_trace_byte_identical_modulo_wall(self):
        config = _tiny_config()
        events_a = _traced_run(config, profile=True)
        events_b = _traced_run(config, profile=True)
        lines_a = trace_lines(strip_wall_fields(events_a))
        lines_b = trace_lines(strip_wall_fields(events_b))
        assert lines_a == lines_b
        assert diff_traces(events_a, events_b).identical
        # the run exercised the whole event vocabulary we expect of it
        names = {e["name"] for e in events_a}
        assert {"experiment", "method", "round", "local_steps",
                "communicate", "average", "eval", "profile_op"} <= names
        assert names <= EVENT_NAMES

    def test_sharded_trace_tells_the_same_virtual_story_as_vectorized(self):
        core = ("round", "local_steps", "communicate", "average", "eval")

        def timeline(backend):
            config = _tiny_config(
                backend=backend, backend_shards=2, wall_time_budget=6.0
            )
            with Tracer() as tracer:
                run_method(config, "sync-sgd")
            rows = []
            for event in tracer.events:
                if event["name"] not in core:
                    continue
                fields = {k: v for k, v in event["fields"].items() if k != "backend"}
                rows.append(
                    (event["name"], event["kind"], event["v_start"],
                     event["v_dur"], fields)
                )
            return rows, tracer.events

        vec_rows, _ = timeline("vectorized")
        shard_rows, shard_events = timeline("sharded")
        assert shard_rows == vec_rows
        # the sharded run additionally reports its RPC traffic
        rpc = [e for e in shard_events if e["name"] == "shard_rpc"]
        assert rpc, "sharded run recorded no shard_rpc events"
        assert all(e["fields"]["shard"] in ("all", 0, 1) for e in rpc)
        drains = [e for e in rpc if e["fields"].get("phase") == "drain_ack"]
        assert drains, "deferred-ack drains were not traced"

    def test_metrics_counters_are_deterministic_and_plausible(self):
        config = _tiny_config()
        snapshots = []
        for _ in range(2):
            with MetricsRegistry() as registry:
                run_experiment(config)
            snapshots.append(registry.snapshot())
        a, b = snapshots
        assert a["counters"] == b["counters"]
        assert a["counters"]["rounds_total"] > 0
        assert a["counters"]["comm_rounds_total"] > 0
        assert a["counters"]["bytes_averaged_total"] > 0
        assert a["counters"]["evals_total"] >= 2
        assert a["gauges"]["workers"] == config.n_workers
        straggler = a["histograms"]["straggler_wait_virtual_seconds"]
        assert straggler["count"] == b["histograms"][
            "straggler_wait_virtual_seconds"]["count"] > 0


# -- tooling ------------------------------------------------------------------


def _synthetic_events():
    """A small hand-built trace: 2 rounds, an eval, a profile row."""
    def record(seq, name, kind, v_start, v_dur, fields, wall_start=0.5, wall_dur=0.1):
        return {"name": name, "kind": kind, "seq": seq, "v_start": v_start,
                "v_dur": v_dur, "wall_start": wall_start, "wall_dur": wall_dur,
                "fields": fields}

    return [
        record(0, "round", "span", 0.0, 2.0, {"round": 1, "tau": 4}),
        record(1, "round", "span", 2.0, 3.0, {"round": 2, "tau": 4}),
        record(2, "eval", "span", 5.0, 0.0, {"round": 2}),
        {"name": "profile_op", "kind": "instant", "seq": 3, "v_start": None,
         "v_dur": None, "wall_start": None, "wall_dur": 0.25,
         "fields": {"op": "bank/gemm", "calls": 7}},
    ]


class TestTooling:
    def test_summarize_and_table(self):
        rollup = summarize_trace(_synthetic_events())
        assert list(rollup) == ["eval", "profile_op", "round"]
        assert rollup["round"]["count"] == 2
        assert rollup["round"]["v_total"] == 5.0
        assert rollup["round"]["wall_mean"] == pytest.approx(0.1)
        assert rollup["profile_op"]["spans"] == 0
        table = summary_table(_synthetic_events())
        assert "round" in table and "profile_op" in table
        assert summary_table([]) == "(empty trace)"

    def test_chrome_export_structure(self):
        document = to_chrome_trace(_synthetic_events())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metadata} == {"wall clock", "virtual clock"}
        spans = [e for e in events if e["ph"] == "X"]
        # 3 spans × (wall + virtual track) = 6 complete events
        assert len(spans) == 6
        assert {e["pid"] for e in spans} == {1, 2}
        virtual_round = next(
            e for e in spans if e["pid"] == 2 and e["args"].get("round") == 2
        )
        assert virtual_round["ts"] == pytest.approx(2.0e6)
        assert virtual_round["dur"] == pytest.approx(3.0e6)
        (profile,) = [e for e in events if e["name"] == "profile_op"]
        assert profile["ph"] == "i"
        assert profile["args"]["total_seconds"] == 0.25
        json.dumps(document)  # must be valid JSON end to end

    def test_diff_identical_modulo_wall(self):
        a = _synthetic_events()
        b = [dict(e, wall_start=9.9, wall_dur=9.9) for e in _synthetic_events()]
        diff = diff_traces(a, b)
        assert diff.identical
        assert "identical modulo wall time" in diff.summary()

    def test_diff_surfaces_divergence_counts_and_round_timeline(self):
        a = _synthetic_events()
        b = _synthetic_events()
        b[1]["v_dur"] = 4.5         # round 2's virtual duration changed
        del b[2]                    # and the eval disappeared
        diff = diff_traces(a, b)
        assert not diff.identical
        assert diff.count_deltas == {"eval": (1, 0)}
        index, ea, eb = diff.first_divergence
        assert index == 1 and ea["v_dur"] == 3.0 and eb["v_dur"] == 4.5
        assert diff.round_mismatches == [(2, (2.0, 3.0), (2.0, 4.5))]
        text = diff.summary()
        assert "count[eval]: 1 vs 0" in text and "round 2" in text


# -- the obs CLI --------------------------------------------------------------


class TestObsCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        clock = VirtualClock()
        with Tracer() as tracer:
            with span("round", clock=clock, round=1):
                clock.advance(1.0)
            instant("eval", clock=clock, round=1)
        return tracer.flush(tmp_path / "trace.jsonl")

    def test_summary_verb(self, trace_path, capsys):
        assert obs_main(["summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "2 events" in out and "round" in out and "eval" in out

    def test_export_verb_stdout_and_file(self, trace_path, tmp_path, capsys):
        assert obs_main(["export", str(trace_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]
        out = tmp_path / "nested" / "trace.chrome.json"
        assert obs_main(["export", str(trace_path), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["displayTimeUnit"] == "ms"

    def test_diff_verb_exit_codes(self, trace_path, tmp_path, capsys):
        twin = tmp_path / "twin.jsonl"
        twin.write_text(trace_path.read_text())
        assert obs_main(["diff", str(trace_path), str(twin)]) == 0
        events = read_trace(trace_path)
        events[0]["fields"]["round"] = 99
        other = tmp_path / "other.jsonl"
        other.write_text(trace_lines(events))
        assert obs_main(["diff", str(trace_path), str(other)]) == 1
        assert "differ" in capsys.readouterr().out

    def test_bad_input_exits_2(self, tmp_path, capsys):
        assert obs_main(["summary", str(tmp_path / "missing.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err
        mangled = tmp_path / "mangled.jsonl"
        mangled.write_text("not json\n")
        assert obs_main(["summary", str(mangled)]) == 2


# -- persistence wiring -------------------------------------------------------


class TestPersistence:
    def test_runstore_payload_omits_metrics_unless_set(self):
        store = RunStore()
        assert "metrics" not in store.to_payload()
        snapshot = MetricsRegistry().snapshot()
        store.metrics = snapshot
        payload = store.to_payload()
        assert payload["metrics"] == snapshot
        rebuilt = RunStore.from_payload(json.loads(json.dumps(payload)))
        assert rebuilt.metrics == snapshot
        assert RunStore.from_payload({"runs": []}).metrics is None

    def test_result_store_metrics_sidecar_and_merge(self, tmp_path):
        from repro.sweep.store import ResultStore

        src = ResultStore(tmp_path / "src")
        src.put("cafe0000", {"name": "smoke"}, {"runs": []})
        snapshot = MetricsRegistry().snapshot()
        assert not src.has_metrics("cafe0000")
        with pytest.raises(KeyError, match="no metrics sidecar"):
            src.metrics("cafe0000")
        src.put_metrics("cafe0000", snapshot)
        assert src.has_metrics("cafe0000")
        assert src.metrics("cafe0000") == snapshot
        # the sidecar travels with a merge but never gates it
        dst = ResultStore(tmp_path / "dst")
        report = dst.merge_from(src)
        assert report.ok
        assert dst.metrics("cafe0000") == snapshot

    def test_sweep_collects_metrics_only_when_asked(self, tmp_path):
        from repro.sweep import ResultStore, SweepSpec, grid, run_sweep

        base = _tiny_config(wall_time_budget=6.0)
        spec = SweepSpec("obs-tiny", base, grid(tau=[1, 2]))
        report = run_sweep(spec, tmp_path / "plain", jobs=1)
        assert report.ok
        plain = ResultStore(tmp_path / "plain")
        assert not any(plain.has_metrics(a) for a in plain.addresses())

        report = run_sweep(spec, tmp_path / "tele", jobs=1, collect_metrics=True)
        assert report.ok
        tele = ResultStore(tmp_path / "tele")
        addresses = tele.addresses()
        assert addresses and all(tele.has_metrics(a) for a in addresses)
        snapshot = tele.metrics(addresses[0])
        assert snapshot["counters"]["rounds_total"] > 0
        # telemetry never changes the stored result bytes
        for address in addresses:
            assert (
                plain._result_path(address).read_text()
                == tele._result_path(address).read_text()
            )


# -- experiment API and CLI wiring --------------------------------------------


class TestEntryPoints:
    def test_experiment_builder_trace(self, tmp_path):
        from repro.api import Experiment

        path = tmp_path / "api" / "trace.jsonl"
        store = (
            Experiment(_tiny_config(wall_time_budget=6.0))
            .trace(path, profile=True)
            .run()
        )
        assert store.names() == ["sync-sgd"]
        events = read_trace(path)
        names = {e["name"] for e in events}
        assert {"experiment", "method", "round", "profile_op"} <= names
        assert Tracer._active is None  # run() cleaned up after itself

    def test_cli_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = tmp_path / "cli-trace.jsonl"
        assert main([
            "--config", "smoke", "--scale", "0.2",
            "--set", "methods=('sync-sgd',)",
            "--trace", str(path), "--metrics", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out and "metrics snapshot" in out
        events = read_trace(path)
        assert any(e["name"] == "profile_op" for e in events)

    def test_cli_metrics_embedded_in_saved_store(self, tmp_path, capsys):
        from repro.experiments.cli import main

        save = tmp_path / "store.json"
        assert main([
            "--config", "smoke", "--scale", "0.2",
            "--set", "methods=('sync-sgd',)",
            "--metrics", "--save", str(save),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(save.read_text())
        assert payload["metrics"]["counters"]["rounds_total"] > 0
        assert RunStore.load(save).metrics == payload["metrics"]


# -- structured logging satellite ---------------------------------------------


@pytest.fixture()
def fresh_logging(monkeypatch):
    """Isolate the module-global handler so each test configures from scratch."""
    import repro.utils.logging as rlog

    logger = logging.getLogger("repro")
    saved_handlers = logger.handlers[:]
    saved_level = logger.level
    for handler in saved_handlers:
        logger.removeHandler(handler)
    monkeypatch.setattr(rlog, "_handler", None)
    yield rlog
    for handler in logger.handlers[:]:
        logger.removeHandler(handler)
    for handler in saved_handlers:
        logger.addHandler(handler)
    logger.setLevel(saved_level)


class TestLogging:
    def test_json_mode_emits_sorted_records_with_context_fields(self, fresh_logging):
        stream = io.StringIO()
        fresh_logging.configure_logging(stream=stream, json_mode=True)
        logger = fresh_logging.get_logger("obs.test")
        with fresh_logging.log_context(cell="a1b2", backend="sharded"):
            with fresh_logging.log_context(backend="vectorized"):
                logger.info("inner")
            logger.info("outer")
        logger.info("bare")
        inner, outer, bare = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert inner["logger"] == "repro.obs.test"
        assert inner["message"] == "inner"
        assert inner["fields"] == {"cell": "a1b2", "backend": "vectorized"}
        assert outer["fields"] == {"cell": "a1b2", "backend": "sharded"}
        assert bare["fields"] == {}
        # sorted keys: byte-stable record layout
        assert stream.getvalue().splitlines()[0] == json.dumps(inner, sort_keys=True)

    def test_repeat_configure_reapplies_level_and_keeps_one_handler(self, fresh_logging):
        stream = io.StringIO()
        fresh_logging.configure_logging(level=logging.DEBUG, stream=stream)
        logger = fresh_logging.get_logger("obs.level")
        logger.debug("visible")
        fresh_logging.configure_logging(level=logging.WARNING, stream=io.StringIO())
        logger.debug("filtered")
        logger.warning("loud")
        output = stream.getvalue()
        assert "visible" in output and "filtered" not in output and "loud" in output
        assert len(logging.getLogger("repro").handlers) == 1

    def test_json_mode_toggles_on_reconfigure(self, fresh_logging):
        stream = io.StringIO()
        fresh_logging.configure_logging(stream=stream, json_mode=True)
        logger = fresh_logging.get_logger("obs.toggle")
        logger.info("as json")
        fresh_logging.configure_logging(json_mode=False)
        logger.info("as text")
        json_line, text_line = stream.getvalue().splitlines()
        assert json.loads(json_line)["message"] == "as json"
        with pytest.raises(json.JSONDecodeError):
            json.loads(text_line)
        assert "as text" in text_line
