"""The vectorized worker-bank backend: unit tests + seeded loop equivalence.

The contract under test is the one the vectorized backend is built on: with
the same seeds, the stacked implementation must reproduce the loop backend's
trajectory — same batches, same gradients, same SGD updates, same averaged
models — within floating-point tolerance, while executing all m replicas
with single NumPy ops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registries import BACKENDS
from repro.data.bank_loader import BankLoader
from repro.data.loader import BatchLoader
from repro.data.partition import partition_dataset
from repro.data.synthetic import make_gaussian_blobs
from repro.distributed.backends import BackendUnsupported, LoopWorkers
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker_bank import BankWorkerView, WorkerBank
from repro.experiments.configs import make_config
from repro.experiments.harness import run_method
from repro.models.linear import LinearRegressionModel, SoftmaxRegression
from repro.models.mlp import MLP, ResidualMLP
from repro.nn.bank import ParameterBank, bank_compatible
from repro.nn.layers import BatchNorm1d, Linear, Module, Sequential
from repro.optim.bank_sgd import BankSGD
from repro.optim.block_momentum import BlockMomentum
from repro.optim.sgd import SGD
from repro.runtime.distributions import ConstantDelay
from repro.runtime.network import NetworkModel
from repro.runtime.simulator import RuntimeSimulator
from repro.utils.seeding import SeedSequence

M, B, F, C = 3, 6, 8, 4


def _mlp():
    return MLP(F, C, hidden_sizes=(12, 6), rng=1)


def _stacked_grads(bank: ParameterBank) -> np.ndarray:
    return np.concatenate(
        [t.grad.reshape(bank.n_workers, -1) for t in bank.params.values()], axis=1
    )


class TestBankCompatibility:
    def test_dense_models_supported(self):
        for model in (_mlp(), ResidualMLP(F, C, width=10, n_blocks=2, rng=2),
                      SoftmaxRegression(F, C, rng=3), LinearRegressionModel(F, 1, rng=4)):
            assert bank_compatible(model), type(model).__name__

    def test_cnn_batchnorm_and_quadratic_supported(self):
        from repro.models.cnn import SmallCNN
        from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective

        cnn = SmallCNN(in_channels=1, image_size=4, channels=(4,), n_classes=C, rng=0)
        assert bank_compatible(cnn)
        bn_mlp = MLP(F, C, hidden_sizes=(6,), batch_norm=True, rng=0)
        assert bank_compatible(bn_mlp)
        assert BatchNorm1d(4).supports_bank()
        obj = QuadraticObjective.random(dim=4, rng=0)
        assert bank_compatible(NoisyQuadraticProblem(obj, rng=0))

    def test_live_dropout_supported(self):
        # The bank draws one stacked mask per worker from the per-worker
        # streams the loop replicas would own, so live dropout runs stacked.
        dropout_mlp = MLP(F, C, hidden_sizes=(6,), dropout=0.3, rng=0)
        assert bank_compatible(dropout_mlp)
        assert list(dropout_mlp.stream_modules())
        no_dropout = MLP(F, C, hidden_sizes=(6,), dropout=0.0, rng=0)
        assert bank_compatible(no_dropout)
        assert not list(no_dropout.stream_modules())

    def test_live_dropout_without_streams_fails_loudly(self):
        # Direct callers that skip attach_bank_streams must get an error, not
        # a silently shared mask across workers.
        dropout_mlp = MLP(F, C, hidden_sizes=(6,), dropout=0.3, rng=0)
        bank = ParameterBank(dropout_mlp, M)
        X = np.zeros((M, B, F))
        y = np.zeros((M, B), dtype=np.int64)
        with pytest.raises(RuntimeError, match="RNG stream per worker"):
            dropout_mlp.bank_loss(X, y, bank.params)
        dropout_mlp.eval()  # dropout is a no-op in eval mode, no streams needed
        assert dropout_mlp.bank_loss(X, y, bank.params).shape == (M,)

    # Seeded dropout equivalence now lives in the consolidated matrix
    # (tests/test_equivalence_matrix.py, "mlp+batch_norm+dropout" case).

    def test_plain_module_not_supported(self):
        assert not Module().supports_bank()
        assert not bank_compatible(Sequential(Linear(4, 2, rng=0)))  # no bank_loss


class TestParameterBank:
    def test_stacking_and_layout(self):
        model = _mlp()
        bank = ParameterBank(model, M)
        assert bank.n_parameters == model.num_parameters()
        flat = model.get_flat_parameters()
        stacked = bank.get_stacked_flat()
        assert stacked.shape == (M, bank.n_parameters)
        for i in range(M):
            np.testing.assert_array_equal(stacked[i], flat)
            np.testing.assert_array_equal(bank.worker_flat(i), flat)

    def test_stacked_flat_roundtrip(self):
        bank = ParameterBank(_mlp(), M)
        target = np.random.default_rng(0).normal(size=(M, bank.n_parameters))
        bank.set_stacked_flat(target)
        np.testing.assert_allclose(bank.get_stacked_flat(), target)
        np.testing.assert_allclose(bank.worker_flat(1), target[1])

    def test_broadcast_and_per_worker_set(self):
        bank = ParameterBank(_mlp(), M)
        vec = np.arange(bank.n_parameters, dtype=float)
        bank.broadcast_flat(vec)
        for i in range(M):
            np.testing.assert_array_equal(bank.worker_flat(i), vec)
        bank.set_worker_flat(2, -vec)
        np.testing.assert_array_equal(bank.worker_flat(2), -vec)
        np.testing.assert_array_equal(bank.worker_flat(0), vec)

    def test_validation(self):
        bank = ParameterBank(_mlp(), M)
        with pytest.raises(ValueError):
            ParameterBank(_mlp(), 0)
        with pytest.raises(ValueError):
            ParameterBank(Module(), 2)  # no parameters
        with pytest.raises(ValueError):
            bank.broadcast_flat(np.zeros(3))
        with pytest.raises(ValueError):
            bank.set_stacked_flat(np.zeros((M + 1, bank.n_parameters)))
        with pytest.raises(IndexError):
            bank.worker_flat(M)


class TestBankForwardEquivalence:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: MLP(F, C, hidden_sizes=(12, 6), rng=1),
            lambda: ResidualMLP(F, C, width=10, n_blocks=2, rng=2),
            lambda: SoftmaxRegression(F, C, rng=3),
        ],
        ids=["mlp", "residual_mlp", "softmax"],
    )
    def test_losses_and_gradients_match_per_worker(self, make):
        rng = np.random.default_rng(7)
        template = make()
        bank = ParameterBank(template, M)
        stacked = rng.normal(size=(M, bank.n_parameters))
        bank.set_stacked_flat(stacked)
        X = rng.normal(size=(M, B, F))
        y = rng.integers(0, C, size=(M, B))

        losses = template.bank_loss(X, y, bank.params)
        assert losses.shape == (M,)
        losses.sum().backward()
        bank_grads = _stacked_grads(bank)

        for i in range(M):
            ref = make()
            ref.set_flat_parameters(stacked[i])
            loss = ref.loss(X[i], y[i])
            loss.backward()
            assert loss.item() == pytest.approx(float(losses.data[i]), abs=1e-12)
            np.testing.assert_allclose(ref.get_flat_gradients(), bank_grads[i], atol=1e-12)

    def test_regression_loss_matches(self):
        rng = np.random.default_rng(8)
        template = LinearRegressionModel(F, 1, rng=4)
        bank = ParameterBank(template, M)
        stacked = rng.normal(size=(M, bank.n_parameters))
        bank.set_stacked_flat(stacked)
        X = rng.normal(size=(M, B, F))
        y = rng.normal(size=(M, B))
        losses = template.bank_loss(X, y, bank.params)
        losses.sum().backward()
        bank_grads = _stacked_grads(bank)
        for i in range(M):
            ref = LinearRegressionModel(F, 1, rng=4)
            ref.set_flat_parameters(stacked[i])
            loss = ref.loss(X[i], y[i])
            loss.backward()
            assert loss.item() == pytest.approx(float(losses.data[i]), abs=1e-12)
            np.testing.assert_allclose(ref.get_flat_gradients(), bank_grads[i], atol=1e-12)


class TestBankSGD:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lr=0.1),
            dict(lr=0.1, weight_decay=1e-3),
            dict(lr=0.05, momentum=0.9),
            dict(lr=0.05, momentum=0.9, weight_decay=1e-3, nesterov=True),
        ],
        ids=["plain", "weight_decay", "momentum", "nesterov"],
    )
    def test_matches_per_worker_sgd(self, kwargs):
        rng = np.random.default_rng(9)
        template = _mlp()
        bank = ParameterBank(template, M)
        stacked = rng.normal(size=(M, bank.n_parameters))
        bank.set_stacked_flat(stacked)
        bank_opt = BankSGD(bank, **kwargs)

        refs = []
        for i in range(M):
            model = _mlp()
            model.set_flat_parameters(stacked[i])
            refs.append((model, SGD(model, **kwargs)))

        for step in range(4):
            X = rng.normal(size=(M, B, F))
            y = rng.integers(0, C, size=(M, B))
            bank_opt.zero_grad()
            template.bank_loss(X, y, bank.params).sum().backward()
            bank_opt.step()
            for i, (model, opt) in enumerate(refs):
                opt.zero_grad()
                model.loss(X[i], y[i]).backward()
                opt.step()
        states = bank.get_stacked_flat()
        for i, (model, _) in enumerate(refs):
            np.testing.assert_allclose(model.get_flat_parameters(), states[i], atol=1e-12)

    def test_reset_momentum_matches(self):
        rng = np.random.default_rng(10)
        template = _mlp()
        bank = ParameterBank(template, M)
        opt = BankSGD(bank, lr=0.1, momentum=0.9)
        X = rng.normal(size=(M, B, F))
        y = rng.integers(0, C, size=(M, B))
        template.bank_loss(X, y, bank.params).sum().backward()
        opt.step()
        assert any(np.any(v) for v in opt._velocity.values())
        opt.reset_momentum()
        assert all(not np.any(v) for v in opt._velocity.values())

    def test_validation(self):
        bank = ParameterBank(_mlp(), M)
        with pytest.raises(ValueError):
            BankSGD(bank, lr=0.0)
        with pytest.raises(ValueError):
            BankSGD(bank, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            BankSGD(bank, lr=0.1, weight_decay=-1)
        with pytest.raises(ValueError):
            BankSGD(bank, lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            BankSGD(bank, lr=0.1).set_lr(-0.1)


class TestBankLoader:
    def _shards(self, n_samples=61, n_workers=3):
        dataset = make_gaussian_blobs(
            n_samples=n_samples, n_features=F, n_classes=C, rng=5
        )
        part = partition_dataset(dataset, n_workers, rng=0)
        return [part.shard(i) for i in range(n_workers)]

    def test_reproduces_each_shard_stream(self):
        shards = self._shards()
        bank_loader = BankLoader(shards, batch_size=8, rngs=[11, 12, 13])
        refs = [BatchLoader(s, 8, rng=seed) for s, seed in zip(shards, (11, 12, 13))]
        # Enough draws to cross every shard's epoch boundary several times.
        for _ in range(12):
            X, y = bank_loader.next_batches()
            assert X.shape == (3, 8, F) and y.shape == (3, 8)
            for i, ref in enumerate(refs):
                Xr, yr = ref.next_batch()
                np.testing.assert_array_equal(X[i], Xr)
                np.testing.assert_array_equal(y[i], yr)
        assert bank_loader.epochs_completed == refs[0].epochs_completed

    def test_iterator_protocol(self):
        shards = self._shards()
        loader = BankLoader(shards, batch_size=4, rngs=[0, 1, 2])
        X, y = next(iter(loader))
        assert X.shape[0] == 3 and X.shape[1] == 4

    def test_unequal_effective_batch_sizes_raise(self):
        big = make_gaussian_blobs(n_samples=40, n_features=F, n_classes=C, rng=0)
        tiny = make_gaussian_blobs(n_samples=5, n_features=F, n_classes=C, rng=1)
        with pytest.raises(ValueError):
            BankLoader([big, tiny], batch_size=8, rngs=[0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            BankLoader([], batch_size=4)
        shards = self._shards()
        with pytest.raises(ValueError):
            BankLoader(shards, batch_size=4, rngs=[0])


def _make_cluster(backend, n_workers=4, momentum=0.0, block_momentum=None,
                  model_fn=None, seed=17):
    dataset = make_gaussian_blobs(
        n_samples=200, n_features=F, n_classes=C, class_sep=2.0, noise_std=0.6, rng=3
    )
    runtime = RuntimeSimulator(
        ConstantDelay(1.0), NetworkModel(2.0, "constant"), n_workers=n_workers, rng=0
    )
    if model_fn is None:
        def model_fn():
            return MLP(F, C, hidden_sizes=(12,), rng=42)
    return SimulatedCluster(
        model_fn=model_fn,
        dataset=dataset,
        runtime=runtime,
        n_workers=n_workers,
        batch_size=8,
        lr=0.2,
        momentum=momentum,
        weight_decay=1e-4,
        block_momentum=block_momentum,
        seed=seed,
        backend=backend,
    )


class TestWorkerBankBackend:
    def test_registry_names(self):
        assert "loop" in BACKENDS and "vectorized" in BACKENDS
        assert BACKENDS.get("loop") is LoopWorkers
        assert BACKENDS.get("vectorized") is WorkerBank

    def test_cluster_invariants_on_vectorized_backend(self):
        cluster = _make_cluster("vectorized")
        assert cluster.backend_name == "vectorized"
        assert isinstance(cluster.backend, WorkerBank)
        assert all(isinstance(w, BankWorkerView) for w in cluster.workers)
        cluster.run_local_period(5)
        assert cluster.clock.now == pytest.approx(5.0)
        assert cluster.model_discrepancy() > 0
        averaged = cluster.average_models()
        assert cluster.clock.now == pytest.approx(7.0)
        for w in cluster.workers:
            np.testing.assert_allclose(w.get_parameters(), averaged)
        assert cluster.model_discrepancy() == pytest.approx(0.0, abs=1e-12)
        assert cluster.events.total_local_iterations() == 5
        assert cluster.events.communication_rounds() == 1

    def test_worker_views_roundtrip_parameters(self):
        cluster = _make_cluster("vectorized", n_workers=2)
        view = cluster.workers[1]
        target = np.arange(cluster.backend.bank.n_parameters, dtype=float)
        view.set_parameters(target)
        np.testing.assert_array_equal(view.get_parameters(), target)
        # worker 0 untouched
        assert not np.array_equal(cluster.workers[0].get_parameters(), target)

    # Plain seeded loop↔bank equivalence is covered (more strictly, byte for
    # byte) by the consolidated matrix in tests/test_equivalence_matrix.py;
    # block momentum stays here because it is a cluster-level feature the
    # matrix's backend-protocol fingerprint does not exercise.

    def test_seeded_equivalence_with_block_momentum(self):
        loop = _make_cluster("loop", momentum=0.9, block_momentum=BlockMomentum(0.4))
        bank = _make_cluster("vectorized", momentum=0.9, block_momentum=BlockMomentum(0.4))
        for _ in range(4):
            loop.run_round(4)
            bank.run_round(4)
        np.testing.assert_allclose(
            loop.synchronized_parameters, bank.synchronized_parameters, atol=1e-9
        )

    def test_evaluate_synchronized_leaves_workers_unchanged(self):
        cluster = _make_cluster("vectorized")
        cluster.run_round(3)
        before = cluster.backend.get_stacked_states()
        dataset = make_gaussian_blobs(n_samples=50, n_features=F, n_classes=C, rng=1)

        def loss_metric(model, X, y):
            return float(model.loss(X, y).item())

        value = cluster.evaluate_synchronized(dataset.X, dataset.y, loss_metric)
        assert np.isfinite(value)
        np.testing.assert_array_equal(before, cluster.backend.get_stacked_states())

    def test_training_reduces_loss_on_vectorized_backend(self):
        cluster = _make_cluster("vectorized")
        dataset = make_gaussian_blobs(
            n_samples=200, n_features=F, n_classes=C, class_sep=2.0, noise_std=0.6, rng=3
        )

        def loss_metric(model, X, y):
            return float(model.loss(X, y).item())

        before = cluster.evaluate_synchronized(dataset.X, dataset.y, loss_metric)
        for _ in range(15):
            cluster.run_round(4)
        after = cluster.evaluate_synchronized(dataset.X, dataset.y, loss_metric)
        assert after < 0.8 * before


class TestAutoBackendSelection:
    def test_auto_picks_vectorized_for_dense_models(self):
        cluster = _make_cluster("auto")
        assert cluster.backend_name == "vectorized"

    def test_auto_picks_vectorized_for_cnn(self):
        from repro.models.cnn import SmallCNN

        def cnn_fn():
            return SmallCNN(in_channels=1, image_size=2, channels=(4,), n_classes=C, rng=0)

        cluster = _make_cluster("auto", model_fn=cnn_fn)
        assert cluster.backend_name == "vectorized"

    def test_auto_picks_vectorized_for_data_free_objectives(self):
        from repro.models.quadratic import NoisyQuadraticProblem, QuadraticObjective

        obj = QuadraticObjective.random(dim=6, rng=0, noise_std=0.1)
        runtime = RuntimeSimulator(
            ConstantDelay(1.0), NetworkModel(1.0, "constant"), n_workers=2, rng=0
        )
        cluster = SimulatedCluster(
            lambda: NoisyQuadraticProblem(obj, rng=0), None, runtime,
            n_workers=2, lr=0.1, seed=0, backend="auto",
        )
        assert cluster.backend_name == "vectorized"

    # CNN loop↔bank trajectory equality is covered byte-for-byte by the
    # consolidated matrix (vgg_lite_cnn / resnet_lite_cnn cases).

    def test_stateful_dropout_factory_matches_loop(self):
        # A factory drawing from a shared generator gives every worker a
        # *different* dropout stream; the bank harvests exactly the replicas
        # the loop would have built, so factory consumption and per-worker
        # streams line up and the trajectories stay byte-identical.
        from repro.utils.seeding import SeedSequence

        def make_factory():
            seeds = SeedSequence(99)
            return lambda: MLP(F, C, hidden_sizes=(6,), dropout=0.4, rng=seeds.generator())

        auto = _make_cluster("auto", model_fn=make_factory(), n_workers=2)
        loop = _make_cluster("loop", model_fn=make_factory(), n_workers=2)
        assert auto.backend_name == "vectorized"
        auto.run_round(2)
        loop.run_round(2)
        np.testing.assert_allclose(
            auto.synchronized_parameters, loop.synchronized_parameters, atol=0
        )

    def test_explicit_vectorized_raises_for_unsupported_model(self):
        # Third-party modules without a bank_loss are the remaining loop-only
        # case (the loop backend is the reference implementation).
        class NoBankModel(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(F, C, rng=0)

            def forward(self, x):
                return self.fc(x)

            def loss(self, x, y):
                from repro.nn.losses import cross_entropy

                return cross_entropy(self(x), y)

        with pytest.raises(BackendUnsupported):
            _make_cluster("vectorized", model_fn=NoBankModel)
        fallback = _make_cluster("auto", model_fn=NoBankModel)
        assert fallback.backend_name == "loop"

    def test_unknown_backend_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            _make_cluster("warp-drive")


class TestHarnessBackendEquivalence:
    """Harness-level wiring; trajectory equivalence itself lives in the
    consolidated matrix (tests/test_equivalence_matrix.py) and the sharded
    acceptance suite (tests/test_sharded_bank.py)."""

    def _config(self, backend):
        return make_config(
            "smoke", wall_time_budget=30.0, n_train=160, n_test=60,
            momentum=0.9, backend=backend,
        )

    def test_auto_resolves_to_vectorized_in_harness(self):
        record = run_method(self._config("auto"), "sync-sgd")
        assert record.config["backend"] == "vectorized"

    def test_config_validation_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_config("smoke", backend="warp-drive").validate()

    def test_config_backend_roundtrips_through_json(self):
        cfg = self._config("vectorized")
        from repro.experiments.configs import ExperimentConfig

        rebuilt = ExperimentConfig.from_dict(cfg.to_dict())
        assert rebuilt.backend == "vectorized"


class TestExperimentBuilderAndCLI:
    def test_experiment_backend_method(self):
        from repro.api import Experiment

        cfg = Experiment("smoke").backend("vectorized").build()
        assert cfg.backend == "vectorized"
        with pytest.raises(ValueError):
            Experiment("smoke").backend("bogus")

    def test_cli_list_backends(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list", "backends"]) == 0
        out = capsys.readouterr().out.split()
        assert "loop" in out and "vectorized" in out

    def test_cli_backend_flag(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "--config", "smoke", "--backend", "vectorized", "--scale", "0.2",
            "--set", "methods=('sync-sgd',)",
        ]) == 0
        assert "backend=vectorized" in capsys.readouterr().out

    def test_cli_rejects_unknown_backend(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["--config", "smoke", "--backend", "bogus"])


class TestClusterSeedConsumption:
    def test_same_seed_sequence_on_both_backends(self):
        # Both backends must spawn worker RNGs in the same order from the
        # cluster seed, so the partition itself is identical too.
        loop = _make_cluster("loop", seed=33)
        bank = _make_cluster("vectorized", seed=33)
        loop_shards = loop._partition.worker_indices
        bank_shards = bank._partition.worker_indices
        for a, b in zip(loop_shards, bank_shards):
            np.testing.assert_array_equal(a, b)
        seq_a, seq_b = SeedSequence(33), SeedSequence(33)
        assert [seq_a.spawn() for _ in range(3)] == [seq_b.spawn() for _ in range(3)]
